//! Snapshot pin of the Fig. 4 profiler view, mirroring the optimizer
//! view pin in `flow_analysis.rs`: the per-method energy table over the
//! bundled runnable corpus is fully deterministic (virtual clock,
//! simulated RAPL), so any drift in method ranking, energy accounting,
//! or formatting shows up as a reviewable diff.
//!
//! Regenerate with
//! `UPDATE_SNAPSHOTS=1 cargo test -p jepo --test profiler_snapshot`.

use jepo::core::{corpus, JepoProfiler};

#[test]
fn profiler_view_matches_snapshot() {
    let report = JepoProfiler::new()
        .profile(&corpus::runnable_project())
        .unwrap();
    let view = report.view();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/profiler_view.txt"
    );
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(path, &view).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("snapshot missing — run with UPDATE_SNAPSHOTS=1 to create it");
    assert_eq!(
        view, expected,
        "profiler view drifted from tests/snapshots/profiler_view.txt; \
         if intentional, regenerate with UPDATE_SNAPSHOTS=1"
    );
}
