//! Integration tests for the flow-sensitive analysis layer (PR 3
//! acceptance criteria): false-positive suppression vs the syntactic
//! baseline, flow-only suggestions on the bundled corpus, impact-ranked
//! optimizer output with a deterministic total order, parallel
//! bit-identity, and the checked-in Fig. 5 snapshot.

use jepo::analyzer::{AnalysisMode, Analyzer, JavaComponent};
use jepo::core::{corpus, JepoOptimizer};

/// A syntactic false positive the dataflow layer provably removes: a
/// per-iteration `String` local is not the quadratic accumulation
/// pattern. Regression-pinned here at the project level.
#[test]
fn dataflow_suppresses_syntactic_false_positive() {
    let mut p = jepo::jlang::JavaProject::new();
    p.add_file(
        "Tag.java",
        "class Tag { void render(String[] parts, int n) {
            for (int i = 0; i < n; i++) {
                String t = \"<\" + parts[i];
            }
        } }",
    )
    .unwrap();
    let syntactic = Analyzer::syntactic().analyze_project(&p);
    let flow = Analyzer::new().analyze_project(&p);
    let concat = |v: &[jepo::analyzer::Suggestion]| {
        v.iter()
            .filter(|s| s.component == JavaComponent::StringConcatenation)
            .count()
    };
    assert_eq!(concat(&syntactic), 1, "baseline flags the fresh local");
    assert_eq!(concat(&flow), 0, "dataflow knows t is not loop-carried");
}

/// On the bundled corpus the flow-sensitive extended analyzer both
/// removes syntactic hits and produces flow-only suggestions.
#[test]
fn corpus_gets_flow_only_suggestions_and_loses_false_positives() {
    let p = corpus::full_corpus();
    let syntactic = Analyzer::with_extensions()
        .with_mode(AnalysisMode::Syntactic)
        .analyze_project(&p);
    let flow = Analyzer::with_extensions().analyze_project(&p);

    // Flow-only rules stay silent without dataflow facts...
    assert!(!syntactic.iter().any(|s| matches!(
        s.component,
        JavaComponent::LoopInvariantOp | JavaComponent::DeadStore
    )));
    // ...and fire on the corpus with them: MathUtils.normalize keeps an
    // invariant `buckets % 7` in its loop, and several classifiers
    // compute locals nobody reads.
    assert!(
        flow.iter()
            .any(|s| s.component == JavaComponent::LoopInvariantOp),
        "corpus has a loop-invariant modulus"
    );
    assert!(
        flow.iter().any(|s| s.component == JavaComponent::DeadStore),
        "corpus has dead stores"
    );

    // The definition-aware gates only ever remove Table I hits; count
    // per component to show at least one suppression on the corpus.
    let count = |v: &[jepo::analyzer::Suggestion], c: JavaComponent| {
        v.iter().filter(|s| s.component == c).count()
    };
    let mut suppressed = 0;
    for c in JavaComponent::ALL {
        let (s, f) = (count(&syntactic, c), count(&flow, c));
        assert!(f <= s, "{c:?} grew under flow mode: {s} -> {f}");
        suppressed += s - f;
    }
    assert!(
        suppressed >= 1,
        "dataflow must remove at least one syntactic false positive"
    );
}

/// Parallel project analysis is bit-identical to sequential for the
/// job counts the acceptance criteria pin.
#[test]
fn parallel_analysis_is_bit_identical() {
    let p = corpus::full_corpus();
    let analyzer = Analyzer::with_extensions();
    let seq = analyzer.analyze_project_jobs(&p, 1);
    assert!(!seq.is_empty());
    for jobs in [2, 4] {
        let par = analyzer.analyze_project_jobs(&p, jobs);
        assert_eq!(seq, par, "jobs={jobs} output differs from sequential");
    }
}

/// Optimizer output is impact-ranked with a deterministic total order.
#[test]
fn optimizer_output_is_impact_ranked_and_deterministic() {
    let p = corpus::full_corpus();
    let opt = JepoOptimizer::new();
    let a = opt.suggestions(&p);
    let b = opt.suggestions(&p);
    assert_eq!(a, b, "two runs must agree exactly");
    for w in a.windows(2) {
        assert!(
            w[0].impact >= w[1].impact,
            "impact order violated: {} < {}",
            w[0].impact,
            w[1].impact
        );
        if w[0].impact == w[1].impact {
            let ka = (&w[0].file, w[0].line, w[0].component);
            let kb = (&w[1].file, w[1].line, w[1].component);
            assert!(ka < kb, "tie-break order violated: {ka:?} vs {kb:?}");
        }
    }
    // In-loop hits must actually outrank straight-line hits of the same
    // component when trip counts say so.
    assert!(a[0].impact > a[a.len() - 1].impact);
}

/// The Fig. 5 optimizer view over the bundled corpus, snapshot-pinned so
/// any ranking change shows up as a reviewable diff. Regenerate with
/// `UPDATE_SNAPSHOTS=1 cargo test -p jepo --test flow_analysis`.
#[test]
fn optimizer_view_matches_snapshot() {
    let p = corpus::full_corpus();
    let view = JepoOptimizer::new().view(&p);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/optimizer_view.txt"
    );
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(path, &view).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("snapshot missing — run with UPDATE_SNAPSHOTS=1 to create it");
    assert_eq!(
        view, expected,
        "optimizer view drifted from tests/snapshots/optimizer_view.txt; \
         if intentional, regenerate with UPDATE_SNAPSHOTS=1"
    );
}
