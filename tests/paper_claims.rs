//! Tests pinning the paper's quantitative claims to the reproduction:
//! each test cites the sentence it checks.

use jepo::analyzer::JavaComponent;
use jepo::jvm::Vm;

fn energy(src: &str) -> f64 {
    let mut vm = Vm::from_source(src).unwrap();
    vm.run_main().unwrap().energy.package_j
}

fn main_wrap(decls: &str, body: &str) -> String {
    format!("class M {{ {decls} public static void main(String[] a) {{ {body} }} }}")
}

/// "static keyword result in up to 17,700% increase in energy
/// consumption of variables" — the VM's static accesses must dwarf
/// instance-field accesses by two orders of magnitude.
#[test]
fn claim_static_keyword_is_catastrophic() {
    let stat = energy(&main_wrap(
        "static int c;",
        "for (int i = 0; i < 5000; i++) c = c + 1;",
    ));
    let inst = energy(&main_wrap(
        "int c;",
        "M m = new M(); for (int i = 0; i < 5000; i++) m.c = m.c + 1;",
    ));
    let ratio = stat / inst;
    assert!(ratio > 20.0, "static/instance energy ratio {ratio:.1}");
}

/// "Modulus is the most energy-expensive arithmetic operator."
#[test]
fn claim_modulus_most_expensive_operator() {
    let ops = ["+", "-", "*", "/"];
    let rem = energy(&main_wrap(
        "",
        "int s = 1; for (int i = 1; i < 9000; i++) s = i % 7;",
    ));
    for op in ops {
        let other = energy(&main_wrap(
            "",
            &format!("int s = 1; for (int i = 1; i < 9000; i++) s = i {op} 7;"),
        ));
        assert!(rem > other, "% must beat `{op}`: {rem} vs {other}");
    }
}

/// "StringBuilder append is the best way to concatenate string."
#[test]
fn claim_stringbuilder_beats_concat() {
    let concat = energy(&main_wrap(
        "",
        "String s = \"\"; for (int i = 0; i < 300; i++) s = s + \"x\";",
    ));
    let builder = energy(&main_wrap(
        "",
        "StringBuilder b = new StringBuilder(); for (int i = 0; i < 300; i++) b.append(\"x\");",
    ));
    assert!(concat > builder * 2.0, "{concat} vs {builder}");
}

/// "String comparison method compareTo results in higher energy
/// consumption than equals method."
#[test]
fn claim_compareto_costs_more_than_equals() {
    let cmp = energy(&main_wrap(
        "",
        "int r = 0; for (int i = 0; i < 4000; i++) r = \"abc\".compareTo(\"abd\");",
    ));
    let eq = energy(&main_wrap(
        "",
        "boolean r = false; for (int i = 0; i < 4000; i++) r = \"abc\".equals(\"abd\");",
    ));
    assert!(cmp > eq, "{cmp} vs {eq}");
}

/// "System.arraycopy() is the best way to copy array."
#[test]
fn claim_arraycopy_beats_manual_loop() {
    let manual = energy(&main_wrap(
        "",
        "int[] a = new int[3000]; int[] b = new int[3000];
         for (int i = 0; i < 3000; i++) b[i] = a[i];",
    ));
    let bulk = energy(&main_wrap(
        "",
        "int[] a = new int[3000]; int[] b = new int[3000];
         System.arraycopy(a, 0, b, 0, 3000);",
    ));
    assert!(manual > bulk * 2.0, "{manual} vs {bulk}");
}

/// "Array column traversal is energy expensive than row traversal."
#[test]
fn claim_column_traversal_expensive() {
    let col = energy(&main_wrap(
        "",
        "double[][] m = new double[512][512]; double s = 0;
         for (int j = 0; j < 512; j++) for (int i = 0; i < 512; i++) s += m[i][j];",
    ));
    let row = energy(&main_wrap(
        "",
        "double[][] m = new double[512][512]; double s = 0;
         for (int i = 0; i < 512; i++) for (int j = 0; j < 512; j++) s += m[i][j];",
    ));
    assert!(col > row * 1.5, "{col} vs {row}");
}

/// "Ternary operator consumes higher energy than if-then-else option."
#[test]
fn claim_ternary_costs_more() {
    let tern = energy(&main_wrap(
        "",
        "int s = 0; for (int i = 0; i < 8000; i++) s = i > 4000 ? 1 : 2;",
    ));
    let ifelse = energy(&main_wrap(
        "",
        "int s = 0; for (int i = 0; i < 8000; i++) { if (i > 4000) s = 1; else s = 2; }",
    ));
    assert!(tern > ifelse, "{tern} vs {ifelse}");
}

/// Table I is complete: every component has a rule, a suggestion text,
/// and a worst-case factor consistent with the paper's percentages.
#[test]
fn claim_table1_is_complete() {
    assert_eq!(JavaComponent::ALL.len(), 11);
    for c in JavaComponent::ALL {
        assert!(!c.suggestion_text().is_empty());
        assert!(c.worst_case_factor() >= 1.0);
    }
    assert_eq!(JavaComponent::StaticKeyword.worst_case_factor(), 178.0);
}

/// "The data has 8 attributes and 539,383 instances … We reduce the
/// number of instances to 10,000" — Table III schema constants.
#[test]
fn claim_airlines_schema() {
    use jepo::ml::data::airlines::*;
    assert_eq!(AirlinesGenerator::schema().len(), 8);
    assert_eq!(FULL_SIZE, 539_383);
    assert_eq!(PAPER_SIZE, 10_000);
    assert_eq!(NUM_AIRLINES, 18);
    assert_eq!(NUM_AIRPORTS, 293);
}

/// "WEKA software has 3373 classes and different classifiers …" — we
/// reproduce the ten Table II classifiers by name.
#[test]
fn claim_ten_classifiers() {
    use jepo::ml::classifiers::CLASSIFIER_NAMES;
    assert_eq!(CLASSIFIER_NAMES.len(), 10);
    for expected in [
        "J48",
        "Random Tree",
        "Random Forest",
        "REP Tree",
        "Naive Bayes",
        "Logistic",
        "SMO",
        "SGD",
        "KStar",
        "IBk",
    ] {
        assert!(CLASSIFIER_NAMES.contains(&expected), "{expected}");
    }
}
