//! Integration tests spanning all crates: the full JEPO pipelines from
//! Java source to measured energy, and the paper's headline claims.

use jepo::analyzer::{JavaComponent, RefactorKind};
use jepo::core::{corpus, JepoOptimizer, JepoProfiler, WekaExperiment};
use jepo::jlang::JavaProject;
use jepo::jvm::Vm;
use jepo::ml::EfficiencyProfile;

/// The complete optimizer→profiler loop: analyze, refactor, and verify
/// the energy drop on the instrumented VM — JEPO's reason to exist.
#[test]
fn optimize_then_profile_shows_energy_drop() {
    let mut project = corpus::runnable_project();
    let before = JepoProfiler::new().profile(&project).unwrap();
    let changes = JepoOptimizer::new().apply(&mut project);
    assert!(changes.total_changes > 0);
    let after = JepoProfiler::new().profile(&project).unwrap();
    assert_eq!(before.stdout, after.stdout, "semantics preserved");
    assert!(
        after.energy.package_j < before.energy.package_j,
        "{} -> {}",
        before.energy.package_j,
        after.energy.package_j
    );
    // Per-method records survive the rewrite (same methods exist).
    let names = |r: &jepo::core::ProfileReport| {
        let mut v: Vec<String> = r.records.iter().map(|m| m.name.clone()).collect();
        v.sort();
        v
    };
    assert_eq!(names(&before), names(&after));
}

/// Suggestions point at real lines: applying just the suggested fix at
/// a suggested line removes that suggestion.
#[test]
fn suggestions_are_actionable() {
    let src = "class A { boolean f(String a, String b) { return a.compareTo(b) == 0; } }";
    let before = jepo::analyzer::analyze_source("A.java", src).unwrap();
    assert!(before
        .iter()
        .any(|s| s.component == JavaComponent::StringComparison));
    let mut unit = jepo::jlang::parse_unit(src).unwrap();
    jepo::analyzer::refactor_unit(&mut unit, &[RefactorKind::CompareToToEquals]);
    let fixed = jepo::jlang::pretty_print(&unit);
    let after = jepo::analyzer::analyze_source("A.java", &fixed).unwrap();
    assert!(!after
        .iter()
        .any(|s| s.component == JavaComponent::StringComparison));
}

/// Instrumentation must not change observable behaviour, only add
/// profile events — the Javassist-injection contract of §VII.
#[test]
fn instrumentation_preserves_behaviour() {
    let project = corpus::runnable_project();
    let mut plain = Vm::from_project(&project).unwrap();
    let plain_out = plain.run_main().unwrap();
    let mut probed = Vm::from_project(&project).unwrap();
    probed.instrument();
    let probed_out = probed.run_main().unwrap();
    assert_eq!(plain_out.stdout, probed_out.stdout);
    assert!(plain_out.profile.is_empty());
    assert!(!probed_out.profile.is_empty());
}

/// The headline Table IV claim, end to end: the optimized profile saves
/// double-digit package energy on Random Forest while every other
/// classifier's accuracy survives within half a point.
#[test]
fn table4_headline_shape() {
    let exp = WekaExperiment {
        instances: 600,
        folds: 4,
        ..Default::default()
    };
    let data = exp.dataset();
    let rf = exp.run_classifier("Random Forest", &data);
    assert!(
        rf.package_improvement_pct > 8.0,
        "RF improvement {:.2}%",
        rf.package_improvement_pct
    );
    assert!(rf.cpu_improvement_pct > 8.0);
    assert!(rf.time_improvement_pct > 5.0);
    assert!(rf.accuracy_drop_pct < 1.5);
    let logistic = exp.run_classifier("Logistic", &data);
    assert!(
        logistic.package_improvement_pct.abs() < 1.5,
        "Logistic ~0, got {:.2}%",
        logistic.package_improvement_pct
    );
    assert!(rf.package_improvement_pct > logistic.package_improvement_pct + 5.0);
}

/// The efficiency profiles produce identical predictions *except* for
/// f32-rounding effects — the accuracy drop is bounded, not chaotic.
#[test]
fn profiles_agree_on_most_predictions() {
    use jepo::ml::classifiers::by_name;
    use jepo::ml::Kernel;
    let data = jepo::ml::data::airlines::AirlinesGenerator::new(5).generate(400);
    for name in ["J48", "Naive Bayes", "IBk"] {
        let mut base = by_name(name, Kernel::new(EfficiencyProfile::baseline()), 1).unwrap();
        let mut opt = by_name(name, Kernel::new(EfficiencyProfile::optimized()), 1).unwrap();
        base.fit(&data).unwrap();
        opt.fit(&data).unwrap();
        let disagreements = data
            .instances
            .iter()
            .filter(|r| base.predict(r) != opt.predict(r))
            .count();
        assert!(
            disagreements <= data.len() / 20,
            "{name}: {disagreements}/{} disagreements",
            data.len()
        );
    }
}

/// A multi-file project flows through every layer: parse → analyze →
/// compile → instrument → run → per-method records.
#[test]
fn multi_file_project_full_stack() {
    let mut p = JavaProject::new();
    p.add_file(
        "util/Stats.java",
        "package util;
         public class Stats {
             public static double mean(double[] xs) {
                 double s = 0.0;
                 for (int i = 0; i < xs.length; i++) { s += xs[i]; }
                 return s / xs.length;
             }
         }",
    )
    .unwrap();
    p.add_file(
        "App.java",
        "import util.Stats;
         public class App {
             public static void main(String[] args) {
                 double[] xs = new double[100];
                 for (int i = 0; i < 100; i++) { xs[i] = i % 7; }
                 System.out.println(Stats.mean(xs));
             }
         }",
    )
    .unwrap();
    // Analyzer sees both files.
    let suggestions = jepo::analyzer::analyze_project(&p);
    assert!(suggestions.iter().any(|s| s.file == "App.java"));
    // Profiler runs it.
    let report = JepoProfiler::new().profile(&p).unwrap();
    assert!(report.records.iter().any(|r| r.name == "Stats.mean"));
    let printed: f64 = report.stdout.trim().parse().unwrap();
    assert!((printed - 2.95).abs() < 0.01, "{printed}");
}

/// RAPL substrate round-trip through the public facade: MSR-level reads
/// against the simulator behave like hardware.
#[test]
fn rapl_substrate_register_roundtrip() {
    use jepo::rapl::{DeviceProfile, Domain, MsrDevice, SimulatedRapl};
    let sim = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
    let units = sim.units().unwrap();
    let r0 = sim.read_energy_raw(Domain::Package).unwrap();
    sim.add_dynamic_energy(1.0);
    let r1 = sim.read_energy_raw(Domain::Package).unwrap();
    let joules = units.raw_to_joules(r1.wrapping_sub(r0) as u64);
    assert!((joules - 1.0).abs() < 1e-3);
}
