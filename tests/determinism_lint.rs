//! Repo lint: deterministic-output code paths must not smuggle in
//! nondeterminism.
//!
//! Everything the harness snapshots — analyzer suggestions, impact
//! ranks, VM observables, bench `--selfcheck` gates — is promised
//! bit-identical across runs, machines, and `--jobs` counts. The three
//! classic ways that promise quietly rots:
//!
//! 1. `partial_cmp(..).unwrap()` — panics on NaN, and float sorts built
//!    on it have platform-dependent tiebreaks. Use `f64::total_cmp`.
//! 2. Ambient randomness / wall-clock seeds (`thread_rng`,
//!    `from_entropy`, `SystemTime::now`) — every RNG in this repo must
//!    be seeded from explicit config.
//! 3. `Instant::now` inside analysis code — timing is fine for metrics,
//!    but it must stay in the telemetry crates (`rapl`, `trace`,
//!    `pool`, `bench`, `serve` — the daemon times request latency) or
//!    behind the metrics-guarded sites in
//!    `analyzer/{engine,dataflow}.rs`; it must never feed an output.
//!
//! A line that genuinely needs an exception carries
//! `// det-lint: allow` and is skipped.

use std::path::{Path, PathBuf};

/// Source files of every workspace crate (shims excluded — they mirror
/// external crates' surfaces, including their entropy constructors).
fn workspace_sources() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("crates dir readable") {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Strip line comments so banned names in prose don't trip the lint.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Crates where `Instant::now` is legitimate: the telemetry stack and
/// the bench harness, which exist to measure time.
fn timing_crate(path: &str) -> bool {
    [
        "crates/rapl/",
        "crates/trace/",
        "crates/pool/",
        "crates/bench/",
        "crates/serve/",
    ]
    .iter()
    .any(|p| path.contains(p))
}

/// Analyzer files whose `Instant::now` calls are metrics-guarded
/// (`timed.then(Instant::now)`) and never reach an output row.
fn metrics_guarded(path: &str) -> bool {
    path.ends_with("analyzer/src/engine.rs") || path.ends_with("analyzer/src/dataflow.rs")
}

#[test]
fn deterministic_paths_are_free_of_nondeterminism() {
    let mut violations = Vec::new();
    for path in workspace_sources() {
        let text = std::fs::read_to_string(&path).unwrap();
        let display = path.to_string_lossy().replace('\\', "/");
        let mut in_test_mod = false;
        for (no, line) in text.lines().enumerate() {
            if line.contains("det-lint: allow") {
                continue;
            }
            // Unit-test modules may time things for assertions.
            if line.trim_start().starts_with("#[cfg(test)]") {
                in_test_mod = true;
            }
            let code = code_of(line);
            let mut flag = |why: &str| {
                violations.push(format!("{display}:{}: {why}: {}", no + 1, line.trim()));
            };
            if code.contains("partial_cmp") && code.contains(".unwrap()") {
                flag("partial_cmp(..).unwrap() panics on NaN; use total_cmp");
            }
            for banned in ["thread_rng(", "from_entropy(", "SystemTime::now("] {
                if code.contains(banned) {
                    flag("ambient entropy/wall clock in a deterministic path");
                }
            }
            if code.contains("Instant::now")
                && !timing_crate(&display)
                && !metrics_guarded(&display)
                && !in_test_mod
                && !display.contains("/tests/")
            {
                flag("Instant::now outside the telemetry crates");
            }
        }
    }
    assert!(
        violations.is_empty(),
        "determinism lint failed:\n{}\n\n\
         (fix the call, or mark a justified line with `// det-lint: allow`)",
        violations.join("\n")
    );
}
