//! # jepo — Rust reproduction of *Energy-Efficient Machine Learning on
//! the Edges* (IPPS 2020)
//!
//! The paper's system contribution is **JEPO**, the Java Energy Profiler
//! & Optimizer: an Eclipse plugin that statically suggests (and applies)
//! energy-efficiency fixes for eleven Java component categories, and
//! dynamically measures per-method energy by injecting RAPL-reading
//! probes into bytecode. This workspace rebuilds the whole system and
//! every substrate it depends on, from scratch:
//!
//! | Crate | Role |
//! |---|---|
//! | [`rapl`] (`jepo-rapl`) | RAPL register file, simulator, cost models |
//! | [`jlang`] (`jepo-jlang`) | Java-subset lexer / parser / printer / project |
//! | [`jvm`] (`jepo-jvm`) | energy-modelled bytecode VM + probe injection |
//! | [`analyzer`] (`jepo-analyzer`) | Table I rules, metrics, refactoring |
//! | [`ml`] (`jepo-ml`) | WEKA substrate: ten classifiers, airlines data |
//! | [`core`] (`jepo-core`) | JEPO itself + the paper's evaluation |
//! | [`trace`] (`jepo-trace`) | energy-attributed spans, metrics, Chrome-trace export |
//!
//! ## Quickstart
//!
//! ```
//! // Static side: suggestions for a Java file (the Fig. 2 flow).
//! let suggestions = jepo::analyzer::analyze_source(
//!     "Hot.java",
//!     "class Hot { int f(int x) { return x % 10; } }",
//! ).unwrap();
//! assert!(!suggestions.is_empty());
//!
//! // Dynamic side: profile a project per method (the Fig. 4 flow).
//! let report = jepo::core::JepoProfiler::new()
//!     .profile(&jepo::core::corpus::runnable_project())
//!     .unwrap();
//! assert!(report.records.iter().any(|r| r.name == "Main.main"));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench` for the table/figure reproduction harnesses.

pub use jepo_analyzer as analyzer;
pub use jepo_core as core;
pub use jepo_jlang as jlang;
pub use jepo_jvm as jvm;
pub use jepo_ml as ml;
pub use jepo_rapl as rapl;
pub use jepo_trace as trace;
