//! Property tests: random ASTs survive print → parse → print.
//!
//! The refactoring engine depends on the printer emitting source the
//! parser accepts with identical structure; these properties pin that
//! contract over generated programs, not just hand-picked ones.

use jepo_jlang::*;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,6}".prop_filter("not a keyword", |s| {
        !TokenKind::KEYWORDS.contains(&s.as_str())
    })
}

fn literal() -> impl Strategy<Value = ExprKind> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(|v| ExprKind::Literal(Lit::Int {
            value: v,
            long: false
        })),
        (-1_000_000i64..1_000_000).prop_map(|v| ExprKind::Literal(Lit::Int {
            value: v,
            long: true
        })),
        (-1e6f64..1e6).prop_map(|v| ExprKind::Literal(Lit::Float {
            value: v,
            float32: false,
            scientific: false,
        })),
        any::<bool>().prop_map(|b| ExprKind::Literal(Lit::Bool(b))),
        "[a-zA-Z0-9 _.,!]{0,12}".prop_map(|s| ExprKind::Literal(Lit::Str(s))),
    ]
}

fn arith_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::BitAnd),
        Just(BinOp::BitOr),
        Just(BinOp::Shl),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), ident().prop_map(ExprKind::Name)]
        .prop_map(|kind| Expr::new(kind, Span::synthetic()));
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (arith_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                Expr::new(
                    ExprKind::Binary(op, Box::new(l), Box::new(r)),
                    Span::synthetic(),
                )
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| {
                Expr::new(
                    ExprKind::Ternary(
                        Box::new(Expr::new(
                            ExprKind::Binary(BinOp::Lt, Box::new(c), Box::new(t.clone())),
                            Span::synthetic(),
                        )),
                        Box::new(t),
                        Box::new(f),
                    ),
                    Span::synthetic(),
                )
            }),
            inner.clone().prop_map(|e| {
                Expr::new(
                    ExprKind::Unary(UnaryOp::Neg, Box::new(e)),
                    Span::synthetic(),
                )
            }),
            (ident(), proptest::collection::vec(inner.clone(), 0..3)).prop_map(|(name, args)| {
                Expr::new(
                    ExprKind::Call {
                        target: None,
                        name,
                        args,
                    },
                    Span::synthetic(),
                )
            }),
            (inner.clone(), ident()).prop_map(|(e, f)| {
                Expr::new(ExprKind::FieldAccess(Box::new(e), f), Span::synthetic())
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One print/parse pass canonicalizes (e.g. a negative literal
    /// becomes unary-neg); after that, print → parse → print is a fixed
    /// point.
    #[test]
    fn expr_print_parse_roundtrip(e in expr()) {
        let first = printer::print_expr(&e);
        let canonical = parse_expression(&first)
            .unwrap_or_else(|err| panic!("`{first}` failed to reparse: {err}"));
        let second = printer::print_expr(&canonical);
        let again = parse_expression(&second)
            .unwrap_or_else(|err| panic!("`{second}` failed to reparse: {err}"));
        prop_assert_eq!(printer::print_expr(&again), second);
    }

    /// A generated method body built from locals roundtrips at the unit
    /// level.
    #[test]
    fn unit_print_parse_roundtrip(
        exprs in proptest::collection::vec(expr(), 1..6),
        name in ident(),
    ) {
        let stmts: Vec<Stmt> = exprs
            .into_iter()
            .map(|e| Stmt {
                kind: StmtKind::Local {
                    is_final: false,
                    ty: Type::Prim(PrimType::Int),
                    vars: vec![(format!("v{name}"), 0, Some(e))],
                },
                span: Span::synthetic(),
            })
            .collect();
        let unit = CompilationUnit {
            package: None,
            imports: vec![],
            types: vec![ClassDecl {
                modifiers: Modifiers::default(),
                name: "G".into(),
                is_interface: false,
                extends: None,
                implements: vec![],
                fields: vec![],
                methods: vec![MethodDecl {
                    modifiers: Modifiers::default(),
                    ret: Type::Void,
                    name: "gen".into(),
                    params: vec![],
                    throws: vec![],
                    body: Some(Block { stmts, span: Span::synthetic() }),
                    span: Span::synthetic(),
                }],
                span: Span::synthetic(),
            }],
        };
        let first = pretty_print(&unit);
        let canonical = parse_unit(&first)
            .unwrap_or_else(|err| panic!("{err}\nsource:\n{first}"));
        let second = pretty_print(&canonical);
        let again = parse_unit(&second)
            .unwrap_or_else(|err| panic!("{err}\nsource:\n{second}"));
        prop_assert_eq!(pretty_print(&again), second);
    }

    /// The refactoring engine never produces unparseable output on
    /// generated units.
    #[test]
    fn refactor_output_reparses(exprs in proptest::collection::vec(expr(), 1..4)) {
        let methods: Vec<MethodDecl> = exprs
            .into_iter()
            .enumerate()
            .map(|(i, e)| MethodDecl {
                modifiers: Modifiers::default(),
                ret: Type::Prim(PrimType::Int),
                name: format!("m{i}"),
                params: vec![],
                throws: vec![],
                body: Some(Block {
                    stmts: vec![Stmt {
                        kind: StmtKind::Return(Some(e)),
                        span: Span::point(i as u32 + 1, 1),
                    }],
                    span: Span::synthetic(),
                }),
                span: Span::synthetic(),
            })
            .collect();
        let src_unit = CompilationUnit {
            package: None,
            imports: vec![],
            types: vec![ClassDecl {
                modifiers: Modifiers::default(),
                name: "R".into(),
                is_interface: false,
                extends: None,
                implements: vec![],
                fields: vec![],
                methods,
                span: Span::synthetic(),
            }],
        };
        // Normalize through one print/parse first (generated ASTs may
        // contain shapes the printer canonicalizes).
        let printed = pretty_print(&src_unit);
        let mut unit = parse_unit(&printed).unwrap();
        jepo_analyzer::refactor_unit(&mut unit, &jepo_analyzer::RefactorKind::SAFE);
        let out = pretty_print(&unit);
        parse_unit(&out).unwrap_or_else(|err| panic!("{err}\nrefactored:\n{out}"));
    }
}
