//! Recursive-descent parser for the Java subset.
//!
//! Produces the spanned AST of [`crate::ast`]. Operator precedence follows
//! the Java Language Specification; assignment and the ternary operator
//! are right-associative, everything else left-associative.

use crate::ast::*;
use crate::token::{Token, TokenKind};
use crate::{lexer, ParseError, Span};

/// Parameters, throws clause and optional body of a parsed method.
type MethodTail = (Vec<Param>, Vec<String>, Option<Block>);

/// Parse a whole compilation unit (one `.java` file).
pub fn parse_unit(src: &str) -> Result<CompilationUnit, ParseError> {
    let tokens = lexer::lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.compilation_unit()
}

/// Parse a single expression (used by tests and the dynamic analyzer).
pub fn parse_expression(src: &str) -> Result<Expr, ParseError> {
    let tokens = lexer::lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, ahead: usize) -> &Token {
        &self.tokens[(self.pos + ahead).min(self.tokens.len() - 1)]
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().kind.is_punct(p)
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().kind.is_keyword(kw)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Span, ParseError> {
        if self.at_punct(p) {
            Ok(self.advance().span)
        } else {
            Err(self.unexpected(&format!("`{p}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !TokenKind::KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                let sp = self.advance().span;
                Ok((s, sp))
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::new(
            format!("expected {wanted}, found {}", self.peek().kind.describe()),
            self.span(),
        )
    }

    // ---- declarations --------------------------------------------------

    fn compilation_unit(&mut self) -> Result<CompilationUnit, ParseError> {
        let mut package = None;
        if self.eat_kw("package") {
            package = Some(self.qualified_name()?);
            self.expect_punct(";")?;
        }
        let mut imports = Vec::new();
        while self.eat_kw("import") {
            self.eat_kw("static");
            let mut name = self.qualified_name()?;
            if self.eat_punct(".") {
                self.expect_punct("*")?;
                name.push_str(".*");
            }
            self.expect_punct(";")?;
            imports.push(name);
        }
        let mut types = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            types.push(self.class_decl()?);
        }
        Ok(CompilationUnit {
            package,
            imports,
            types,
        })
    }

    fn qualified_name(&mut self) -> Result<String, ParseError> {
        let (mut name, _) = self.expect_ident()?;
        // Stop before `.*` (handled by caller) and before `.` that isn't
        // followed by a plain identifier.
        while self.at_punct(".")
            && matches!(&self.peek_at(1).kind,
                TokenKind::Ident(s) if !TokenKind::KEYWORDS.contains(&s.as_str()))
        {
            self.advance();
            let (part, _) = self.expect_ident()?;
            name.push('.');
            name.push_str(&part);
        }
        Ok(name)
    }

    fn modifiers(&mut self) -> Modifiers {
        let mut m = Modifiers::default();
        loop {
            if self.eat_kw("public") {
                m.public = true;
            } else if self.eat_kw("private") {
                m.private = true;
            } else if self.eat_kw("protected") {
                m.protected = true;
            } else if self.eat_kw("static") {
                m.is_static = true;
            } else if self.eat_kw("final") {
                m.is_final = true;
            } else if self.eat_kw("abstract") {
                m.is_abstract = true;
            } else if self.at_kw("synchronized") && !self.peek_at(1).kind.is_punct("(") {
                self.advance(); // method modifier; ignored semantically
            } else if self.eat_kw("native") || self.eat_kw("transient") || self.eat_kw("volatile") {
                // accepted, not modelled
            } else {
                return m;
            }
        }
    }

    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        let start = self.span();
        let modifiers = self.modifiers();
        let is_interface = if self.eat_kw("class") {
            false
        } else if self.eat_kw("interface") {
            true
        } else {
            return Err(self.unexpected("`class` or `interface`"));
        };
        let (name, _) = self.expect_ident()?;
        self.skip_type_params();
        let mut extends = None;
        let mut implements = Vec::new();
        if self.eat_kw("extends") {
            extends = Some(self.qualified_name()?);
            self.skip_type_params();
            // interfaces may extend several
            while is_interface && self.eat_punct(",") {
                implements.push(self.qualified_name()?);
                self.skip_type_params();
            }
        }
        if self.eat_kw("implements") {
            loop {
                implements.push(self.qualified_name()?);
                self.skip_type_params();
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Err(self.unexpected("`}` closing class body"));
            }
            self.member(&name, &mut fields, &mut methods)?;
        }
        let end = self.expect_punct("}")?;
        Ok(ClassDecl {
            modifiers,
            name,
            is_interface,
            extends,
            implements,
            fields,
            methods,
            span: start.merge(end),
        })
    }

    /// Skip `<...>` generic parameter/argument lists (balanced).
    fn skip_type_params(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut depth = 0usize;
        loop {
            if self.at_punct("<") {
                depth += 1;
            } else if self.at_punct(">") {
                depth -= 1;
                if depth == 0 {
                    self.advance();
                    return;
                }
            } else if self.at_punct(">>") {
                depth = depth.saturating_sub(2);
                if depth == 0 {
                    self.advance();
                    return;
                }
            } else if matches!(self.peek().kind, TokenKind::Eof) {
                return;
            }
            self.advance();
        }
    }

    fn member(
        &mut self,
        class_name: &str,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> Result<(), ParseError> {
        let start = self.span();
        let modifiers = self.modifiers();
        // Static / instance initializer block: treat as a method named
        // `<clinit>` / `<init-block>` so nothing is silently dropped.
        if self.at_punct("{") {
            let body = self.block()?;
            methods.push(MethodDecl {
                modifiers,
                ret: Type::Void,
                name: if modifiers.is_static {
                    "<clinit>".into()
                } else {
                    "<init-block>".into()
                },
                params: vec![],
                throws: vec![],
                body: Some(body),
                span: start,
            });
            return Ok(());
        }
        // Constructor: `Name (` with Name == class name.
        if let TokenKind::Ident(id) = &self.peek().kind {
            if id == class_name && self.peek_at(1).kind.is_punct("(") {
                let (name, _) = self.expect_ident()?;
                let (params, throws, body) = self.method_tail()?;
                methods.push(MethodDecl {
                    modifiers,
                    ret: Type::Void,
                    name,
                    params,
                    throws,
                    body,
                    span: start.merge(self.prev_span()),
                });
                return Ok(());
            }
        }
        let ret = if self.eat_kw("void") {
            Type::Void
        } else {
            self.parse_type()?
        };
        let (name, _) = self.expect_ident()?;
        if self.at_punct("(") {
            let (params, throws, body) = self.method_tail()?;
            methods.push(MethodDecl {
                modifiers,
                ret,
                name,
                params,
                throws,
                body,
                span: start.merge(self.prev_span()),
            });
        } else {
            // Field declaration, possibly with several declarators.
            let mut decl_name = name;
            loop {
                let mut ty = ret.clone();
                let mut extra = 0u8;
                while self.eat_punct("[") {
                    self.expect_punct("]")?;
                    extra += 1;
                }
                if extra > 0 {
                    ty = match ty {
                        Type::Array(inner, d) => Type::Array(inner, d + extra),
                        other => Type::Array(Box::new(other), extra),
                    };
                }
                let init = if self.eat_punct("=") {
                    Some(self.var_init()?)
                } else {
                    None
                };
                fields.push(FieldDecl {
                    modifiers,
                    ty,
                    name: decl_name,
                    init,
                    span: start.merge(self.prev_span()),
                });
                if self.eat_punct(",") {
                    decl_name = self.expect_ident()?.0;
                } else {
                    break;
                }
            }
            self.expect_punct(";")?;
        }
        Ok(())
    }

    fn method_tail(&mut self) -> Result<MethodTail, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                self.eat_kw("final");
                let mut ty = self.parse_type()?;
                // Varargs: treat `T...` as `T[]`.
                if self.eat_punct("...") {
                    ty = Type::Array(Box::new(ty), 1);
                }
                let (name, _) = self.expect_ident()?;
                let mut extra = 0u8;
                while self.eat_punct("[") {
                    self.expect_punct("]")?;
                    extra += 1;
                }
                if extra > 0 {
                    ty = match ty {
                        Type::Array(inner, d) => Type::Array(inner, d + extra),
                        other => Type::Array(Box::new(other), extra),
                    };
                }
                params.push(Param { ty, name });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let mut throws = Vec::new();
        if self.eat_kw("throws") {
            loop {
                throws.push(self.qualified_name()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let body = if self.eat_punct(";") {
            None
        } else {
            Some(self.block()?)
        };
        Ok((params, throws, body))
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let base = if let TokenKind::Ident(id) = &self.peek().kind {
            if let Some(p) = PrimType::from_keyword(id) {
                self.advance();
                Type::Prim(p)
            } else if TokenKind::KEYWORDS.contains(&id.as_str()) {
                return Err(self.unexpected("type"));
            } else {
                let name = self.qualified_name()?;
                let args = self.maybe_type_args()?;
                Type::Class(name, args)
            }
        } else {
            return Err(self.unexpected("type"));
        };
        let mut dims = 0u8;
        while self.at_punct("[") && self.peek_at(1).kind.is_punct("]") {
            self.advance();
            self.advance();
            dims += 1;
        }
        Ok(if dims > 0 {
            Type::Array(Box::new(base), dims)
        } else {
            base
        })
    }

    fn maybe_type_args(&mut self) -> Result<Vec<Type>, ParseError> {
        // Only parse `<...>` as type arguments in a type position.
        if !self.at_punct("<") {
            return Ok(Vec::new());
        }
        // Diamond `<>`.
        if self.peek_at(1).kind.is_punct(">") {
            self.advance();
            self.advance();
            return Ok(Vec::new());
        }
        let save = self.pos;
        self.advance(); // <
        let mut args = Vec::new();
        loop {
            if self.eat_punct("?") {
                if self.eat_kw("extends") || self.eat_kw("super") {
                    let _ = self.parse_type();
                }
                args.push(Type::class("?"));
            } else {
                match self.parse_type() {
                    Ok(t) => args.push(t),
                    Err(_) => {
                        self.pos = save;
                        return Ok(Vec::new());
                    }
                }
            }
            if self.eat_punct(",") {
                continue;
            }
            if self.eat_punct(">") {
                return Ok(args);
            }
            // `>>` closing two levels at once: leave outer `>` by
            // rewriting — simplest is to backtrack and give up on args.
            self.pos = save;
            return Ok(Vec::new());
        }
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        let start = self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect_punct("}")?;
        Ok(Block {
            stmts,
            span: start.merge(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        let kind = if self.at_punct("{") {
            StmtKind::Block(self.block()?)
        } else if self.eat_punct(";") {
            StmtKind::Empty
        } else if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            StmtKind::If { cond, then, els }
        } else if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            StmtKind::While {
                cond,
                body: Box::new(self.stmt()?),
            }
        } else if self.eat_kw("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_kw("while") {
                return Err(self.unexpected("`while`"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            StmtKind::DoWhile { body, cond }
        } else if self.eat_kw("for") {
            self.for_stmt()?
        } else if self.eat_kw("switch") {
            self.switch_stmt()?
        } else if self.eat_kw("return") {
            let e = if self.at_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            StmtKind::Return(e)
        } else if self.eat_kw("break") {
            // labelled break not modelled; accept and drop the label
            if let TokenKind::Ident(s) = &self.peek().kind {
                if !TokenKind::KEYWORDS.contains(&s.as_str()) {
                    self.advance();
                }
            }
            self.expect_punct(";")?;
            StmtKind::Break
        } else if self.eat_kw("continue") {
            if let TokenKind::Ident(s) = &self.peek().kind {
                if !TokenKind::KEYWORDS.contains(&s.as_str()) {
                    self.advance();
                }
            }
            self.expect_punct(";")?;
            StmtKind::Continue
        } else if self.eat_kw("throw") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            StmtKind::Throw(e)
        } else if self.eat_kw("try") {
            self.try_stmt()?
        } else if self.at_kw("synchronized") {
            self.advance();
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            StmtKind::Synchronized(e, self.block()?)
        } else {
            // Local declaration vs expression statement.
            match self.try_local_decl()? {
                Some(kind) => kind,
                None => {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    StmtKind::Expr(e)
                }
            }
        };
        Ok(Stmt {
            kind,
            span: start.merge(self.prev_span()),
        })
    }

    /// Attempt to parse a local variable declaration; backtracks and
    /// returns `None` when the lookahead is actually an expression.
    fn try_local_decl(&mut self) -> Result<Option<StmtKind>, ParseError> {
        let save = self.pos;
        let is_final = self.eat_kw("final");
        let looks_like_type = match &self.peek().kind {
            TokenKind::Ident(id) => {
                PrimType::from_keyword(id).is_some()
                    || (!TokenKind::KEYWORDS.contains(&id.as_str()) && self.decl_lookahead())
            }
            _ => false,
        };
        if !looks_like_type {
            if is_final {
                return Err(self.unexpected("type after `final`"));
            }
            self.pos = save;
            return Ok(None);
        }
        let ty = match self.parse_type() {
            Ok(t) => t,
            Err(_) => {
                self.pos = save;
                return Ok(None);
            }
        };
        // Must now see `ident` then one of `= , ; [`.
        let ok_shape = matches!(&self.peek().kind, TokenKind::Ident(s)
            if !TokenKind::KEYWORDS.contains(&s.as_str()))
            && matches!(
                &self.peek_at(1).kind,
                TokenKind::Punct("=")
                    | TokenKind::Punct(",")
                    | TokenKind::Punct(";")
                    | TokenKind::Punct("[")
            );
        if !ok_shape {
            self.pos = save;
            return Ok(None);
        }
        let mut vars = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            let mut extra = 0u8;
            while self.eat_punct("[") {
                self.expect_punct("]")?;
                extra += 1;
            }
            let init = if self.eat_punct("=") {
                Some(self.var_init()?)
            } else {
                None
            };
            vars.push((name, extra, init));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(Some(StmtKind::Local { is_final, ty, vars }))
    }

    /// Heuristic: does the token stream after an identifier look like a
    /// declaration (`Foo x`, `Foo[] x`, `Foo<T> x`) rather than an
    /// expression (`foo(`, `foo.bar`, `foo =`, `foo[i] =`)?
    fn decl_lookahead(&self) -> bool {
        let mut i = 1;
        // Skip qualified name parts: `a.b.C`
        while self.peek_at(i).kind.is_punct(".")
            && matches!(&self.peek_at(i + 1).kind, TokenKind::Ident(s)
                if !TokenKind::KEYWORDS.contains(&s.as_str()))
        {
            i += 2;
        }
        // Skip generics conservatively: `<` ... `>` with only type-ish
        // tokens inside.
        if self.peek_at(i).kind.is_punct("<") {
            let mut depth = 0usize;
            loop {
                let k = &self.peek_at(i).kind;
                if k.is_punct("<") {
                    depth += 1;
                } else if k.is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                } else if k.is_punct(">>") {
                    if depth <= 2 {
                        i += 1;
                        break;
                    }
                    depth -= 2;
                } else if matches!(k, TokenKind::Eof)
                    || k.is_punct(";")
                    || k.is_punct("{")
                    || k.is_punct("(")
                    || (!matches!(k, TokenKind::Ident(_))
                        && !k.is_punct(",")
                        && !k.is_punct("?")
                        && !k.is_punct("[")
                        && !k.is_punct("]")
                        && !k.is_punct("."))
                {
                    return false;
                }
                i += 1;
            }
        }
        // Skip `[]` pairs.
        while self.peek_at(i).kind.is_punct("[") && self.peek_at(i + 1).kind.is_punct("]") {
            i += 2;
        }
        // Declaration iff an identifier follows.
        matches!(&self.peek_at(i).kind, TokenKind::Ident(s)
            if !TokenKind::KEYWORDS.contains(&s.as_str()))
    }

    fn var_init(&mut self) -> Result<Expr, ParseError> {
        if self.at_punct("{") {
            let start = self.advance().span; // {
            let mut items = Vec::new();
            if !self.at_punct("}") {
                loop {
                    items.push(self.var_init()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if self.at_punct("}") {
                        break; // trailing comma
                    }
                }
            }
            let end = self.expect_punct("}")?;
            Ok(Expr::new(ExprKind::ArrayInit(items), start.merge(end)))
        } else {
            self.expr()
        }
    }

    fn for_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_punct("(")?;
        // Enhanced for: `Type name : expr`
        let save = self.pos;
        if let Ok(Some((ty, name, iter))) = self.try_foreach_header() {
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(StmtKind::ForEach {
                ty,
                name,
                iter,
                body,
            });
        }
        self.pos = save;
        // Classic for.
        let mut init = Vec::new();
        if !self.eat_punct(";") {
            let start = self.span();
            match self.try_local_decl()? {
                Some(kind) => init.push(Stmt {
                    kind,
                    span: start.merge(self.prev_span()),
                }),
                None => {
                    loop {
                        let e = self.expr()?;
                        let sp = e.span;
                        init.push(Stmt {
                            kind: StmtKind::Expr(e),
                            span: sp,
                        });
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(";")?;
                }
            }
        }
        let cond = if self.at_punct(";") {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(";")?;
        let mut update = Vec::new();
        if !self.at_punct(")") {
            loop {
                update.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let body = Box::new(self.stmt()?);
        Ok(StmtKind::For {
            init,
            cond,
            update,
            body,
        })
    }

    fn try_foreach_header(&mut self) -> Result<Option<(Type, String, Expr)>, ParseError> {
        self.eat_kw("final");
        let ty = match self.parse_type() {
            Ok(t) => t,
            Err(_) => return Ok(None),
        };
        let name = match self.expect_ident() {
            Ok((n, _)) => n,
            Err(_) => return Ok(None),
        };
        if !self.eat_punct(":") {
            return Ok(None);
        }
        let iter = self.expr()?;
        Ok(Some((ty, name, iter)))
    }

    fn switch_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_punct("(")?;
        let scrutinee = self.expr()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            if self.eat_kw("case") {
                let label = Some(self.expr()?);
                self.expect_punct(":")?;
                match cases.last_mut() {
                    Some(c) if c.body.is_empty() => c.labels.push(label),
                    _ => cases.push(SwitchCase {
                        labels: vec![label],
                        body: vec![],
                    }),
                }
            } else if self.eat_kw("default") {
                self.expect_punct(":")?;
                match cases.last_mut() {
                    Some(c) if c.body.is_empty() => c.labels.push(None),
                    _ => cases.push(SwitchCase {
                        labels: vec![None],
                        body: vec![],
                    }),
                }
            } else {
                let stmt = self.stmt()?;
                match cases.last_mut() {
                    Some(c) => c.body.push(stmt),
                    None => return Err(ParseError::new("statement before first case", stmt.span)),
                }
            }
        }
        self.expect_punct("}")?;
        Ok(StmtKind::Switch { scrutinee, cases })
    }

    fn try_stmt(&mut self) -> Result<StmtKind, ParseError> {
        let body = self.block()?;
        let mut catches = Vec::new();
        while self.eat_kw("catch") {
            self.expect_punct("(")?;
            self.eat_kw("final");
            let ty = self.parse_type()?;
            let (name, _) = self.expect_ident()?;
            self.expect_punct(")")?;
            catches.push((ty, name, self.block()?));
        }
        let finally = if self.eat_kw("finally") {
            Some(self.block()?)
        } else {
            None
        };
        if catches.is_empty() && finally.is_none() {
            return Err(self.unexpected("`catch` or `finally`"));
        }
        Ok(StmtKind::Try {
            body,
            catches,
            finally,
        })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = if self.at_punct("=") {
            Some(AssignOp::Assign)
        } else {
            let compound = [
                ("+=", BinOp::Add),
                ("-=", BinOp::Sub),
                ("*=", BinOp::Mul),
                ("/=", BinOp::Div),
                ("%=", BinOp::Rem),
                ("&=", BinOp::BitAnd),
                ("|=", BinOp::BitOr),
                ("^=", BinOp::BitXor),
                ("<<=", BinOp::Shl),
                (">>=", BinOp::Shr),
                (">>>=", BinOp::UShr),
            ];
            compound
                .iter()
                .find(|(sym, _)| self.at_punct(sym))
                .map(|(_, op)| AssignOp::Compound(*op))
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.assignment()?; // right-associative
            let span = lhs.span.merge(rhs.span);
            Ok(Expr::new(
                ExprKind::Assign(Box::new(lhs), op, Box::new(rhs)),
                span,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.ternary()?;
            let span = cond.span.merge(els.span);
            Ok(Expr::new(
                ExprKind::Ternary(Box::new(cond), Box::new(then), Box::new(els)),
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over the JLS binary-operator table.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            // `instanceof` sits between relational and equality.
            if min_prec <= 5 && self.at_kw("instanceof") {
                self.advance();
                let ty = self.parse_type()?;
                let span = lhs.span.merge(self.prev_span());
                lhs = Expr::new(ExprKind::InstanceOf(Box::new(lhs), ty), span);
                continue;
            }
            let (op, prec) = match () {
                _ if self.at_punct("||") => (BinOp::Or, 1),
                _ if self.at_punct("&&") => (BinOp::And, 2),
                _ if self.at_punct("|") => (BinOp::BitOr, 3),
                _ if self.at_punct("^") => (BinOp::BitXor, 3),
                _ if self.at_punct("&") => (BinOp::BitAnd, 3),
                _ if self.at_punct("==") => (BinOp::Eq, 4),
                _ if self.at_punct("!=") => (BinOp::Ne, 4),
                _ if self.at_punct("<") => (BinOp::Lt, 5),
                _ if self.at_punct("<=") => (BinOp::Le, 5),
                _ if self.at_punct(">") => (BinOp::Gt, 5),
                _ if self.at_punct(">=") => (BinOp::Ge, 5),
                _ if self.at_punct("<<") => (BinOp::Shl, 6),
                _ if self.at_punct(">>") => (BinOp::Shr, 6),
                _ if self.at_punct(">>>") => (BinOp::UShr, 6),
                _ if self.at_punct("+") => (BinOp::Add, 7),
                _ if self.at_punct("-") => (BinOp::Sub, 7),
                _ if self.at_punct("*") => (BinOp::Mul, 8),
                _ if self.at_punct("/") => (BinOp::Div, 8),
                _ if self.at_punct("%") => (BinOp::Rem, 8),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let op = match () {
            _ if self.at_punct("-") => Some(UnaryOp::Neg),
            _ if self.at_punct("+") => Some(UnaryOp::Plus),
            _ if self.at_punct("!") => Some(UnaryOp::Not),
            _ if self.at_punct("~") => Some(UnaryOp::BitNot),
            _ if self.at_punct("++") => Some(UnaryOp::PreInc),
            _ if self.at_punct("--") => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let e = self.unary()?;
            let span = start.merge(e.span);
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(e)), span));
        }
        // Cast?
        if self.at_punct("(") {
            if let Some(expr) = self.try_cast()? {
                return Ok(expr);
            }
        }
        self.postfix()
    }

    /// Attempt `(Type) unary`; backtracks on failure.
    fn try_cast(&mut self) -> Result<Option<Expr>, ParseError> {
        let save = self.pos;
        let start = self.span();
        self.advance(); // (
        let is_prim = matches!(&self.peek().kind,
            TokenKind::Ident(id) if PrimType::from_keyword(id).is_some());
        let ty = match self.parse_type() {
            Ok(t) => t,
            Err(_) => {
                self.pos = save;
                return Ok(None);
            }
        };
        if !self.at_punct(")") {
            self.pos = save;
            return Ok(None);
        }
        // For class-type casts, require the next token to start a cast
        // operand unambiguously — otherwise `(a) + b` would misparse.
        let next = &self.peek_at(1).kind;
        let operand_start = matches!(
            next,
            TokenKind::Ident(_)
                | TokenKind::IntLit { .. }
                | TokenKind::FloatLit { .. }
                | TokenKind::StrLit(_)
                | TokenKind::CharLit(_)
        ) || next.is_punct("(")
            || next.is_punct("!")
            || next.is_punct("~");
        let is_array = matches!(ty, Type::Array(..));
        if !is_prim && !is_array && !operand_start {
            self.pos = save;
            return Ok(None);
        }
        if is_prim
            && !operand_start
            && !self.peek_at(1).kind.is_punct("-")
            && !self.peek_at(1).kind.is_punct("+")
        {
            self.pos = save;
            return Ok(None);
        }
        self.advance(); // )
        let e = self.unary()?;
        let span = start.merge(e.span);
        Ok(Some(Expr::new(ExprKind::Cast(ty, Box::new(e)), span)))
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.at_punct(".") {
                self.advance();
                let (name, nsp) = self.expect_ident()?;
                if self.at_punct("(") {
                    let args = self.arg_list()?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr::new(
                        ExprKind::Call {
                            target: Some(Box::new(e)),
                            name,
                            args,
                        },
                        span,
                    );
                } else {
                    let span = e.span.merge(nsp);
                    e = Expr::new(ExprKind::FieldAccess(Box::new(e), name), span);
                }
            } else if self.at_punct("[") {
                let mut idxs = Vec::new();
                while self.at_punct("[") && !self.peek_at(1).kind.is_punct("]") {
                    self.advance();
                    idxs.push(self.expr()?);
                    self.expect_punct("]")?;
                }
                if idxs.is_empty() {
                    break;
                }
                let span = e.span.merge(self.prev_span());
                e = Expr::new(ExprKind::Index(Box::new(e), idxs), span);
            } else if self.at_punct("++") {
                self.advance();
                let span = e.span.merge(self.prev_span());
                e = Expr::new(ExprKind::Unary(UnaryOp::PostInc, Box::new(e)), span);
            } else if self.at_punct("--") {
                self.advance();
                let span = e.span.merge(self.prev_span());
                e = Expr::new(ExprKind::Unary(UnaryOp::PostDec, Box::new(e)), span);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.at_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let tok = self.peek().kind.clone();
        match tok {
            TokenKind::IntLit { value, long } => {
                self.advance();
                Ok(Expr::new(
                    ExprKind::Literal(Lit::Int { value, long }),
                    start,
                ))
            }
            TokenKind::FloatLit {
                value,
                float32,
                scientific,
            } => {
                self.advance();
                Ok(Expr::new(
                    ExprKind::Literal(Lit::Float {
                        value,
                        float32,
                        scientific,
                    }),
                    start,
                ))
            }
            TokenKind::CharLit(c) => {
                self.advance();
                Ok(Expr::new(ExprKind::Literal(Lit::Char(c)), start))
            }
            TokenKind::StrLit(s) => {
                self.advance();
                Ok(Expr::new(ExprKind::Literal(Lit::Str(s)), start))
            }
            TokenKind::Punct("(") => {
                self.advance();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(id) => {
                if id == "true" || id == "false" {
                    self.advance();
                    return Ok(Expr::new(ExprKind::Literal(Lit::Bool(id == "true")), start));
                }
                if id == "null" {
                    self.advance();
                    return Ok(Expr::new(ExprKind::Literal(Lit::Null), start));
                }
                if id == "this" {
                    self.advance();
                    if self.at_punct("(") {
                        // this(...) constructor delegation — model as call
                        let args = self.arg_list()?;
                        let span = start.merge(self.prev_span());
                        return Ok(Expr::new(
                            ExprKind::Call {
                                target: None,
                                name: "<this>".into(),
                                args,
                            },
                            span,
                        ));
                    }
                    return Ok(Expr::new(ExprKind::This, start));
                }
                if id == "super" {
                    self.advance();
                    if self.at_punct("(") {
                        let args = self.arg_list()?;
                        let span = start.merge(self.prev_span());
                        return Ok(Expr::new(
                            ExprKind::Call {
                                target: None,
                                name: "<super>".into(),
                                args,
                            },
                            span,
                        ));
                    }
                    // super.method(...) / super.field
                    self.expect_punct(".")?;
                    let (name, _) = self.expect_ident()?;
                    if self.at_punct("(") {
                        let args = self.arg_list()?;
                        let span = start.merge(self.prev_span());
                        return Ok(Expr::new(
                            ExprKind::Call {
                                target: Some(Box::new(Expr::new(
                                    ExprKind::Name("super".into()),
                                    start,
                                ))),
                                name,
                                args,
                            },
                            span,
                        ));
                    }
                    let span = start.merge(self.prev_span());
                    return Ok(Expr::new(
                        ExprKind::FieldAccess(
                            Box::new(Expr::new(ExprKind::Name("super".into()), start)),
                            name,
                        ),
                        span,
                    ));
                }
                if id == "new" {
                    return self.new_expr();
                }
                if TokenKind::KEYWORDS.contains(&id.as_str()) {
                    return Err(self.unexpected("expression"));
                }
                self.advance();
                if self.at_punct("(") {
                    let args = self.arg_list()?;
                    let span = start.merge(self.prev_span());
                    return Ok(Expr::new(
                        ExprKind::Call {
                            target: None,
                            name: id,
                            args,
                        },
                        span,
                    ));
                }
                Ok(Expr::new(ExprKind::Name(id), start))
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn new_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.advance().span; // new
                                         // Primitive array?
        if let TokenKind::Ident(id) = &self.peek().kind {
            if let Some(p) = PrimType::from_keyword(id) {
                self.advance();
                return self.new_array_tail(Type::Prim(p), start);
            }
        }
        let name = self.qualified_name()?;
        let _args = self.maybe_type_args()?;
        if self.at_punct("[") {
            return self.new_array_tail(Type::class(&name), start);
        }
        let args = self.arg_list()?;
        let span = start.merge(self.prev_span());
        Ok(Expr::new(ExprKind::New { class: name, args }, span))
    }

    fn new_array_tail(&mut self, elem: Type, start: Span) -> Result<Expr, ParseError> {
        let mut dims = Vec::new();
        let mut extra = 0u8;
        // `new T[]{...}` initializer form.
        if self.at_punct("[") && self.peek_at(1).kind.is_punct("]") {
            while self.at_punct("[") && self.peek_at(1).kind.is_punct("]") {
                self.advance();
                self.advance();
                extra += 1;
            }
            let init = match self.var_init()? {
                Expr {
                    kind: ExprKind::ArrayInit(items),
                    ..
                } => items,
                other => vec![other],
            };
            let span = start.merge(self.prev_span());
            return Ok(Expr::new(
                ExprKind::NewArray {
                    elem,
                    dims,
                    extra_dims: extra,
                    init: Some(init),
                },
                span,
            ));
        }
        while self.at_punct("[") {
            if self.peek_at(1).kind.is_punct("]") {
                self.advance();
                self.advance();
                extra += 1;
            } else {
                self.advance();
                dims.push(self.expr()?);
                self.expect_punct("]")?;
            }
        }
        let span = start.merge(self.prev_span());
        Ok(Expr::new(
            ExprKind::NewArray {
                elem,
                dims,
                extra_dims: extra,
                init: None,
            },
            span,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(src: &str) -> CompilationUnit {
        parse_unit(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    fn expr(src: &str) -> Expr {
        parse_expression(src).unwrap_or_else(|e| panic!("{e}\nsource: {src}"))
    }

    #[test]
    fn parses_package_imports_and_class() {
        let u = unit(
            "package com.mist.jepo;\n\
             import java.util.ArrayList;\n\
             import weka.core.*;\n\
             public class JEPOInsert { }",
        );
        assert_eq!(u.package.as_deref(), Some("com.mist.jepo"));
        assert_eq!(u.imports, vec!["java.util.ArrayList", "weka.core.*"]);
        assert_eq!(u.types[0].name, "JEPOInsert");
        assert!(u.types[0].modifiers.public);
    }

    #[test]
    fn parses_fields_with_modifiers_and_multi_declarators() {
        let u = unit("class A { private static final double PI = 3.14; int a, b = 2; }");
        let c = &u.types[0];
        assert_eq!(c.fields.len(), 3);
        assert!(c.fields[0].modifiers.is_static && c.fields[0].modifiers.is_final);
        assert_eq!(c.fields[1].name, "a");
        assert!(c.fields[1].init.is_none());
        assert!(c.fields[2].init.is_some());
    }

    #[test]
    fn parses_methods_constructors_and_throws() {
        let u = unit(
            "class Worker {\n\
               Worker(int n) { this.n = n; }\n\
               int n;\n\
               public double run(double[] xs, int k) throws Exception { return xs[k]; }\n\
               abstract void step();\n\
             }",
        );
        let c = &u.types[0];
        assert_eq!(c.methods.len(), 3);
        assert_eq!(c.methods[0].name, "Worker");
        assert_eq!(c.methods[1].throws, vec!["Exception"]);
        assert!(c.methods[2].body.is_none());
    }

    #[test]
    fn main_class_discovery_via_parse() {
        let u = unit("class M { public static void main(String[] args) { } }");
        assert!(u.types[0].has_main());
        let u2 = unit("class M { public static void main(String args) { } }");
        assert!(!u2.types[0].has_main());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let e = expr("a + b * c");
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn precedence_shift_vs_relational() {
        // `a << b < c` parses as `(a << b) < c`.
        let e = expr("a << b < c");
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn short_circuit_operators_nest_correctly() {
        // `a || b && c` = `a || (b && c)`.
        let e = expr("a || b && c");
        match e.kind {
            ExprKind::Binary(BinOp::Or, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::And, _, _)));
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn ternary_is_right_associative() {
        let e = expr("a ? b : c ? d : e");
        match e.kind {
            ExprKind::Ternary(_, _, els) => {
                assert!(matches!(els.kind, ExprKind::Ternary(_, _, _)));
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative_and_compound() {
        let e = expr("a = b = c");
        match e.kind {
            ExprKind::Assign(_, AssignOp::Assign, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Assign(_, _, _)));
            }
            k => panic!("{k:?}"),
        }
        let e2 = expr("x %= 7");
        assert!(matches!(
            e2.kind,
            ExprKind::Assign(_, AssignOp::Compound(BinOp::Rem), _)
        ));
    }

    #[test]
    fn casts_and_parenthesized_expressions_disambiguate() {
        assert!(matches!(
            expr("(int) x").kind,
            ExprKind::Cast(Type::Prim(PrimType::Int), _)
        ));
        assert!(matches!(expr("(Integer) x").kind, ExprKind::Cast(_, _)));
        // `(a) + b` must be addition, not a cast of `+b`.
        assert!(matches!(
            expr("(a) + b").kind,
            ExprKind::Binary(BinOp::Add, _, _)
        ));
        // `(double) -x` is a cast of a negation.
        assert!(matches!(expr("(double) -x").kind, ExprKind::Cast(_, _)));
    }

    #[test]
    fn calls_fields_indexing_chain() {
        let e = expr("obj.data[i][j].toString().length()");
        // Outermost is the length() call.
        match e.kind {
            ExprKind::Call { name, target, .. } => {
                assert_eq!(name, "length");
                assert!(target.is_some());
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn string_concat_and_compareto_shapes() {
        let e = expr("s1 + s2 + \"x\"");
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Add, _, _)));
        let e2 = expr("s1.compareTo(s2) == 0");
        assert!(matches!(e2.kind, ExprKind::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn new_object_and_new_arrays() {
        assert!(matches!(
            expr("new StringBuilder()").kind,
            ExprKind::New { ref class, .. } if class == "StringBuilder"
        ));
        match expr("new int[10][20]").kind {
            ExprKind::NewArray {
                elem,
                dims,
                extra_dims,
                ..
            } => {
                assert_eq!(elem, Type::Prim(PrimType::Int));
                assert_eq!(dims.len(), 2);
                assert_eq!(extra_dims, 0);
            }
            k => panic!("{k:?}"),
        }
        match expr("new double[n][]").kind {
            ExprKind::NewArray {
                dims, extra_dims, ..
            } => {
                assert_eq!(dims.len(), 1);
                assert_eq!(extra_dims, 1);
            }
            k => panic!("{k:?}"),
        }
        match expr("new int[]{1, 2, 3}").kind {
            ExprKind::NewArray {
                init: Some(items), ..
            } => assert_eq!(items.len(), 3),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn statements_full_set() {
        let u = unit(
            "class S { void f(int n) {\n\
               int i = 0; long total = 0L;\n\
               for (int k = 0; k < n; k++) { total += k; }\n\
               while (i < n) { i++; }\n\
               do { i--; } while (i > 0);\n\
               if (n % 2 == 0) { i = 1; } else i = 2;\n\
               switch (n) { case 0: case 1: i = 5; break; default: i = 6; }\n\
               try { g(); } catch (Exception e) { i = 7; } finally { i = 8; }\n\
               for (;;) { break; }\n\
               int[] xs = new int[n];\n\
               for (int x : xs) { total += x; }\n\
               synchronized (this) { i = 9; }\n\
               ;\n\
               return;\n\
             } void g() {} }",
        );
        let body = u.types[0].methods[0].body.as_ref().unwrap();
        assert!(body.stmts.len() >= 13);
        // Check the switch grouped two labels into one case.
        let has_switch = body.stmts.iter().any(|s| match &s.kind {
            StmtKind::Switch { cases, .. } => cases[0].labels.len() == 2 && cases.len() == 2,
            _ => false,
        });
        assert!(has_switch);
    }

    #[test]
    fn local_declaration_vs_expression_disambiguation() {
        let u = unit(
            "class D { int a; void f() {\n\
               a = 1;          // expression stmt\n\
               int b = 2;      // primitive local\n\
               String s = \"x\"; // class local\n\
               double[] xs = new double[3]; // array local\n\
               s.length();     // call stmt\n\
               b++;            // postfix stmt\n\
             } }",
        );
        let body = u.types[0].methods[0].body.as_ref().unwrap();
        let kinds: Vec<_> = body
            .stmts
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Local { .. } => "local",
                StmtKind::Expr(_) => "expr",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["expr", "local", "local", "local", "expr", "expr"]
        );
    }

    #[test]
    fn generic_locals_parse() {
        let u = unit("class G { void f() { ArrayList<String> xs = new ArrayList<String>(); } }");
        let body = u.types[0].methods[0].body.as_ref().unwrap();
        match &body.stmts[0].kind {
            StmtKind::Local {
                ty: Type::Class(name, args),
                ..
            } => {
                assert_eq!(name, "ArrayList");
                assert_eq!(args.len(), 1);
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn spans_point_to_source_lines() {
        let u = unit("class L {\n  void f() {\n    int x = 1 % 2;\n  }\n}");
        let body = u.types[0].methods[0].body.as_ref().unwrap();
        assert_eq!(body.stmts[0].span.line, 3);
    }

    #[test]
    fn interface_declarations_parse() {
        let u = unit("public interface Classifier { double classify(double[] x); }");
        assert!(u.types[0].is_interface);
        assert!(u.types[0].methods[0].body.is_none());
    }

    #[test]
    fn scientific_literal_reaches_ast() {
        let u = unit("class C { double d = 1.5e3; double p = 1500.0; }");
        match &u.types[0].fields[0].init.as_ref().unwrap().kind {
            ExprKind::Literal(Lit::Float { scientific, .. }) => assert!(scientific),
            k => panic!("{k:?}"),
        }
        match &u.types[0].fields[1].init.as_ref().unwrap().kind {
            ExprKind::Literal(Lit::Float { scientific, .. }) => assert!(!scientific),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn errors_are_reported_with_location() {
        let e = parse_unit("class X { void f() { int = 5; } }").unwrap_err();
        assert!(e.span.line >= 1);
        assert!(parse_unit("class {").is_err());
        assert!(parse_unit("class X { void f() { if } }").is_err());
        assert!(
            parse_unit("class X { void f() { try { } } }").is_err(),
            "try needs catch/finally"
        );
    }

    #[test]
    fn instanceof_parses_at_correct_precedence() {
        let e = expr("x instanceof String == true");
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn varargs_parameter_becomes_array() {
        let u = unit("class V { void f(int... xs) { } }");
        assert!(matches!(
            u.types[0].methods[0].params[0].ty,
            Type::Array(_, 1)
        ));
    }

    #[test]
    fn static_initializer_block_is_captured() {
        let u = unit("class I { static int x; static { x = 3; } }");
        assert!(u.types[0].methods.iter().any(|m| m.name == "<clinit>"));
    }
}
