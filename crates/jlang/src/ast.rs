//! Abstract syntax tree for the Java subset.
//!
//! Every statement and expression carries a [`Span`]; the analyzer's
//! suggestions and the VM's debug info both key off line numbers.

use crate::Span;
use serde::{Deserialize, Serialize};

/// One parsed `.java` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilationUnit {
    /// `package a.b.c;` if present.
    pub package: Option<String>,
    /// `import` targets, e.g. `java.util.ArrayList` or `java.util.*`.
    pub imports: Vec<String>,
    /// Top-level class/interface declarations.
    pub types: Vec<ClassDecl>,
}

impl CompilationUnit {
    /// Fully-qualified name of a contained class.
    pub fn qualified_name(&self, class: &ClassDecl) -> String {
        match &self.package {
            Some(p) => format!("{p}.{}", class.name),
            None => class.name.clone(),
        }
    }
}

/// Declaration modifiers (a subset of Java's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Modifiers {
    /// `public`
    pub public: bool,
    /// `private`
    pub private: bool,
    /// `protected`
    pub protected: bool,
    /// `static` — the subject of Table I's costliest finding.
    pub is_static: bool,
    /// `final`
    pub is_final: bool,
    /// `abstract`
    pub is_abstract: bool,
}

/// A class or interface declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDecl {
    /// Declaration modifiers.
    pub modifiers: Modifiers,
    /// Simple name.
    pub name: String,
    /// `true` for `interface`.
    pub is_interface: bool,
    /// Superclass name, if any.
    pub extends: Option<String>,
    /// Implemented interfaces.
    pub implements: Vec<String>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Method declarations (constructors have `name == class name` and
    /// `ret == Type::Void`).
    pub methods: Vec<MethodDecl>,
    /// Source location of the declaration.
    pub span: Span,
}

impl ClassDecl {
    /// Whether this class declares `public static void main(String[] args)`
    /// — JEPO's main-class discovery predicate.
    pub fn has_main(&self) -> bool {
        self.methods.iter().any(|m| {
            m.name == "main"
                && m.modifiers.is_static
                && m.ret == Type::Void
                && m.params.len() == 1
                && matches!(&m.params[0].ty, Type::Array(inner, 1) if **inner == Type::class("String"))
        })
    }

    /// Find a method by name (first overload).
    pub fn method(&self, name: &str) -> Option<&MethodDecl> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A field declaration (one variable; multi-declarators are split by the
/// parser).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDecl {
    /// Declaration modifiers.
    pub modifiers: Modifiers,
    /// Declared type.
    pub ty: Type,
    /// Field name.
    pub name: String,
    /// Initializer, if present.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A method (or constructor) declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodDecl {
    /// Declaration modifiers.
    pub modifiers: Modifiers,
    /// Return type (`Type::Void` for constructors).
    pub ret: Type,
    /// Method name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Declared `throws` clause.
    pub throws: Vec<String>,
    /// Body; `None` for abstract/interface methods.
    pub body: Option<Block>,
    /// Source location of the signature.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Declared type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// Types in the subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// A primitive type.
    Prim(PrimType),
    /// A class type by simple or qualified name (`String`, `Integer`,
    /// `weka.core.Instance`...). Generic arguments, if written, are
    /// recorded textually for printing but not interpreted.
    Class(String, Vec<Type>),
    /// An array type with `u8` dimensions.
    Array(Box<Type>, u8),
    /// `void`.
    Void,
}

impl Type {
    /// Shorthand for a non-generic class type.
    pub fn class(name: &str) -> Type {
        Type::Class(name.to_string(), Vec::new())
    }

    /// Whether this is a numeric primitive.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Type::Prim(
                PrimType::Byte
                    | PrimType::Short
                    | PrimType::Int
                    | PrimType::Long
                    | PrimType::Float
                    | PrimType::Double
                    | PrimType::Char
            )
        )
    }

    /// The wrapper-class name for a primitive (`int` → `Integer`).
    pub fn wrapper_name(&self) -> Option<&'static str> {
        match self {
            Type::Prim(PrimType::Byte) => Some("Byte"),
            Type::Prim(PrimType::Short) => Some("Short"),
            Type::Prim(PrimType::Int) => Some("Integer"),
            Type::Prim(PrimType::Long) => Some("Long"),
            Type::Prim(PrimType::Float) => Some("Float"),
            Type::Prim(PrimType::Double) => Some("Double"),
            Type::Prim(PrimType::Char) => Some("Character"),
            Type::Prim(PrimType::Boolean) => Some("Boolean"),
            _ => None,
        }
    }
}

/// Java's primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimType {
    /// 8-bit signed.
    Byte,
    /// 16-bit signed.
    Short,
    /// 32-bit signed — Table I's most energy-efficient primitive.
    Int,
    /// 64-bit signed.
    Long,
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE float.
    Double,
    /// 16-bit unsigned code unit.
    Char,
    /// Boolean.
    Boolean,
}

impl PrimType {
    /// Keyword spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            PrimType::Byte => "byte",
            PrimType::Short => "short",
            PrimType::Int => "int",
            PrimType::Long => "long",
            PrimType::Float => "float",
            PrimType::Double => "double",
            PrimType::Char => "char",
            PrimType::Boolean => "boolean",
        }
    }

    /// Parse from a keyword.
    pub fn from_keyword(kw: &str) -> Option<PrimType> {
        Some(match kw {
            "byte" => PrimType::Byte,
            "short" => PrimType::Short,
            "int" => PrimType::Int,
            "long" => PrimType::Long,
            "float" => PrimType::Float,
            "double" => PrimType::Double,
            "char" => PrimType::Char,
            "boolean" => PrimType::Boolean,
            _ => return None,
        })
    }
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A statement with its span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// Local variable declaration: `final? T a = e, b;` (one declarator
    /// per entry).
    Local {
        /// `final` flag.
        is_final: bool,
        /// Declared type.
        ty: Type,
        /// Declarators: name, extra array dims (`int a[]`), initializer.
        vars: Vec<(String, u8, Option<Expr>)>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (c) then else?`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Box<Stmt>,
        /// Else-branch if present.
        els: Option<Box<Stmt>>,
    },
    /// `while (c) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do body while (c);`.
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// Classic `for (init; cond; update) body`.
    For {
        /// Init statements (locals or expression statements).
        init: Vec<Stmt>,
        /// Loop condition, if any.
        cond: Option<Expr>,
        /// Update expressions.
        update: Vec<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// Enhanced `for (T x : iterable) body`.
    ForEach {
        /// Element type.
        ty: Type,
        /// Loop variable.
        name: String,
        /// Iterated expression.
        iter: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `switch (e) { case ...: ... }`.
    Switch {
        /// Scrutinee.
        scrutinee: Expr,
        /// Cases, in order.
        cases: Vec<SwitchCase>,
    },
    /// `return e?;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `throw e;`
    Throw(Expr),
    /// `try { } catch (T e) { } finally { }`.
    Try {
        /// Protected block.
        body: Block,
        /// Catch clauses: exception type, binder, handler.
        catches: Vec<(Type, String, Block)>,
        /// Finally block.
        finally: Option<Block>,
    },
    /// Nested block.
    Block(Block),
    /// `;`
    Empty,
    /// `synchronized (e) { ... }` — parsed, executed as its body.
    Synchronized(Expr, Block),
}

/// One `case`/`default` group in a switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchCase {
    /// Labels; `None` is `default`.
    pub labels: Vec<Option<Expr>>,
    /// Statements (fall-through semantics preserved).
    pub body: Vec<Stmt>,
}

/// An expression with its span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Construct with a span.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// Walk this expression tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Unary(_, e) | ExprKind::Cast(_, e) | ExprKind::InstanceOf(e, _) => e.walk(f),
            ExprKind::Binary(_, l, r) | ExprKind::Assign(l, _, r) => {
                l.walk(f);
                r.walk(f);
            }
            ExprKind::Ternary(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            ExprKind::FieldAccess(e, _) => e.walk(f),
            ExprKind::Index(a, idxs) => {
                a.walk(f);
                for i in idxs {
                    i.walk(f);
                }
            }
            ExprKind::Call { target, args, .. } => {
                if let Some(t) = target {
                    t.walk(f);
                }
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::New { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::NewArray { dims, init, .. } => {
                for d in dims {
                    d.walk(f);
                }
                if let Some(init) = init {
                    for e in init {
                        e.walk(f);
                    }
                }
            }
            ExprKind::ArrayInit(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            ExprKind::Literal(_) | ExprKind::Name(_) | ExprKind::This => {}
        }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    /// A literal.
    Literal(Lit),
    /// A simple or qualified name (`x`, `System.out` parses as
    /// field-access of name).
    Name(String),
    /// `this`.
    This,
    /// `expr.field`.
    FieldAccess(Box<Expr>, String),
    /// `expr[i][j]...`.
    Index(Box<Expr>, Vec<Expr>),
    /// Method call, optionally on a target expression.
    Call {
        /// Receiver (`None` for unqualified calls).
        target: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new C(args)`.
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// `new T[d1][d2]` or `new T[]{...}`.
    NewArray {
        /// Element type.
        elem: Type,
        /// Sized dimensions.
        dims: Vec<Expr>,
        /// Unsized extra dims (`new int[5][]` has 1).
        extra_dims: u8,
        /// Array initializer if `new T[]{...}` form.
        init: Option<Vec<Expr>>,
    },
    /// Bare `{a, b, c}` initializer (only valid in declarations).
    ArrayInit(Vec<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment (possibly compound: `+=` etc.).
    Assign(Box<Expr>, AssignOp, Box<Expr>),
    /// `c ? t : e` — Table I's ternary rule target.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(T) e`.
    Cast(Type, Box<Expr>),
    /// `e instanceof T`.
    InstanceOf(Box<Expr>, Type),
}

/// Literals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Lit {
    /// Integer (int or long).
    Int {
        /// Value.
        value: i64,
        /// `L` suffix present.
        long: bool,
    },
    /// Floating (float or double), with original-notation flag.
    Float {
        /// Value.
        value: f64,
        /// `f` suffix present.
        float32: bool,
        /// Written in scientific notation.
        scientific: bool,
    },
    /// `'c'`.
    Char(char),
    /// `"..."`.
    Str(String),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `+e`
    Plus,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
    /// `e++`
    PostInc,
    /// `e--`
    PostDec,
}

/// Binary operators, from the full Java set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+` (numeric add or string concatenation — disambiguated by the
    /// type checker in the compiler; the analyzer treats `+` on strings
    /// as Table I's concatenation operator).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` — the modulus operator of Table I.
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&` — short-circuit AND (Table I ordering rule).
    And,
    /// `||` — short-circuit OR.
    Or,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Java spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::UShr => ">>>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignOp {
    /// Simple `=`.
    Assign,
    /// Compound op-assign carrying the underlying binary op.
    Compound(BinOp),
}

impl AssignOp {
    /// Java spelling.
    pub fn symbol(self) -> String {
        match self {
            AssignOp::Assign => "=".into(),
            AssignOp::Compound(op) => format!("{}=", op.symbol()),
        }
    }
}

impl Stmt {
    /// Whether this statement is one of the four loop forms.
    pub fn is_loop(&self) -> bool {
        matches!(
            self.kind,
            StmtKind::While { .. }
                | StmtKind::DoWhile { .. }
                | StmtKind::For { .. }
                | StmtKind::ForEach { .. }
        )
    }

    /// The body of a loop statement, if this is one.
    pub fn loop_body(&self) -> Option<&Stmt> {
        match &self.kind {
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::ForEach { body, .. } => Some(body),
            _ => None,
        }
    }
}

impl Expr {
    /// Every simple [`ExprKind::Name`] mentioned in this expression tree,
    /// pre-order, with duplicates.
    pub fn collect_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let ExprKind::Name(n) = &e.kind {
                out.push(n.clone());
            }
        });
        out
    }
}

/// Walk every expression in a statement tree (pre-order), including
/// sub-statements.
pub fn walk_stmt_exprs(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    match &stmt.kind {
        StmtKind::Local { vars, .. } => {
            for (_, _, init) in vars {
                if let Some(e) = init {
                    e.walk(f);
                }
            }
        }
        StmtKind::Expr(e) | StmtKind::Throw(e) => e.walk(f),
        StmtKind::Return(Some(e)) => e.walk(f),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
        StmtKind::If { cond, then, els } => {
            cond.walk(f);
            walk_stmt_exprs(then, f);
            if let Some(e) = els {
                walk_stmt_exprs(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            cond.walk(f);
            walk_stmt_exprs(body, f);
        }
        StmtKind::DoWhile { body, cond } => {
            walk_stmt_exprs(body, f);
            cond.walk(f);
        }
        StmtKind::For {
            init,
            cond,
            update,
            body,
        } => {
            for s in init {
                walk_stmt_exprs(s, f);
            }
            if let Some(c) = cond {
                c.walk(f);
            }
            for u in update {
                u.walk(f);
            }
            walk_stmt_exprs(body, f);
        }
        StmtKind::ForEach { iter, body, .. } => {
            iter.walk(f);
            walk_stmt_exprs(body, f);
        }
        StmtKind::Switch { scrutinee, cases } => {
            scrutinee.walk(f);
            for c in cases {
                for l in c.labels.iter().flatten() {
                    l.walk(f);
                }
                for s in &c.body {
                    walk_stmt_exprs(s, f);
                }
            }
        }
        StmtKind::Try {
            body,
            catches,
            finally,
        } => {
            for s in &body.stmts {
                walk_stmt_exprs(s, f);
            }
            for (_, _, b) in catches {
                for s in &b.stmts {
                    walk_stmt_exprs(s, f);
                }
            }
            if let Some(b) = finally {
                for s in &b.stmts {
                    walk_stmt_exprs(s, f);
                }
            }
        }
        StmtKind::Block(b) => {
            for s in &b.stmts {
                walk_stmt_exprs(s, f);
            }
        }
        StmtKind::Synchronized(e, b) => {
            e.walk(f);
            for s in &b.stmts {
                walk_stmt_exprs(s, f);
            }
        }
    }
}

/// Walk every statement in a statement tree (pre-order).
pub fn walk_stmts(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    match &stmt.kind {
        StmtKind::If { then, els, .. } => {
            walk_stmts(then, f);
            if let Some(e) = els {
                walk_stmts(e, f);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::ForEach { body, .. } => walk_stmts(body, f),
        StmtKind::For { init, body, .. } => {
            for s in init {
                walk_stmts(s, f);
            }
            walk_stmts(body, f);
        }
        StmtKind::Switch { cases, .. } => {
            for c in cases {
                for s in &c.body {
                    walk_stmts(s, f);
                }
            }
        }
        StmtKind::Try {
            body,
            catches,
            finally,
        } => {
            for s in &body.stmts {
                walk_stmts(s, f);
            }
            for (_, _, b) in catches {
                for s in &b.stmts {
                    walk_stmts(s, f);
                }
            }
            if let Some(b) = finally {
                for s in &b.stmts {
                    walk_stmts(s, f);
                }
            }
        }
        StmtKind::Block(b) | StmtKind::Synchronized(_, b) => {
            for s in &b.stmts {
                walk_stmts(s, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::synthetic())
    }

    #[test]
    fn wrapper_names_cover_all_primitives() {
        for p in [
            PrimType::Byte,
            PrimType::Short,
            PrimType::Int,
            PrimType::Long,
            PrimType::Float,
            PrimType::Double,
            PrimType::Char,
            PrimType::Boolean,
        ] {
            assert!(Type::Prim(p).wrapper_name().is_some());
            assert_eq!(PrimType::from_keyword(p.keyword()), Some(p));
        }
        assert_eq!(Type::class("String").wrapper_name(), None);
    }

    #[test]
    fn has_main_requires_exact_signature() {
        let mk = |is_static: bool, params: Vec<Param>| ClassDecl {
            modifiers: Modifiers::default(),
            name: "A".into(),
            is_interface: false,
            extends: None,
            implements: vec![],
            fields: vec![],
            methods: vec![MethodDecl {
                modifiers: Modifiers {
                    is_static,
                    ..Default::default()
                },
                ret: Type::Void,
                name: "main".into(),
                params,
                throws: vec![],
                body: Some(Block {
                    stmts: vec![],
                    span: Span::synthetic(),
                }),
                span: Span::synthetic(),
            }],
            span: Span::synthetic(),
        };
        let good = mk(
            true,
            vec![Param {
                ty: Type::Array(Box::new(Type::class("String")), 1),
                name: "args".into(),
            }],
        );
        assert!(good.has_main());
        let not_static = mk(
            false,
            vec![Param {
                ty: Type::Array(Box::new(Type::class("String")), 1),
                name: "args".into(),
            }],
        );
        assert!(!not_static.has_main());
        let wrong_params = mk(true, vec![]);
        assert!(!wrong_params.has_main());
    }

    #[test]
    fn walk_visits_all_subexpressions() {
        // a % b + (c ? d : e)
        let expr = e(ExprKind::Binary(
            BinOp::Add,
            Box::new(e(ExprKind::Binary(
                BinOp::Rem,
                Box::new(e(ExprKind::Name("a".into()))),
                Box::new(e(ExprKind::Name("b".into()))),
            ))),
            Box::new(e(ExprKind::Ternary(
                Box::new(e(ExprKind::Name("c".into()))),
                Box::new(e(ExprKind::Name("d".into()))),
                Box::new(e(ExprKind::Name("e".into()))),
            ))),
        ));
        let mut names = vec![];
        expr.walk(&mut |x| {
            if let ExprKind::Name(n) = &x.kind {
                names.push(n.clone());
            }
        });
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn walk_stmts_reaches_nested_bodies() {
        let inner = Stmt {
            kind: StmtKind::Break,
            span: Span::synthetic(),
        };
        let loop_stmt = Stmt {
            kind: StmtKind::While {
                cond: e(ExprKind::Literal(Lit::Bool(true))),
                body: Box::new(Stmt {
                    kind: StmtKind::Block(Block {
                        stmts: vec![inner],
                        span: Span::synthetic(),
                    }),
                    span: Span::synthetic(),
                }),
            },
            span: Span::synthetic(),
        };
        let mut count = 0;
        walk_stmts(&loop_stmt, &mut |_| count += 1);
        assert_eq!(count, 3); // while, block, break
    }

    #[test]
    fn qualified_name_uses_package() {
        let class = ClassDecl {
            modifiers: Modifiers::default(),
            name: "Foo".into(),
            is_interface: false,
            extends: None,
            implements: vec![],
            fields: vec![],
            methods: vec![],
            span: Span::synthetic(),
        };
        let unit = CompilationUnit {
            package: Some("com.mist.jepo".into()),
            imports: vec![],
            types: vec![class.clone()],
        };
        assert_eq!(unit.qualified_name(&class), "com.mist.jepo.Foo");
        let unit2 = CompilationUnit {
            package: None,
            imports: vec![],
            types: vec![class.clone()],
        };
        assert_eq!(unit2.qualified_name(&class), "Foo");
    }

    #[test]
    fn binop_symbols_are_distinct() {
        use std::collections::HashSet;
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::UShr,
            BinOp::BitAnd,
            BinOp::BitOr,
            BinOp::BitXor,
            BinOp::And,
            BinOp::Or,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ];
        let set: HashSet<_> = ops.iter().map(|o| o.symbol()).collect();
        assert_eq!(set.len(), ops.len());
    }
}
