//! Pretty-printer: AST → Java source.
//!
//! The refactoring engine rewrites the AST and prints it back; the
//! printer therefore has to emit source the parser accepts (tested by the
//! roundtrip property below). Formatting is canonical (4-space indents,
//! one statement per line); original layout is not preserved.

use crate::ast::*;

/// Print a whole compilation unit.
pub fn pretty_print(unit: &CompilationUnit) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.unit(unit);
    p.out
}

/// Print a single expression (used by suggestion messages).
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.expr(e);
    p.out
}

/// Print a single statement.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.stmt(s);
    p.out
}

/// Print a type.
pub fn print_type(t: &Type) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    p.ty(t);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn open(&mut self, s: &str) {
        self.line(&format!("{s} {{"));
        self.indent += 1;
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.line("}");
    }

    fn unit(&mut self, u: &CompilationUnit) {
        if let Some(p) = &u.package {
            self.line(&format!("package {p};"));
        }
        for i in &u.imports {
            self.line(&format!("import {i};"));
        }
        if u.package.is_some() || !u.imports.is_empty() {
            self.out.push('\n');
        }
        for t in &u.types {
            self.class(t);
        }
    }

    fn modifiers(m: &Modifiers) -> String {
        let mut s = String::new();
        if m.public {
            s.push_str("public ");
        }
        if m.protected {
            s.push_str("protected ");
        }
        if m.private {
            s.push_str("private ");
        }
        if m.is_abstract {
            s.push_str("abstract ");
        }
        if m.is_static {
            s.push_str("static ");
        }
        if m.is_final {
            s.push_str("final ");
        }
        s
    }

    fn class(&mut self, c: &ClassDecl) {
        let kw = if c.is_interface { "interface" } else { "class" };
        let mut head = format!("{}{kw} {}", Self::modifiers(&c.modifiers), c.name);
        if let Some(e) = &c.extends {
            head.push_str(&format!(" extends {e}"));
        }
        if !c.implements.is_empty() {
            head.push_str(&format!(" implements {}", c.implements.join(", ")));
        }
        self.open(&head);
        for f in &c.fields {
            let mut line = format!(
                "{}{} {}",
                Self::modifiers(&f.modifiers),
                print_type(&f.ty),
                f.name
            );
            if let Some(init) = &f.init {
                line.push_str(&format!(" = {}", print_expr(init)));
            }
            line.push(';');
            self.line(&line);
        }
        for m in &c.methods {
            self.method(m, &c.name);
        }
        self.close();
    }

    fn method(&mut self, m: &MethodDecl, class_name: &str) {
        if m.name == "<clinit>" {
            if let Some(b) = &m.body {
                self.open("static");
                for s in &b.stmts {
                    self.stmt_line(s);
                }
                self.close();
            }
            return;
        }
        if m.name == "<init-block>" {
            if let Some(b) = &m.body {
                self.open("");
                for s in &b.stmts {
                    self.stmt_line(s);
                }
                self.close();
            }
            return;
        }
        let params = m
            .params
            .iter()
            .map(|p| format!("{} {}", print_type(&p.ty), p.name))
            .collect::<Vec<_>>()
            .join(", ");
        let is_ctor = m.name == class_name && m.ret == Type::Void;
        let ret = if is_ctor {
            String::new()
        } else {
            format!("{} ", print_type(&m.ret))
        };
        let mut head = format!(
            "{}{}{}({})",
            Self::modifiers(&m.modifiers),
            ret,
            m.name,
            params
        );
        if !m.throws.is_empty() {
            head.push_str(&format!(" throws {}", m.throws.join(", ")));
        }
        match &m.body {
            Some(b) => {
                self.open(&head);
                for s in &b.stmts {
                    self.stmt_line(s);
                }
                self.close();
            }
            None => self.line(&format!("{head};")),
        }
    }

    fn stmt_line(&mut self, s: &Stmt) {
        self.stmt(s);
    }

    fn ty(&mut self, t: &Type) {
        match t {
            Type::Prim(p) => self.out.push_str(p.keyword()),
            Type::Class(name, args) => {
                self.out.push_str(name);
                if !args.is_empty() {
                    self.out.push('<');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.ty(a);
                    }
                    self.out.push('>');
                }
            }
            Type::Array(inner, dims) => {
                self.ty(inner);
                for _ in 0..*dims {
                    self.out.push_str("[]");
                }
            }
            Type::Void => self.out.push_str("void"),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Local { is_final, ty, vars } => {
                let mut line = String::new();
                if *is_final {
                    line.push_str("final ");
                }
                line.push_str(&print_type(ty));
                line.push(' ');
                for (i, (name, extra, init)) in vars.iter().enumerate() {
                    if i > 0 {
                        line.push_str(", ");
                    }
                    line.push_str(name);
                    for _ in 0..*extra {
                        line.push_str("[]");
                    }
                    if let Some(e) = init {
                        line.push_str(&format!(" = {}", print_expr(e)));
                    }
                }
                line.push(';');
                self.line(&line);
            }
            StmtKind::Expr(e) => {
                let text = print_expr(e);
                self.line(&format!("{text};"));
            }
            StmtKind::If { cond, then, els } => {
                self.open(&format!("if ({})", print_expr(cond)));
                self.inner_stmt(then);
                self.indent -= 1;
                match els {
                    Some(e) => {
                        self.line("} else {");
                        self.indent += 1;
                        self.inner_stmt(e);
                        self.close();
                    }
                    None => self.line("}"),
                }
            }
            StmtKind::While { cond, body } => {
                self.open(&format!("while ({})", print_expr(cond)));
                self.inner_stmt(body);
                self.close();
            }
            StmtKind::DoWhile { body, cond } => {
                self.open("do");
                self.inner_stmt(body);
                self.indent -= 1;
                self.line(&format!("}} while ({});", print_expr(cond)));
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                let init_s = init
                    .iter()
                    .map(|s| {
                        let mut t = print_stmt(s);
                        while t.ends_with('\n') || t.ends_with(';') {
                            t.pop();
                        }
                        t.trim().to_string()
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let cond_s = cond.as_ref().map(print_expr).unwrap_or_default();
                let update_s = update.iter().map(print_expr).collect::<Vec<_>>().join(", ");
                self.open(&format!("for ({init_s}; {cond_s}; {update_s})"));
                self.inner_stmt(body);
                self.close();
            }
            StmtKind::ForEach {
                ty,
                name,
                iter,
                body,
            } => {
                self.open(&format!(
                    "for ({} {name} : {})",
                    print_type(ty),
                    print_expr(iter)
                ));
                self.inner_stmt(body);
                self.close();
            }
            StmtKind::Switch { scrutinee, cases } => {
                self.open(&format!("switch ({})", print_expr(scrutinee)));
                for c in cases {
                    for l in &c.labels {
                        match l {
                            Some(e) => self.line(&format!("case {}:", print_expr(e))),
                            None => self.line("default:"),
                        }
                    }
                    self.indent += 1;
                    for s in &c.body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.close();
            }
            StmtKind::Return(e) => match e {
                Some(e) => self.line(&format!("return {};", print_expr(e))),
                None => self.line("return;"),
            },
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Throw(e) => self.line(&format!("throw {};", print_expr(e))),
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                self.open("try");
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.indent -= 1;
                for (ty, name, block) in catches {
                    self.line(&format!("}} catch ({} {name}) {{", print_type(ty)));
                    self.indent += 1;
                    for s in &block.stmts {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                if let Some(f) = finally {
                    self.line("} finally {");
                    self.indent += 1;
                    for s in &f.stmts {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.line("}");
            }
            StmtKind::Block(b) => {
                self.open("");
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.close();
            }
            StmtKind::Empty => self.line(";"),
            StmtKind::Synchronized(e, b) => {
                self.open(&format!("synchronized ({})", print_expr(e)));
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.close();
            }
        }
    }

    /// Print the inside of a control-flow body (unwrap single blocks).
    fn inner_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    self.stmt(s);
                }
            }
            _ => self.stmt(s),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Literal(l) => self.literal(l),
            ExprKind::Name(n) => self.out.push_str(n),
            ExprKind::This => self.out.push_str("this"),
            ExprKind::FieldAccess(t, f) => {
                self.expr_prec(t);
                self.out.push('.');
                self.out.push_str(f);
            }
            ExprKind::Index(a, idxs) => {
                self.expr_prec(a);
                for i in idxs {
                    self.out.push('[');
                    self.expr(i);
                    self.out.push(']');
                }
            }
            ExprKind::Call { target, name, args } => {
                if let Some(t) = target {
                    self.expr_prec(t);
                    self.out.push('.');
                }
                match name.as_str() {
                    "<this>" => self.out.push_str("this"),
                    "<super>" => self.out.push_str("super"),
                    n => self.out.push_str(n),
                }
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::New { class, args } => {
                self.out.push_str("new ");
                self.out.push_str(class);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::NewArray {
                elem,
                dims,
                extra_dims,
                init,
            } => {
                self.out.push_str("new ");
                self.ty(elem);
                for d in dims {
                    self.out.push('[');
                    self.expr(d);
                    self.out.push(']');
                }
                for _ in 0..*extra_dims {
                    self.out.push_str("[]");
                }
                if let Some(items) = init {
                    self.out.push('{');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.expr(item);
                    }
                    self.out.push('}');
                }
            }
            ExprKind::ArrayInit(items) => {
                self.out.push('{');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(item);
                }
                self.out.push('}');
            }
            ExprKind::Unary(op, inner) => match op {
                UnaryOp::Neg => {
                    self.out.push('-');
                    self.expr_prec(inner);
                }
                UnaryOp::Plus => {
                    self.out.push('+');
                    self.expr_prec(inner);
                }
                UnaryOp::Not => {
                    self.out.push('!');
                    self.expr_prec(inner);
                }
                UnaryOp::BitNot => {
                    self.out.push('~');
                    self.expr_prec(inner);
                }
                UnaryOp::PreInc => {
                    self.out.push_str("++");
                    self.expr_prec(inner);
                }
                UnaryOp::PreDec => {
                    self.out.push_str("--");
                    self.expr_prec(inner);
                }
                UnaryOp::PostInc => {
                    self.expr_prec(inner);
                    self.out.push_str("++");
                }
                UnaryOp::PostDec => {
                    self.expr_prec(inner);
                    self.out.push_str("--");
                }
            },
            ExprKind::Binary(op, l, r) => {
                self.expr_prec(l);
                self.out.push(' ');
                self.out.push_str(op.symbol());
                self.out.push(' ');
                self.expr_prec(r);
            }
            ExprKind::Assign(l, op, r) => {
                self.expr_prec(l);
                self.out.push(' ');
                self.out.push_str(&op.symbol());
                self.out.push(' ');
                self.expr(r);
            }
            ExprKind::Ternary(c, t, f) => {
                self.expr_prec(c);
                self.out.push_str(" ? ");
                self.expr(t);
                self.out.push_str(" : ");
                self.expr(f);
            }
            ExprKind::Cast(ty, inner) => {
                self.out.push('(');
                self.ty(ty);
                self.out.push_str(") ");
                self.expr_prec(inner);
            }
            ExprKind::InstanceOf(l, ty) => {
                self.expr_prec(l);
                self.out.push_str(" instanceof ");
                self.ty(ty);
            }
        }
    }

    /// Print a subexpression, parenthesizing anything that could rebind.
    ///
    /// Conservative: composite expressions are always parenthesized,
    /// which keeps the printer simple and the roundtrip property exact
    /// (the parser strips redundant parens).
    fn expr_prec(&mut self, e: &Expr) {
        let atomic = matches!(
            e.kind,
            ExprKind::Literal(_)
                | ExprKind::Name(_)
                | ExprKind::This
                | ExprKind::Call { .. }
                | ExprKind::FieldAccess(_, _)
                | ExprKind::Index(_, _)
                | ExprKind::New { .. }
                | ExprKind::NewArray { .. }
        );
        if atomic {
            self.expr(e);
        } else {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        }
    }

    fn literal(&mut self, l: &Lit) {
        match l {
            Lit::Int { value, long } => {
                self.out.push_str(&value.to_string());
                if *long {
                    self.out.push('L');
                }
            }
            Lit::Float {
                value,
                float32,
                scientific,
            } => {
                let text = if *scientific {
                    format!("{value:e}")
                } else if value.fract() == 0.0 && value.abs() < 1e15 {
                    format!("{value:.1}")
                } else {
                    format!("{value}")
                };
                self.out.push_str(&text);
                if *float32 {
                    self.out.push('f');
                }
            }
            Lit::Char(c) => {
                let escaped = match c {
                    '\n' => "\\n".to_string(),
                    '\t' => "\\t".to_string(),
                    '\r' => "\\r".to_string(),
                    '\\' => "\\\\".to_string(),
                    '\'' => "\\'".to_string(),
                    c => c.to_string(),
                };
                self.out.push('\'');
                self.out.push_str(&escaped);
                self.out.push('\'');
            }
            Lit::Str(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            Lit::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            Lit::Null => self.out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_unit};

    /// Strip spans so reparse comparisons are structural.
    fn normalize(u: &CompilationUnit) -> String {
        // Two ASTs are equal iff their canonical printouts are equal —
        // printing is deterministic, so compare printed forms after a
        // second roundtrip.
        pretty_print(u)
    }

    #[test]
    fn roundtrip_class() {
        let src = "package p;\nimport java.util.*;\npublic class A extends B implements C {\n\
                   static final int N = 10;\n\
                   double[] xs;\n\
                   public int f(int a, double b) throws Exception {\n\
                     int s = 0;\n\
                     for (int i = 0; i < a; i++) { s += i % 3; }\n\
                     if (s > 0 && a < 5) { return s; } else { return a > 0 ? 1 : -1; }\n\
                   }\n}";
        let u1 = parse_unit(src).unwrap();
        let printed = pretty_print(&u1);
        let u2 = parse_unit(&printed).unwrap_or_else(|e| panic!("{e}\nprinted:\n{printed}"));
        assert_eq!(normalize(&u1), normalize(&u2));
    }

    #[test]
    fn roundtrip_statements() {
        let src = "class S { void f(int n) {\n\
               do { n--; } while (n > 0);\n\
               switch (n) { case 1: n = 2; break; default: n = 3; }\n\
               try { f(n); } catch (Exception e) { throw e; } finally { n = 0; }\n\
               String s = \"a\\nb\";\n\
               char c = '\\t';\n\
               int[][] m = new int[2][3];\n\
               for (int x : m[0]) { n += x; }\n\
             } }";
        let u1 = parse_unit(src).unwrap();
        let printed = pretty_print(&u1);
        let u2 = parse_unit(&printed).unwrap_or_else(|e| panic!("{e}\nprinted:\n{printed}"));
        assert_eq!(normalize(&u1), normalize(&u2));
    }

    #[test]
    fn expression_printing_preserves_structure() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a % 7 == 0",
            "x = y = 3",
            "c ? t : f",
            "s1.compareTo(s2)",
            "new StringBuilder().append(x).toString()",
            "arr[i][j] + 1",
            "(double) n / 2",
            "x instanceof String",
            "-x * +y",
            "i++ + --j",
            "new int[]{1, 2}",
        ] {
            let e1 = parse_expression(src).unwrap();
            let printed = print_expr(&e1);
            let e2 = parse_expression(&printed)
                .unwrap_or_else(|err| panic!("{err}: printed `{printed}` from `{src}`"));
            assert_eq!(
                print_expr(&e1),
                print_expr(&e2),
                "structure changed: `{src}` → `{printed}`"
            );
        }
    }

    #[test]
    fn scientific_flag_affects_printing() {
        let e = parse_expression("1.5e3").unwrap();
        assert!(print_expr(&e).contains('e'));
        let e2 = parse_expression("1500.0").unwrap();
        assert!(!print_expr(&e2).contains('e'));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let e = parse_expression(r#""line\n\ttab \"quoted\"""#).unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expression(&printed).unwrap();
        assert_eq!(e.kind, e2.kind);
    }

    #[test]
    fn abstract_methods_print_without_body() {
        let u = parse_unit("abstract class A { abstract int f(); }").unwrap();
        let printed = pretty_print(&u);
        assert!(printed.contains("abstract int f();"));
        parse_unit(&printed).unwrap();
    }
}
