//! # jepo-jlang — Java-subset front end
//!
//! JEPO operates on Java source: the optimizer "analyzes each line of Java
//! file and matches it to the pool of suggestions", and the profiler
//! locates main classes and injects probes into compiled methods. This
//! crate is the language substrate both sides stand on:
//!
//! * [`lexer`] — a full tokenizer for the Java subset (comments, string /
//!   char escapes, decimal / hex / binary / octal integer literals with
//!   underscores and suffixes, decimal and **scientific-notation** float
//!   literals — the distinction Table I's "scientific notation" rule needs).
//! * [`parser`] — recursive-descent parser producing a spanned [`ast`]:
//!   compilation units, classes, fields, methods, the full statement set
//!   (`if`/`while`/`do`/`for`/`switch`/`try`/`throw`/…) and the full
//!   expression precedence ladder including the ternary operator,
//!   short-circuit operators, casts, `instanceof`, array creation and
//!   indexing — everything a Table I rule has to pattern-match.
//! * [`printer`] — pretty-printer emitting compilable source from the AST;
//!   the refactoring engine parses → rewrites → prints.
//! * [`project`] — multi-file project model with main-class discovery,
//!   mirroring JEPO's "find all classes that have a main method" flow.
//!
//! The subset covers everything WEKA-style numerical code uses (and
//! everything the paper's rules inspect); it omits generics bounds,
//! annotations, lambdas, and inner classes, none of which any Table I rule
//! examines.
//!
//! ```
//! use jepo_jlang::parse_unit;
//! let unit = parse_unit("class A { int f(int x) { return x % 10; } }").unwrap();
//! assert_eq!(unit.types[0].name, "A");
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod project;
pub mod span;
pub mod token;

pub use ast::*;
pub use error::ParseError;
pub use parser::{parse_expression, parse_unit};
pub use printer::pretty_print;
pub use project::{JavaProject, MainClassChoice, SourceFile};
pub use span::Span;
pub use token::{Token, TokenKind};
