//! Source positions.
//!
//! JEPO's optimizer view (Fig. 5) reports *line numbers* for every
//! suggestion, so every AST node carries a span.

use serde::{Deserialize, Serialize};

/// A half-open source region, 1-based lines and columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
    /// 1-based line of the last character.
    pub end_line: u32,
    /// 1-based column one past the last character.
    pub end_col: u32,
}

impl Span {
    /// A single-point span.
    pub fn point(line: u32, col: u32) -> Span {
        Span {
            line,
            col,
            end_line: line,
            end_col: col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (line, col) = if (self.line, self.col) <= (other.line, other.col) {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        let (end_line, end_col) =
            if (self.end_line, self.end_col) >= (other.end_line, other.end_col) {
                (self.end_line, self.end_col)
            } else {
                (other.end_line, other.end_col)
            };
        Span {
            line,
            col,
            end_line,
            end_col,
        }
    }

    /// A span useful as a placeholder for synthesized nodes.
    pub fn synthetic() -> Span {
        Span::point(0, 0)
    }

    /// Whether this span was synthesized (not from source).
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::synthetic()
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span {
            line: 2,
            col: 5,
            end_line: 2,
            end_col: 9,
        };
        let b = Span {
            line: 1,
            col: 10,
            end_line: 3,
            end_col: 1,
        };
        let m = a.merge(b);
        assert_eq!((m.line, m.col), (1, 10));
        assert_eq!((m.end_line, m.end_col), (3, 1));
    }

    #[test]
    fn merge_is_commutative() {
        let a = Span {
            line: 1,
            col: 1,
            end_line: 1,
            end_col: 4,
        };
        let b = Span {
            line: 1,
            col: 8,
            end_line: 1,
            end_col: 12,
        };
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn synthetic_is_detectable() {
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::point(1, 1).is_synthetic());
    }

    #[test]
    fn display_is_line_colon_col() {
        assert_eq!(Span::point(12, 7).to_string(), "12:7");
    }
}
