//! Lexer/parser error type.

use crate::Span;

/// A lexing or parsing failure with location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl ParseError {
    /// Construct at a span.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new("unexpected `;`", Span::point(3, 14));
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected `;`");
    }
}
