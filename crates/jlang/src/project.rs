//! Multi-file Java project model.
//!
//! Reproduces the project-level flow of §VII: JEPO "first searches for
//! all classes that have a main method in the project"; with exactly one
//! it proceeds, with more than one the caller must pick (in Eclipse via a
//! dialog; here via [`MainClassChoice`]).

use crate::{parse_unit, CompilationUnit, ParseError};

/// One source file in a project.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// File name (e.g. `"weka/classifiers/trees/J48.java"`).
    pub name: String,
    /// Raw source text.
    pub text: String,
    /// Parsed unit.
    pub unit: CompilationUnit,
}

/// A set of parsed Java files.
#[derive(Debug, Clone, Default)]
pub struct JavaProject {
    files: Vec<SourceFile>,
}

/// Result of main-class discovery.
#[derive(Debug, Clone, PartialEq)]
pub enum MainClassChoice {
    /// No class declares `public static void main(String[])`.
    None,
    /// Exactly one main class: its fully-qualified name.
    Unique(String),
    /// Several candidates; the caller (user) must choose.
    Ambiguous(Vec<String>),
}

impl JavaProject {
    /// Empty project.
    pub fn new() -> JavaProject {
        JavaProject::default()
    }

    /// Parse and add a source file. Returns the parse error (with file
    /// context in the message) on failure.
    pub fn add_file(&mut self, name: &str, text: &str) -> Result<(), ParseError> {
        let unit = parse_unit(text)
            .map_err(|e| ParseError::new(format!("{name}: {}", e.message), e.span))?;
        self.files.push(SourceFile {
            name: name.to_string(),
            text: text.to_string(),
            unit,
        });
        Ok(())
    }

    /// All files.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Mutable access (the refactorer rewrites units in place).
    pub fn files_mut(&mut self) -> &mut Vec<SourceFile> {
        &mut self.files
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the project has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total classes across files.
    pub fn class_count(&self) -> usize {
        self.files.iter().map(|f| f.unit.types.len()).sum()
    }

    /// Find a class by simple name, returning `(file index, unit index)`.
    pub fn find_class(&self, name: &str) -> Option<(usize, usize)> {
        for (fi, f) in self.files.iter().enumerate() {
            for (ci, c) in f.unit.types.iter().enumerate() {
                if c.name == name {
                    return Some((fi, ci));
                }
            }
        }
        None
    }

    /// JEPO's main-class discovery.
    pub fn discover_main_class(&self) -> MainClassChoice {
        let mut mains = Vec::new();
        for f in &self.files {
            for c in &f.unit.types {
                if c.has_main() {
                    mains.push(f.unit.qualified_name(c));
                }
            }
        }
        match mains.len() {
            0 => MainClassChoice::None,
            1 => MainClassChoice::Unique(mains.pop().unwrap()),
            _ => MainClassChoice::Ambiguous(mains),
        }
    }

    /// The import graph: for each file, the set of *project-internal*
    /// classes it references via imports or direct naming. Used by the
    /// Table II dependency metric.
    pub fn internal_dependencies(&self, file: &SourceFile) -> Vec<String> {
        let all_classes: std::collections::HashSet<&str> = self
            .files
            .iter()
            .flat_map(|f| f.unit.types.iter().map(|c| c.name.as_str()))
            .collect();
        let own: std::collections::HashSet<&str> =
            file.unit.types.iter().map(|c| c.name.as_str()).collect();
        let mut deps = std::collections::BTreeSet::new();
        // Imports that name project classes.
        for imp in &file.unit.imports {
            let simple = imp.rsplit('.').next().unwrap_or(imp);
            if all_classes.contains(simple) && !own.contains(simple) {
                deps.insert(simple.to_string());
            }
        }
        // Direct references in extends/implements/field & param types.
        let mut mention = |name: &str| {
            if all_classes.contains(name) && !own.contains(name) {
                deps.insert(name.to_string());
            }
        };
        fn base_class_name(ty: &crate::Type) -> Option<&str> {
            match ty {
                crate::Type::Class(n, _) => Some(n.rsplit('.').next().unwrap_or(n)),
                crate::Type::Array(inner, _) => base_class_name(inner),
                _ => None,
            }
        }
        for c in &file.unit.types {
            if let Some(e) = &c.extends {
                mention(e.rsplit('.').next().unwrap_or(e));
            }
            for i in &c.implements {
                mention(i.rsplit('.').next().unwrap_or(i));
            }
            for f in &c.fields {
                if let Some(n) = base_class_name(&f.ty) {
                    mention(n);
                }
            }
            for m in &c.methods {
                for p in &m.params {
                    if let Some(n) = base_class_name(&p.ty) {
                        mention(n);
                    }
                }
                if let Some(n) = base_class_name(&m.ret) {
                    mention(n);
                }
            }
        }
        deps.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut p = JavaProject::new();
        p.add_file("A.java", "class A { } class B { }").unwrap();
        p.add_file("C.java", "class C { }").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.class_count(), 3);
        assert!(p.find_class("B").is_some());
        assert!(p.find_class("Z").is_none());
    }

    #[test]
    fn parse_errors_carry_file_name() {
        let mut p = JavaProject::new();
        let err = p.add_file("Bad.java", "class {").unwrap_err();
        assert!(err.message.starts_with("Bad.java:"));
        assert!(p.is_empty());
    }

    #[test]
    fn main_discovery_none_unique_ambiguous() {
        let mut p = JavaProject::new();
        p.add_file("A.java", "class A { void f() { } }").unwrap();
        assert_eq!(p.discover_main_class(), MainClassChoice::None);

        p.add_file(
            "M.java",
            "package app; class M { public static void main(String[] a) { } }",
        )
        .unwrap();
        assert_eq!(
            p.discover_main_class(),
            MainClassChoice::Unique("app.M".into())
        );

        p.add_file(
            "N.java",
            "class N { public static void main(String[] a) { } }",
        )
        .unwrap();
        match p.discover_main_class() {
            MainClassChoice::Ambiguous(v) => assert_eq!(v.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn internal_dependencies_follow_imports_and_types() {
        let mut p = JavaProject::new();
        p.add_file("Base.java", "package lib; public class Base { }")
            .unwrap();
        p.add_file("Util.java", "package lib; public class Util { }")
            .unwrap();
        p.add_file(
            "App.java",
            "package app; import lib.Util; class App extends Base { Util u; void f(Base b) { } }",
        )
        .unwrap();
        let app = &p.files()[2];
        let deps = p.internal_dependencies(app);
        assert_eq!(deps, vec!["Base".to_string(), "Util".to_string()]);
        // Base itself depends on nothing.
        assert!(p.internal_dependencies(&p.files()[0]).is_empty());
    }
}
