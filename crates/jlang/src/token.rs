//! Tokens of the Java subset.

use crate::Span;

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Token kinds. Literal kinds carry both the parsed value and enough of
/// the original spelling for the analyzer's lexical rules (scientific
/// notation detection needs to know how a float was *written*).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser via
    /// [`TokenKind::is_keyword`]; keeping them as `Ident` simplifies
    /// contextual words like `module`).
    Ident(String),
    /// Integer literal: value, `L`-suffix flag.
    IntLit { value: i64, long: bool },
    /// Floating literal: value, `f`-suffix flag, whether written in
    /// scientific (`1e3`) notation.
    FloatLit {
        value: f64,
        float32: bool,
        scientific: bool,
    },
    /// Character literal.
    CharLit(char),
    /// String literal (escapes resolved).
    StrLit(String),
    /// Any operator or punctuation, e.g. `"+"`, `"%="`, `">>>"`, `"("`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Java keywords in the supported subset.
    pub const KEYWORDS: &'static [&'static str] = &[
        "abstract",
        "boolean",
        "break",
        "byte",
        "case",
        "catch",
        "char",
        "class",
        "const",
        "continue",
        "default",
        "do",
        "double",
        "else",
        "extends",
        "final",
        "finally",
        "float",
        "for",
        "if",
        "implements",
        "import",
        "instanceof",
        "int",
        "interface",
        "long",
        "native",
        "new",
        "package",
        "private",
        "protected",
        "public",
        "return",
        "short",
        "static",
        "super",
        "switch",
        "synchronized",
        "this",
        "throw",
        "throws",
        "transient",
        "try",
        "void",
        "volatile",
        "while",
        "true",
        "false",
        "null",
    ];

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == kw && Self::KEYWORDS.contains(&kw))
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// The identifier text, if an identifier (including keywords).
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::IntLit { value, .. } => format!("integer `{value}`"),
            TokenKind::FloatLit { value, .. } => format!("float `{value}`"),
            TokenKind::CharLit(c) => format!("char literal {c:?}"),
            TokenKind::StrLit(_) => "string literal".into(),
            TokenKind::Punct(p) => format!("`{p}`"),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// All multi-character operators, longest first (the lexer uses maximal
/// munch over this table).
pub const OPERATORS: &[&str] = &[
    ">>>=", "<<=", ">>=", ">>>", "...", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "->", "::", "+", "-", "*", "/", "%", "=", "<",
    ">", "!", "~", "&", "|", "^", "?", ":", ";", ",", ".", "(", ")", "{", "}", "[", "]", "@",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_detection_rejects_non_keywords() {
        let t = TokenKind::Ident("classes".into());
        assert!(!t.is_keyword("class"));
        assert!(!t.is_keyword("classes")); // not a Java keyword at all
        assert!(TokenKind::Ident("class".into()).is_keyword("class"));
    }

    #[test]
    fn operators_are_longest_first_within_shared_prefixes() {
        // Maximal munch requires that any operator appears before its
        // own proper prefixes in the table.
        for (i, a) in OPERATORS.iter().enumerate() {
            for b in &OPERATORS[..i] {
                assert!(
                    !a.starts_with(b) || a == b,
                    "`{b}` (earlier) is a prefix of `{a}` (later): munch order broken"
                );
            }
        }
    }

    #[test]
    fn describe_is_nonempty_for_all_kinds() {
        let kinds = [
            TokenKind::Ident("x".into()),
            TokenKind::IntLit {
                value: 3,
                long: false,
            },
            TokenKind::FloatLit {
                value: 1.5,
                float32: true,
                scientific: false,
            },
            TokenKind::CharLit('a'),
            TokenKind::StrLit("s".into()),
            TokenKind::Punct("+"),
            TokenKind::Eof,
        ];
        for k in kinds {
            assert!(!k.describe().is_empty());
        }
    }
}
