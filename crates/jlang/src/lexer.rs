//! Tokenizer for the Java subset.
//!
//! Notable requirements driven by the analyzer rules:
//!
//! * Float literals must record whether they were written in scientific
//!   notation (`6.022e23`) — the input to Table I's "scientific notation"
//!   suggestion.
//! * Integer literals accept decimal, hex (`0x`), binary (`0b`), octal
//!   (leading `0`) spellings with `_` separators and `l`/`L` suffixes.
//! * Comments are skipped but newlines inside them still advance line
//!   numbers (suggestions are reported per line).

use crate::{ParseError, Span, Token, TokenKind};

/// Tokenize a full source text.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.here();
            if self.pos >= self.src.len() {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: start,
                });
                return Ok(out);
            }
            let c = self.src[self.pos];
            let kind = if c.is_ascii_digit() || (c == b'.' && self.peek_digit(1)) {
                self.number()?
            } else if c == b'"' {
                self.string()?
            } else if c == b'\'' {
                self.char_lit()?
            } else if c.is_ascii_alphabetic() || c == b'_' || c == b'$' {
                self.ident()
            } else {
                self.operator(start)?
            };
            let span = Span {
                line: start.line,
                col: start.col,
                end_line: self.line,
                end_col: self.col,
            };
            out.push(Token { kind, span });
        }
    }

    fn here(&self) -> Span {
        Span::point(self.line, self.col)
    }

    fn peek_digit(&self, ahead: usize) -> bool {
        self.src
            .get(self.pos + ahead)
            .is_some_and(|b| b.is_ascii_digit())
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.src.get(self.pos) {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let open = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos + 1 >= self.src.len() {
                            return Err(ParseError::new("unterminated block comment", open));
                        }
                        if self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b'$')
        {
            self.bump();
        }
        TokenKind::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        let start_span = self.here();
        // Radix prefixes.
        if self.src[self.pos] == b'0' && self.pos + 1 < self.src.len() {
            let next = self.src[self.pos + 1].to_ascii_lowercase();
            if next == b'x' || next == b'b' {
                self.bump();
                self.bump();
                let radix = if next == b'x' { 16 } else { 2 };
                let digits_start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_hexdigit() || *b == b'_')
                {
                    self.bump();
                }
                let text: String =
                    String::from_utf8_lossy(&self.src[digits_start..self.pos]).replace('_', "");
                let long = self.eat_suffix(b'l');
                let value = i64::from_str_radix(&text, radix).map_err(|e| {
                    ParseError::new(format!("bad radix-{radix} literal: {e}"), start_span)
                })?;
                return Ok(TokenKind::IntLit { value, long });
            }
        }
        // Decimal digits (possibly the integer part of a float).
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'_')
        {
            self.bump();
        }
        let mut is_float = false;
        let mut scientific = false;
        if self.src.get(self.pos) == Some(&b'.') && !self.next_is_ident_or_dot() {
            is_float = true;
            self.bump();
            while self
                .src
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_digit() || *b == b'_')
            {
                self.bump();
            }
        }
        if self
            .src
            .get(self.pos)
            .is_some_and(|b| b.eq_ignore_ascii_case(&b'e'))
            && (self.peek_digit(1)
                || (matches!(self.src.get(self.pos + 1), Some(b'+') | Some(b'-'))
                    && self.peek_digit(2)))
        {
            is_float = true;
            scientific = true;
            self.bump(); // e
            if matches!(self.src.get(self.pos), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            while self.src.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        let mut text: String = String::from_utf8_lossy(&self.src[start..self.pos]).replace('_', "");
        // Suffixes.
        if let Some(b) = self.src.get(self.pos) {
            match b.to_ascii_lowercase() {
                b'f' => {
                    self.bump();
                    let value: f64 = text.parse().map_err(|e| {
                        ParseError::new(format!("bad float literal: {e}"), start_span)
                    })?;
                    return Ok(TokenKind::FloatLit {
                        value,
                        float32: true,
                        scientific,
                    });
                }
                b'd' => {
                    self.bump();
                    is_float = true;
                }
                b'l' if !is_float => {
                    self.bump();
                    let value: i64 = text.parse().map_err(|e| {
                        ParseError::new(format!("bad long literal: {e}"), start_span)
                    })?;
                    return Ok(TokenKind::IntLit { value, long: true });
                }
                _ => {}
            }
        }
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|e| ParseError::new(format!("bad float literal: {e}"), start_span))?;
            Ok(TokenKind::FloatLit {
                value,
                float32: false,
                scientific,
            })
        } else {
            // Leading-zero octal (Java legacy); "0" itself is decimal.
            let value = if text.len() > 1 && text.starts_with('0') {
                let rest = text.trim_start_matches('0');
                if rest.is_empty() {
                    0
                } else {
                    i64::from_str_radix(rest, 8).map_err(|e| {
                        ParseError::new(format!("bad octal literal: {e}"), start_span)
                    })?
                }
            } else {
                if text.is_empty() {
                    text.push('0');
                }
                text.parse()
                    .map_err(|e| ParseError::new(format!("bad int literal: {e}"), start_span))?
            };
            Ok(TokenKind::IntLit { value, long: false })
        }
    }

    /// After digits, a `.` followed by an identifier start means a method
    /// call on a literal (rare) — treat the literal as an int. A second
    /// `.` means a range-like construct we don't support; also stop.
    fn next_is_ident_or_dot(&self) -> bool {
        match self.src.get(self.pos + 1) {
            Some(b) => b.is_ascii_alphabetic() || *b == b'_' || *b == b'.',
            None => false,
        }
    }

    fn eat_suffix(&mut self, lower: u8) -> bool {
        if self
            .src
            .get(self.pos)
            .is_some_and(|b| b.to_ascii_lowercase() == lower)
        {
            self.bump();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<TokenKind, ParseError> {
        let open = self.here();
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(ParseError::new("unterminated string literal", open));
            }
            match self.bump() {
                b'"' => return Ok(TokenKind::StrLit(s)),
                b'\\' => s.push(self.escape(open)?),
                b'\n' => return Err(ParseError::new("newline in string literal", open)),
                c => s.push(c as char),
            }
        }
    }

    fn char_lit(&mut self) -> Result<TokenKind, ParseError> {
        let open = self.here();
        self.bump(); // opening quote
        if self.pos >= self.src.len() {
            return Err(ParseError::new("unterminated char literal", open));
        }
        let c = match self.bump() {
            b'\\' => self.escape(open)?,
            b'\'' => return Err(ParseError::new("empty char literal", open)),
            c => c as char,
        };
        if self.pos >= self.src.len() || self.bump() != b'\'' {
            return Err(ParseError::new("unterminated char literal", open));
        }
        Ok(TokenKind::CharLit(c))
    }

    fn escape(&mut self, open: Span) -> Result<char, ParseError> {
        if self.pos >= self.src.len() {
            return Err(ParseError::new("unterminated escape", open));
        }
        Ok(match self.bump() {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'0' => '\0',
            b'\\' => '\\',
            b'\'' => '\'',
            b'"' => '"',
            b'u' => {
                let mut v = 0u32;
                for _ in 0..4 {
                    if self.pos >= self.src.len() {
                        return Err(ParseError::new("unterminated \\u escape", open));
                    }
                    let d = self.bump();
                    v = v * 16
                        + (d as char)
                            .to_digit(16)
                            .ok_or_else(|| ParseError::new("bad hex digit in \\u escape", open))?;
                }
                char::from_u32(v).ok_or_else(|| ParseError::new("invalid \\u code point", open))?
            }
            c => {
                return Err(ParseError::new(
                    format!("unknown escape `\\{}`", c as char),
                    open,
                ))
            }
        })
    }

    fn operator(&mut self, start: Span) -> Result<TokenKind, ParseError> {
        let rest = &self.src[self.pos..];
        for op in crate::token::OPERATORS {
            if rest.starts_with(op.as_bytes()) {
                for _ in 0..op.len() {
                    self.bump();
                }
                return Ok(TokenKind::Punct(op));
            }
        }
        Err(ParseError::new(
            format!("unexpected character `{}`", self.src[self.pos] as char),
            start,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        let ks = kinds("static int foo_1 $x");
        assert_eq!(ks.len(), 5); // 4 idents + EOF
        assert!(ks[0].is_keyword("static"));
        assert_eq!(ks[2].ident(), Some("foo_1"));
    }

    #[test]
    fn lexes_integer_radices() {
        assert_eq!(
            kinds("0x1F")[0],
            TokenKind::IntLit {
                value: 31,
                long: false
            }
        );
        assert_eq!(
            kinds("0b101")[0],
            TokenKind::IntLit {
                value: 5,
                long: false
            }
        );
        assert_eq!(
            kinds("017")[0],
            TokenKind::IntLit {
                value: 15,
                long: false
            }
        );
        assert_eq!(
            kinds("1_000_000L")[0],
            TokenKind::IntLit {
                value: 1_000_000,
                long: true
            }
        );
        assert_eq!(
            kinds("0")[0],
            TokenKind::IntLit {
                value: 0,
                long: false
            }
        );
    }

    #[test]
    fn scientific_notation_is_flagged() {
        match &kinds("6.022e23")[0] {
            TokenKind::FloatLit { scientific, .. } => assert!(scientific),
            k => panic!("{k:?}"),
        }
        match &kinds("0.001")[0] {
            TokenKind::FloatLit {
                scientific, value, ..
            } => {
                assert!(!scientific);
                assert!((value - 0.001).abs() < 1e-12);
            }
            k => panic!("{k:?}"),
        }
        match &kinds("1e-3f")[0] {
            TokenKind::FloatLit {
                scientific,
                float32,
                ..
            } => {
                assert!(*scientific && *float32);
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn float_suffixes() {
        assert_eq!(
            kinds("2.5f")[0],
            TokenKind::FloatLit {
                value: 2.5,
                float32: true,
                scientific: false
            }
        );
        assert_eq!(
            kinds("2.5d")[0],
            TokenKind::FloatLit {
                value: 2.5,
                float32: false,
                scientific: false
            }
        );
        assert_eq!(
            kinds(".5")[0],
            TokenKind::FloatLit {
                value: 0.5,
                float32: false,
                scientific: false
            }
        );
    }

    #[test]
    fn method_call_on_int_literal_is_not_a_float() {
        // `5.toString()` style: the dot binds to the call, not the number.
        let ks = kinds("x = 5.equals(y)");
        assert_eq!(
            ks[2],
            TokenKind::IntLit {
                value: 5,
                long: false
            }
        );
        assert!(ks[3].is_punct("."));
    }

    #[test]
    fn string_and_char_escapes() {
        assert_eq!(
            kinds(r#""a\tb\nA""#)[0],
            TokenKind::StrLit("a\tb\nA".into())
        );
        assert_eq!(kinds(r"'\n'")[0], TokenKind::CharLit('\n'));
        assert_eq!(kinds("'x'")[0], TokenKind::CharLit('x'));
    }

    #[test]
    fn comments_are_skipped_but_lines_advance() {
        let toks = lex("// line one\n/* multi\nline */ int x;").unwrap();
        assert!(toks[0].kind.is_keyword("int"));
        assert_eq!(toks[0].span.line, 3);
    }

    #[test]
    fn maximal_munch_on_operators() {
        let ks = kinds("a >>>= b >>> c >> d > e");
        let ops: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec![">>>=", ">>>", ">>", ">"]);
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let toks = lex("int\n  foo;").unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
    }

    #[test]
    fn errors_carry_location() {
        let err = lex("\"unterminated").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("unterminated"));
        assert!(lex("/* never closed").is_err());
        assert!(lex("'ab'").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn modulus_percent_is_lexed_distinctly_from_percent_assign() {
        let ks = kinds("a % b %= c");
        assert!(ks[1].is_punct("%"));
        assert!(ks[3].is_punct("%="));
    }

    proptest! {
        #[test]
        fn lexer_never_panics(src in "\\PC*") {
            let _ = lex(&src);
        }

        #[test]
        fn decimal_int_roundtrip(v in 0i64..i64::MAX/2) {
            let ks = kinds(&v.to_string());
            prop_assert_eq!(&ks[0], &TokenKind::IntLit { value: v, long: false });
        }

        #[test]
        fn string_content_roundtrips(s in "[a-zA-Z0-9 ,.!?]*") {
            let src = format!("\"{s}\"");
            prop_assert_eq!(&kinds(&src)[0], &TokenKind::StrLit(s));
        }

        #[test]
        fn token_count_excluding_eof_is_stable_under_whitespace(
            n in 1usize..5
        ) {
            let base = "int x = 1 + 2 ;";
            let spaced = base.replace(' ', &" ".repeat(n));
            prop_assert_eq!(kinds(base), kinds(&spaced));
        }
    }
}
