//! Spans, tracks and energy probes.
//!
//! A [`Tracer`] owns the recorded events. Work units enter a named
//! *track* with [`track`] (or [`Tracer::track`]); while a track guard is
//! live on the current thread, [`span`] opens energy-attributed spans on
//! it. Closing a span (guard drop) records wall time and an energy delta
//! from the track's bound [`EnergyProbe`], plus any joules attributed
//! explicitly via [`SpanGuard::add_joules`].
//!
//! IDs are deterministic: a span's ID mixes the FNV-1a hash of its track
//! name with the span's arrival index *within the track*, so two runs
//! that do the same work produce the same IDs regardless of which OS
//! thread serviced which track.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A cumulative, wrap-corrected energy reading in joules.
///
/// Implementations must be monotone non-decreasing: the value is "total
/// joules observed since the probe was created", with any 32-bit RAPL
/// counter wraps already corrected below this trait (see
/// `jepo_rapl::probe::CounterProbe`, which routes raw MSR reads through
/// the wrap-aware `CounterReader`).
pub trait EnergyProbe: Send + Sync {
    /// Total joules accumulated since probe creation.
    fn total_joules(&self) -> f64;
}

/// FNV-1a 64-bit over a byte string (stable across platforms/runs).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer — spreads sequence numbers across ID space.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One recorded event (export formats are derived views). Span names
/// are interned `Arc<str>`s: the registry allocates a name once, and
/// every later span/instant with the same name is a refcount bump — no
/// per-span `String` allocation on the enabled hot path.
#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    Begin {
        span_id: u64,
        parent_id: u64,
        name: Arc<str>,
    },
    End {
        span_id: u64,
        package_j: f64,
    },
    /// A point-in-time marker (profiler sample ticks) with an energy
    /// annotation; exports as a Chrome `ph:"i"` instant event.
    Instant {
        name: Arc<str>,
        package_j: f64,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Event {
    /// Track index into [`TraceData::tracks`].
    pub track: usize,
    /// Per-track event sequence number (deterministic).
    pub seq: u64,
    /// Nanoseconds since the tracer's epoch (timing-only; masked for
    /// content comparisons).
    pub ts_ns: u64,
    pub kind: EventKind,
}

/// A drained copy of everything a tracer recorded.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    pub(crate) tracks: Vec<String>,
    pub(crate) events: Vec<Event>,
}

impl TraceData {
    /// Number of recorded events (begin + end).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of complete spans (end events).
    pub fn span_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::End { .. }))
            .count()
    }

    /// Track names, in creation order.
    pub fn track_names(&self) -> &[String] {
        &self.tracks
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

struct Track {
    name: String,
    name_hash: u64,
    next_span_seq: u64,
    next_event_seq: u64,
}

#[derive(Default)]
struct State {
    tracks: Vec<Track>,
    by_name: HashMap<String, usize>,
    /// Interned span/instant names (lookup by `&str` via `Borrow`).
    names: std::collections::HashSet<Arc<str>>,
    events: Vec<Event>,
}

/// Intern `name`: one allocation the first time, a refcount bump after.
fn intern_name(st: &mut State, name: &str) -> Arc<str> {
    match st.names.get(name) {
        Some(n) => n.clone(),
        None => {
            let n: Arc<str> = Arc::from(name);
            st.names.insert(n.clone());
            n
        }
    }
}

struct Core {
    enabled: AtomicBool,
    epoch: Instant,
    state: Mutex<State>,
}

impl Core {
    fn new() -> Core {
        Core {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }
}

/// The per-thread track context: which tracer/track spans go to, the
/// open-span stack (for parent links), and the bound energy probe.
struct Ctx {
    core: Arc<Core>,
    track: usize,
    stack: Vec<u64>,
    probe: Option<Arc<dyn EnergyProbe>>,
}

thread_local! {
    static CTX: RefCell<Vec<Ctx>> = const { RefCell::new(Vec::new()) };
}

/// An event sink for spans. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Tracer {
    core: Arc<Core>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Tracer {
        Tracer {
            core: Arc::new(Core::new()),
        }
    }

    /// The process-wide tracer (disabled until [`Tracer::enable`]d; the
    /// CLI enables it when `--trace`/`--metrics` are passed).
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Start recording.
    pub fn enable(&self) {
        self.core.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (open guards become no-ops on close-path lookups
    /// that re-check; already-open spans still record their end).
    pub fn disable(&self) {
        self.core.enabled.store(false, Ordering::Release);
    }

    /// Whether the tracer is recording.
    pub fn is_enabled(&self) -> bool {
        self.core.enabled.load(Ordering::Acquire)
    }

    /// Enter a track on the current thread. While the guard lives,
    /// [`span`] calls on this thread record into `name`'s track. No-op
    /// when the tracer is disabled.
    pub fn track(&self, name: &str) -> TrackGuard {
        enter_track(&self.core, name)
    }

    /// Snapshot everything recorded so far.
    pub fn data(&self) -> TraceData {
        let st = self.core.state.lock().unwrap();
        TraceData {
            tracks: st.tracks.iter().map(|t| t.name.clone()).collect(),
            events: st.events.clone(),
        }
    }

    /// Drop all recorded events and tracks (sequence numbers restart).
    pub fn clear(&self) {
        let mut st = self.core.state.lock().unwrap();
        *st = State::default();
    }

    /// Export as Chrome trace-event JSON (see [`crate::export`]).
    pub fn export_chrome(&self, mask_timing: bool) -> String {
        crate::export::chrome_trace(&self.data(), mask_timing)
    }
}

fn enter_track(core: &Arc<Core>, name: &str) -> TrackGuard {
    if !core.enabled.load(Ordering::Acquire) {
        return TrackGuard { active: false };
    }
    let track = {
        let mut st = core.state.lock().unwrap();
        match st.by_name.get(name) {
            Some(&i) => i,
            None => {
                let i = st.tracks.len();
                st.tracks.push(Track {
                    name: name.to_string(),
                    name_hash: fnv1a(name.as_bytes()),
                    next_span_seq: 0,
                    next_event_seq: 0,
                });
                st.by_name.insert(name.to_string(), i);
                i
            }
        }
    };
    // A nested track inherits the enclosing track's probe, so e.g. VM
    // spans inside a profiled run keep energy attribution.
    let probe = CTX.with(|c| c.borrow().last().and_then(|t| t.probe.clone()));
    CTX.with(|c| {
        c.borrow_mut().push(Ctx {
            core: core.clone(),
            track,
            stack: Vec::new(),
            probe,
        })
    });
    TrackGuard { active: true }
}

/// Enter a track using the innermost active tracer on this thread, or
/// the global tracer when none is active. This is what instrumentation
/// sites call: tests can route a whole subtree into an instance tracer
/// by holding an outer [`Tracer::track`] guard.
pub fn track(name: &str) -> TrackGuard {
    let core = CTX.with(|c| c.borrow().last().map(|t| t.core.clone()));
    match core {
        Some(core) => enter_track(&core, name),
        None => enter_track(&Tracer::global().core, name),
    }
}

/// True when a [`span`] opened right now would record somewhere. Use to
/// gate `format!` work for track names.
pub fn would_trace() -> bool {
    active() || Tracer::global().is_enabled()
}

/// True when the current thread is inside an active track.
pub fn active() -> bool {
    CTX.with(|c| !c.borrow().is_empty())
}

/// Scope guard for a track (see [`Tracer::track`]).
#[must_use = "the track ends when the guard drops"]
pub struct TrackGuard {
    active: bool,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        if self.active {
            CTX.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// Bind an energy probe to the current track: spans opened while the
/// guard lives attribute `probe`'s joule deltas. Restores the previous
/// probe on drop; inert when no track is active.
pub fn bind_probe(probe: Arc<dyn EnergyProbe>) -> ProbeGuard {
    let prev = CTX.with(|c| {
        c.borrow_mut()
            .last_mut()
            .map(|top| top.probe.replace(probe))
    });
    ProbeGuard {
        bound: prev.is_some(),
        prev: prev.flatten(),
    }
}

/// Scope guard for [`bind_probe`].
#[must_use = "the probe unbinds when the guard drops"]
pub struct ProbeGuard {
    bound: bool,
    prev: Option<Arc<dyn EnergyProbe>>,
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        if self.bound {
            let prev = self.prev.take();
            CTX.with(|c| {
                if let Some(top) = c.borrow_mut().last_mut() {
                    top.probe = prev;
                }
            });
        }
    }
}

/// Open a span named `name` on the current thread's track. Records a
/// begin event now and an end event (with wall time and energy delta)
/// when the returned guard drops. No-op without an active track.
pub fn span(name: &str) -> SpanGuard {
    let opened = CTX.with(|c| {
        let mut ctxs = c.borrow_mut();
        let top = ctxs.last_mut()?;
        if !top.core.enabled.load(Ordering::Acquire) {
            return None;
        }
        let core = top.core.clone();
        let probe = top.probe.clone();
        let start_j = probe.as_ref().map(|p| p.total_joules());
        let parent_id = top.stack.last().copied().unwrap_or(0);
        let ts_ns = core.epoch.elapsed().as_nanos() as u64;
        let span_id = {
            let mut st = core.state.lock().unwrap();
            let name = intern_name(&mut st, name);
            let tr = &mut st.tracks[top.track];
            let span_seq = tr.next_span_seq;
            tr.next_span_seq += 1;
            let seq = tr.next_event_seq;
            tr.next_event_seq += 1;
            let span_id = tr.name_hash ^ mix(span_seq + 1);
            let track = top.track;
            st.events.push(Event {
                track,
                seq,
                ts_ns,
                kind: EventKind::Begin {
                    span_id,
                    parent_id,
                    name,
                },
            });
            span_id
        };
        top.stack.push(span_id);
        Some(OpenSpan {
            core,
            track: top.track,
            span_id,
            start_j,
            probe,
        })
    });
    SpanGuard {
        open: opened,
        extra_j: 0.0,
    }
}

/// Record an instantaneous marker (a profiler sample tick) on the
/// current thread's track, annotated with the joules attributed at that
/// instant (clamped ≥ 0). No-op without an active track; exports as a
/// Chrome `ph:"i"` event on the track's tid.
pub fn instant(name: &str, package_j: f64) {
    CTX.with(|c| {
        let mut ctxs = c.borrow_mut();
        let Some(top) = ctxs.last_mut() else {
            return;
        };
        if !top.core.enabled.load(Ordering::Acquire) {
            return;
        }
        let ts_ns = top.core.epoch.elapsed().as_nanos() as u64;
        let mut st = top.core.state.lock().unwrap();
        let name = intern_name(&mut st, name);
        let tr = &mut st.tracks[top.track];
        let seq = tr.next_event_seq;
        tr.next_event_seq += 1;
        let track = top.track;
        st.events.push(Event {
            track,
            seq,
            ts_ns,
            kind: EventKind::Instant {
                name,
                package_j: package_j.max(0.0),
            },
        });
    });
}

struct OpenSpan {
    core: Arc<Core>,
    track: usize,
    span_id: u64,
    start_j: Option<f64>,
    probe: Option<Arc<dyn EnergyProbe>>,
}

/// Scope guard for an open span (see [`span`]).
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
    extra_j: f64,
}

impl SpanGuard {
    /// Attribute joules to this span explicitly, in addition to any
    /// probe delta (used where energy is computed rather than sampled,
    /// e.g. Table IV rows that pour model joules into a fresh device).
    pub fn add_joules(&mut self, joules: f64) {
        if self.open.is_some() {
            self.extra_j += joules.max(0.0);
        }
    }

    /// Whether this guard is recording (false under disabled tracing).
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        // Probe delta is wrap-corrected below the trait (cumulative
        // totals), so a counter wrap mid-span cannot go negative here;
        // clamp anyway so exported energy is always ≥ 0.
        let probe_j = match (&open.probe, open.start_j) {
            (Some(p), Some(s)) => (p.total_joules() - s).max(0.0),
            _ => 0.0,
        };
        let package_j = probe_j + self.extra_j;
        let ts_ns = open.core.epoch.elapsed().as_nanos() as u64;
        {
            let mut st = open.core.state.lock().unwrap();
            let tr = &mut st.tracks[open.track];
            let seq = tr.next_event_seq;
            tr.next_event_seq += 1;
            st.events.push(Event {
                track: open.track,
                seq,
                ts_ns,
                kind: EventKind::End {
                    span_id: open.span_id,
                    package_j,
                },
            });
        }
        CTX.with(|c| {
            if let Some(top) = c.borrow_mut().last_mut() {
                if let Some(pos) = top.stack.iter().rposition(|&id| id == open.span_id) {
                    top.stack.remove(pos);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeProbe(std::sync::Mutex<f64>);
    impl EnergyProbe for FakeProbe {
        fn total_joules(&self) -> f64 {
            *self.0.lock().unwrap()
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let _g = t.track("work");
            let _s = span("step");
        }
        assert!(t.data().is_empty());
    }

    #[test]
    fn span_without_track_is_noop() {
        let s = span("orphan");
        assert!(!s.is_recording());
    }

    #[test]
    fn spans_nest_with_parent_links() {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("work");
            let _a = span("outer");
            {
                let _b = span("inner");
            }
        }
        let data = t.data();
        assert_eq!(data.span_count(), 2);
        assert_eq!(data.event_count(), 4);
        let (mut outer_id, mut inner_parent) = (0, 1);
        for e in &data.events {
            if let EventKind::Begin {
                span_id,
                parent_id,
                name,
            } = &e.kind
            {
                if name.as_ref() == "outer" {
                    outer_id = *span_id;
                    assert_eq!(*parent_id, 0, "outer is a root span");
                } else {
                    inner_parent = *parent_id;
                }
            }
        }
        assert_eq!(inner_parent, outer_id, "inner's parent is outer");
    }

    #[test]
    fn ids_and_ordering_are_deterministic_across_runs() {
        let run = || {
            let t = Tracer::new();
            t.enable();
            {
                let _g = t.track("work");
                for _ in 0..3 {
                    let _s = span("step");
                }
            }
            t.export_chrome(true)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn same_content_regardless_of_thread_assignment() {
        // Two tracks driven from one thread vs two threads: masked
        // export must be identical (this is the --jobs invariance).
        let sequential = {
            let t = Tracer::new();
            t.enable();
            for name in ["row/a", "row/b"] {
                let _g = t.track(name);
                let _s = span("measure");
            }
            t.export_chrome(true)
        };
        let parallel = {
            let t = Tracer::new();
            t.enable();
            std::thread::scope(|s| {
                for name in ["row/a", "row/b"] {
                    let t = t.clone();
                    s.spawn(move || {
                        let _g = t.track(name);
                        let _s = span("measure");
                    });
                }
            });
            t.export_chrome(true)
        };
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn probe_delta_lands_on_the_span() {
        let t = Tracer::new();
        t.enable();
        let probe = Arc::new(FakeProbe(std::sync::Mutex::new(1.0)));
        {
            let _g = t.track("work");
            let _p = bind_probe(probe.clone());
            let _s = span("hot");
            *probe.0.lock().unwrap() = 3.5;
        }
        let data = t.data();
        let j = data
            .events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::End { package_j, .. } => Some(package_j),
                _ => None,
            })
            .unwrap();
        assert!((j - 2.5).abs() < 1e-12, "delta 3.5-1.0, got {j}");
    }

    #[test]
    fn explicit_joules_accumulate() {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("work");
            let mut s = span("row");
            s.add_joules(2.0);
            s.add_joules(0.5);
            s.add_joules(-7.0); // negative attributions are dropped
        }
        let data = t.data();
        let j = data
            .events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::End { package_j, .. } => Some(package_j),
                _ => None,
            })
            .unwrap();
        assert!((j - 2.5).abs() < 1e-12, "{j}");
    }

    #[test]
    fn nested_track_inherits_probe() {
        let t = Tracer::new();
        t.enable();
        let probe = Arc::new(FakeProbe(std::sync::Mutex::new(0.0)));
        {
            let _g = t.track("outer");
            let _p = bind_probe(probe.clone());
            let _g2 = track("inner"); // free fn: uses innermost tracer
            let _s = span("work");
            *probe.0.lock().unwrap() = 1.25;
        }
        let data = t.data();
        assert_eq!(data.track_names(), &["outer", "inner"]);
        let j = data
            .events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::End { package_j, .. } => Some(package_j),
                _ => None,
            })
            .unwrap();
        assert!((j - 1.25).abs() < 1e-12, "{j}");
    }

    #[test]
    fn span_names_are_interned_once() {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("work");
            for _ in 0..3 {
                let _s = span("step");
            }
        }
        let data = t.data();
        let names: Vec<&Arc<str>> = data
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Begin { name, .. } => Some(name),
                _ => None,
            })
            .collect();
        assert_eq!(names.len(), 3);
        // All three begins share one interned allocation.
        assert!(Arc::ptr_eq(names[0], names[1]));
        assert!(Arc::ptr_eq(names[1], names[2]));
    }

    #[test]
    fn instants_record_on_the_current_track() {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("samples");
            instant("tick", 0.5);
            instant("tick", -1.0); // clamped to zero
        }
        instant("orphan", 1.0); // no track: dropped
        let data = t.data();
        let ticks: Vec<f64> = data
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Instant { name, package_j } if name.as_ref() == "tick" => {
                    Some(*package_j)
                }
                _ => None,
            })
            .collect();
        assert_eq!(ticks, vec![0.5, 0.0]);
        assert_eq!(data.events.len(), 2, "orphan instant not recorded");
    }

    #[test]
    fn clear_resets_sequences() {
        let t = Tracer::new();
        t.enable();
        let first = {
            let _g = t.track("work");
            let _s = span("step");
            drop(_s);
            t.export_chrome(true)
        };
        t.clear();
        let second = {
            let _g = t.track("work");
            let _s = span("step");
            drop(_s);
            t.export_chrome(true)
        };
        assert_eq!(first, second);
    }
}
