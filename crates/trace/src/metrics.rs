//! The metrics registry — counters, gauges, fixed-bucket histograms.
//!
//! Hot-path writes reuse the PR-2 striped-counter idea: a [`Counter`]
//! holds a fixed array of cache-line-padded atomic lanes; each thread
//! hashes to a lane once (thread-local) and all its `add`s hit that lane
//! with a relaxed `fetch_add` — no locks, no cross-core ping-pong under
//! the worker counts we run. Sums are exact u64 totals, so metric values
//! are identical for any job count.
//!
//! The registry itself (name → handle) is a mutex-guarded map; sites
//! look handles up at coarse boundaries (per run, per file, per worker)
//! and never inside per-op loops.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bucket bounds (ns) for phase/latency histograms: 1 µs … 10 s.
pub const TIME_NS_BUCKETS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Bucket bounds for item/size histograms: powers of four.
pub const COUNT_BUCKETS: [u64; 8] = [1, 4, 16, 64, 256, 1024, 4096, 16384];

const LANES: usize = 16;

static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread writes one fixed lane (round-robin assignment), the
    /// same discipline `OpCounter::assign_slot` uses in jepo-rapl.
    static LANE: usize = NEXT_LANE.fetch_add(1, Ordering::Relaxed) % LANES;
}

/// One cache line per lane so concurrent writers don't false-share.
#[repr(align(64))]
struct Lane(AtomicU64);

struct CounterCore {
    lanes: [Lane; LANES],
}

/// A monotone counter with a striped lock-free hot path.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            core: Arc::new(CounterCore {
                lanes: std::array::from_fn(|_| Lane(AtomicU64::new(0))),
            }),
        }
    }

    /// Add `n` on this thread's lane.
    #[inline]
    pub fn add(&self, n: u64) {
        let lane = LANE.with(|l| *l);
        self.core.lanes[lane].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Exact total across all lanes.
    pub fn value(&self) -> u64 {
        self.core
            .lanes
            .iter()
            .map(|l| l.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins f64 gauge (bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistCore {
    /// Inclusive upper bounds, ascending; one overflow bucket past the end.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram (`observe` is two relaxed fetch_adds plus a
/// branchless bucket search over ≤ a dozen bounds).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        Histogram {
            core: Arc::new(HistCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.core.bounds.partition_point(|&b| b < v);
        self.core.counts[i].fetch_add(1, Ordering::Relaxed);
        self.core.total.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Handle {
    C(Counter),
    G(Gauge),
    H(Histogram),
}

/// A snapshot value for one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram: total count, sum, per-bucket `(upper_bound, count)`,
    /// overflow count.
    Histogram {
        count: u64,
        sum: u64,
        buckets: Vec<(u64, u64)>,
        overflow: u64,
    },
}

/// One named metric at snapshot time.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name (`subsystem.metric` convention).
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// The named-metric registry (see module docs).
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<std::collections::BTreeMap<String, Handle>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, disabled registry.
    pub fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The process-wide registry instrumentation sites report to.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Start collecting (sites check this before recording).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop collecting.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether sites should record. One relaxed-ish atomic load — this
    /// is the entire disabled-path cost of an instrumentation site.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Handle::C(Counter::new()))
        {
            Handle::C(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Handle::G(Gauge::new()))
        {
            Handle::G(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Get or create a histogram with the given bucket bounds (bounds
    /// are fixed at first registration).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Handle::H(Histogram::new(bounds)))
        {
            Handle::H(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(name, h)| MetricSnapshot {
                name: name.clone(),
                value: match h {
                    Handle::C(c) => MetricValue::Counter(c.value()),
                    Handle::G(g) => MetricValue::Gauge(g.value()),
                    Handle::H(h) => {
                        let counts: Vec<u64> = h
                            .core
                            .counts
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .collect();
                        let buckets = h
                            .core
                            .bounds
                            .iter()
                            .zip(&counts)
                            .map(|(&b, &c)| (b, c))
                            .collect();
                        MetricValue::Histogram {
                            count: h.count(),
                            sum: h.sum(),
                            buckets,
                            overflow: *counts.last().unwrap_or(&0),
                        }
                    }
                },
            })
            .collect()
    }

    /// Drop every registered metric.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Snapshot rendered as JSONL (see [`crate::export::metrics_jsonl`]).
    pub fn jsonl(&self) -> String {
        crate::export::metrics_jsonl(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_exactly() {
        let reg = Registry::new();
        let c = reg.counter("t.ops");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
        assert_eq!(reg.counter("t.ops").value(), 80_000, "same handle by name");
    }

    #[test]
    fn gauge_holds_last_value() {
        let reg = Registry::new();
        let g = reg.gauge("t.load");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.value(), -2.25);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("t.lat", &[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5122);
        let snap = reg.snapshot();
        let MetricValue::Histogram {
            buckets, overflow, ..
        } = &snap[0].value
        else {
            panic!("not a histogram")
        };
        // ≤10: {1,10}; ≤100: {11,100}; ≤1000: {}; overflow: {5000}.
        assert_eq!(buckets, &[(10, 2), (100, 2), (1000, 0)]);
        assert_eq!(*overflow, 1);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = Registry::new();
        reg.counter("z.last");
        reg.counter("a.first");
        reg.gauge("m.mid");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("t.x");
        reg.gauge("t.x");
    }

    #[test]
    fn enable_flag_round_trips() {
        let reg = Registry::new();
        assert!(!reg.is_enabled());
        reg.enable();
        assert!(reg.is_enabled());
        reg.disable();
        assert!(!reg.is_enabled());
    }
}
