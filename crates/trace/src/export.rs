//! Exporters: Chrome trace-event JSON, JSONL metrics, terminal views.
//!
//! The Chrome export emits exactly one JSON object per line inside
//! `traceEvents`, which keeps the (dependency-free) validator and the
//! masking helper line-oriented. `tid`s are assigned by *sorted track
//! name*, not OS thread, so the export is content-identical for any
//! worker count; `ts`/`package_j` are the only fields that vary run to
//! run and `mask_timing` zeroes them for exact comparisons.

use crate::metrics::{MetricSnapshot, MetricValue};
use crate::span::{Event, EventKind, TraceData};
use std::fmt::Write as _;

/// Escape a string for a JSON literal (we control the inputs, but track
/// names embed file paths which may contain quotes/backslashes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 as a valid JSON number.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Render [`TraceData`] as Chrome trace-event JSON (`about:tracing` /
/// Perfetto's "Open trace file"). With `mask_timing`, `ts` and
/// `package_j` are zeroed so two exports can be compared for content.
pub fn chrome_trace(data: &TraceData, mask_timing: bool) -> String {
    // tid by sorted track name: deterministic under any scheduling.
    let mut order: Vec<usize> = (0..data.tracks.len()).collect();
    order.sort_by(|&a, &b| data.tracks[a].cmp(&data.tracks[b]));
    let mut tid_of = vec![0usize; data.tracks.len()];
    for (tid0, &t) in order.iter().enumerate() {
        tid_of[t] = tid0 + 1;
    }
    // Events grouped per track, each track ordered by its own sequence.
    let mut per_track: Vec<Vec<&Event>> = vec![Vec::new(); data.tracks.len()];
    for e in &data.events {
        per_track[e.track].push(e);
    }
    for evs in &mut per_track {
        evs.sort_by_key(|e| e.seq);
    }

    let mut lines: Vec<String> = Vec::with_capacity(data.events.len() + data.tracks.len() + 1);
    lines.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"jepo\"}}"
            .to_string(),
    );
    for &t in &order {
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            tid_of[t],
            esc(&data.tracks[t])
        ));
    }
    for &t in &order {
        for e in &per_track[t] {
            let ts_us = if mask_timing {
                0.0
            } else {
                e.ts_ns as f64 / 1_000.0
            };
            match &e.kind {
                EventKind::Begin {
                    span_id,
                    parent_id,
                    name,
                } => lines.push(format!(
                    "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"{}\",\
                     \"args\":{{\"span_id\":\"{:016x}\",\"parent\":\"{:016x}\",\"seq\":{}}}}}",
                    tid_of[t],
                    ts_us,
                    esc(name),
                    span_id,
                    parent_id,
                    e.seq
                )),
                EventKind::End { span_id, package_j } => {
                    let j = if mask_timing { 0.0 } else { *package_j };
                    lines.push(format!(
                        "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\
                         \"args\":{{\"span_id\":\"{:016x}\",\"package_j\":{:.9},\"seq\":{}}}}}",
                        tid_of[t], ts_us, span_id, j, e.seq
                    ));
                }
                EventKind::Instant { name, package_j } => {
                    let j = if mask_timing { 0.0 } else { *package_j };
                    lines.push(format!(
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"{}\",\
                         \"s\":\"t\",\"args\":{{\"package_j\":{:.9},\"seq\":{}}}}}",
                        tid_of[t],
                        ts_us,
                        esc(name),
                        j,
                        e.seq
                    ));
                }
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Render a metrics snapshot as JSONL — one metric per line.
pub fn metrics_jsonl(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for s in snaps {
        match &s.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{}\",\"type\":\"counter\",\"value\":{v}}}",
                    esc(&s.name)
                );
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{}\",\"type\":\"gauge\",\"value\":{}}}",
                    esc(&s.name),
                    json_f64(*v)
                );
            }
            MetricValue::Histogram {
                count,
                sum,
                buckets,
                overflow,
            } => {
                let bs: Vec<String> = buckets
                    .iter()
                    .map(|(le, n)| format!("{{\"le\":{le},\"n\":{n}}}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{}\",\"type\":\"histogram\",\"count\":{count},\
                     \"sum\":{sum},\"buckets\":[{}],\"overflow\":{overflow}}}",
                    esc(&s.name),
                    bs.join(",")
                );
            }
        }
    }
    out
}

/// A completed span reconstructed from begin/end events.
struct Closed<'a> {
    track: usize,
    /// Path of span names from the track root down to this span.
    path: Vec<&'a str>,
    wall_ns: u64,
    package_j: f64,
}

/// Pair up begin/end events per track (tracks are single-writer, so a
/// per-track stack reconstructs nesting exactly).
fn closed_spans(data: &TraceData) -> Vec<Closed<'_>> {
    let mut per_track: Vec<Vec<&Event>> = vec![Vec::new(); data.tracks.len()];
    for e in &data.events {
        per_track[e.track].push(e);
    }
    let mut out = Vec::new();
    for (track, mut evs) in per_track.into_iter().enumerate() {
        evs.sort_by_key(|e| e.seq);
        let mut stack: Vec<(&str, u64, u64)> = Vec::new(); // (name, id, ts)
        for e in evs {
            match &e.kind {
                EventKind::Begin { span_id, name, .. } => {
                    stack.push((name.as_ref(), *span_id, e.ts_ns));
                }
                EventKind::End { span_id, package_j } => {
                    if let Some(pos) = stack.iter().rposition(|&(_, id, _)| id == *span_id) {
                        let (_, _, ts0) = stack[pos];
                        let path = stack[..=pos].iter().map(|&(n, _, _)| n).collect();
                        stack.truncate(pos);
                        out.push(Closed {
                            track,
                            path,
                            wall_ns: e.ts_ns.saturating_sub(ts0),
                            package_j: *package_j,
                        });
                    }
                }
                EventKind::Instant { .. } => {}
            }
        }
    }
    out
}

/// Aligned text table in the Fig. 1–5 view style (duplicated from
/// `jepo-core::views` — this crate sits below core in the dependency
/// graph).
fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate().take(ncols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(row, &mut out);
    }
    out
}

/// Terminal summary: per span name, call count, total wall time and
/// total attributed energy — the trace analogue of the Fig. 4 profiler
/// view. Sorted by energy (desc), then wall time (desc), then name.
pub fn summary_view(data: &TraceData) -> String {
    let spans = closed_spans(data);
    if spans.is_empty() {
        return "jepo-trace — no spans recorded\n".to_string();
    }
    let mut agg: std::collections::BTreeMap<&str, (u64, u64, f64)> =
        std::collections::BTreeMap::new();
    for s in &spans {
        let name = *s.path.last().unwrap();
        let e = agg.entry(name).or_insert((0, 0, 0.0));
        e.0 += 1;
        e.1 += s.wall_ns;
        e.2 += s.package_j;
    }
    let mut rows: Vec<(&str, u64, u64, f64)> =
        agg.into_iter().map(|(n, (c, w, j))| (n, c, w, j)).collect();
    // `total_cmp`: a NaN joule total (poisoned counter) must still sort
    // deterministically — `partial_cmp(..).unwrap_or(Equal)` makes the
    // row order depend on the comparison sequence.
    rows.sort_by(|a, b| b.3.total_cmp(&a.3).then(b.2.cmp(&a.2)).then(a.0.cmp(b.0)));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, c, w, j)| {
            vec![
                n.to_string(),
                c.to_string(),
                format!("{:.3}", *w as f64 / 1e6),
                format!("{:.3}", j * 1e3),
            ]
        })
        .collect();
    let mut out = String::from("jepo-trace — span summary\n\n");
    out.push_str(&render_table(
        &["Span", "Calls", "Wall (ms)", "Energy (mJ)"],
        &table,
    ));
    out
}

/// Terminal flamegraph: per track, nested spans aggregated by path with
/// an indent per nesting level and a wall-time bar.
pub fn flame_view(data: &TraceData) -> String {
    let spans = closed_spans(data);
    if spans.is_empty() {
        return "jepo-trace — no spans recorded\n".to_string();
    }
    // Aggregate (track, path) → (calls, wall, joules); BTreeMap gives a
    // deterministic walk with parents before children (prefix order).
    let mut agg: std::collections::BTreeMap<(usize, Vec<&str>), (u64, u64, f64)> =
        std::collections::BTreeMap::new();
    for s in &spans {
        let e = agg.entry((s.track, s.path.clone())).or_insert((0, 0, 0.0));
        e.0 += 1;
        e.1 += s.wall_ns;
        e.2 += s.package_j;
    }
    let mut track_order: Vec<usize> = (0..data.tracks.len()).collect();
    track_order.sort_by(|&a, &b| data.tracks[a].cmp(&data.tracks[b]));
    let total_wall: u64 = agg
        .iter()
        .filter(|((_, p), _)| p.len() == 1)
        .map(|(_, (_, w, _))| *w)
        .sum::<u64>()
        .max(1);
    let mut out = String::from("jepo-trace — flame view (wall time, energy)\n");
    for &t in &track_order {
        type FlameRow<'a> = (&'a Vec<&'a str>, &'a (u64, u64, f64));
        let rows: Vec<FlameRow> = agg
            .iter()
            .filter(|((tt, _), _)| *tt == t)
            .map(|((_, p), v)| (p, v))
            .collect();
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "\ntrack {}", data.tracks[t]);
        for (path, (calls, wall, joules)) in rows {
            let frac = *wall as f64 / total_wall as f64;
            let bar_len = (frac * 20.0).round() as usize;
            let bar: String = "#".repeat(bar_len.min(20));
            let _ = writeln!(
                out,
                "  {:<20} {}{} ({}x, {:.3} ms, {:.3} mJ)",
                format!("[{bar:<20}]"),
                "  ".repeat(path.len() - 1),
                path.last().unwrap(),
                calls,
                *wall as f64 / 1e6,
                joules * 1e3
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{span, Tracer};

    fn sample_data() -> TraceData {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("work");
            let mut a = span("outer");
            a.add_joules(2.0);
            {
                let mut b = span("inner");
                b.add_joules(0.5);
            }
        }
        t.data()
    }

    #[test]
    fn chrome_trace_is_one_event_per_line() {
        let json = chrome_trace(&sample_data(), false);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        let events: Vec<&str> = json.lines().filter(|l| l.contains("\"ph\":")).collect();
        // 1 process meta + 1 thread meta + 2 begins + 2 ends.
        assert_eq!(events.len(), 6);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.contains("\"name\":\"work\""), "track name meta");
    }

    #[test]
    fn masked_export_zeroes_timing_only() {
        let data = sample_data();
        let masked = chrome_trace(&data, true);
        assert!(masked.contains("\"ts\":0.000"));
        assert!(masked.contains("\"package_j\":0.000000000"));
        // Content (names, ids, seq) survives masking.
        assert!(masked.contains("\"name\":\"outer\""));
        assert!(masked.contains("\"seq\":0"));
    }

    #[test]
    fn summary_view_aggregates_energy() {
        let view = summary_view(&sample_data());
        assert!(view.contains("Span"), "{view}");
        assert!(view.contains("Energy (mJ)"), "{view}");
        assert!(view.contains("outer"), "{view}");
        assert!(view.contains("2000.000"), "2 J = 2000 mJ:\n{view}");
    }

    #[test]
    fn summary_view_sorts_nan_energy_deterministically() {
        // A span whose joule reading was poisoned (NaN probe delta —
        // `add_joules` clamps, but the probe path doesn't) must land in
        // a fixed position: `total_cmp` puts NaN above every finite
        // total, so the poisoned row leads and is visible, instead of
        // floating wherever the sort's comparison order left it.
        use crate::span::{Event, EventKind};
        let mut events = Vec::new();
        for (i, (id, name, j)) in [(1u64, "alpha", f64::NAN), (2, "beta", 1.0)]
            .into_iter()
            .enumerate()
        {
            events.push(Event {
                track: 0,
                seq: 2 * i as u64,
                ts_ns: 0,
                kind: EventKind::Begin {
                    span_id: id,
                    parent_id: 0,
                    name: name.into(),
                },
            });
            events.push(Event {
                track: 0,
                seq: 2 * i as u64 + 1,
                ts_ns: 0,
                kind: EventKind::End {
                    span_id: id,
                    package_j: j,
                },
            });
        }
        let data = TraceData {
            tracks: vec!["work".into()],
            events,
        };
        let view = summary_view(&data);
        let alpha = view.find("alpha").expect("alpha row");
        let beta = view.find("beta").expect("beta row");
        assert!(alpha < beta, "NaN row sorts first:\n{view}");
        assert!(view.contains("NaN"), "{view}");
    }

    #[test]
    fn flame_view_indents_children() {
        let view = flame_view(&sample_data());
        assert!(view.contains("track work"), "{view}");
        assert!(view.contains("outer"), "{view}");
        assert!(view.contains("  inner"), "child indented:\n{view}");
    }

    #[test]
    fn jsonl_formats_all_metric_kinds() {
        let reg = crate::metrics::Registry::new();
        reg.counter("a.count").add(7);
        reg.gauge("b.gauge").set(1.5);
        reg.histogram("c.hist", &[10, 100]).observe(42);
        let out = metrics_jsonl(&reg.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"metric\":\"a.count\",\"type\":\"counter\",\"value\":7}"
        );
        assert_eq!(
            lines[1],
            "{\"metric\":\"b.gauge\",\"type\":\"gauge\",\"value\":1.5}"
        );
        assert!(lines[2].contains("\"count\":1"), "{}", lines[2]);
        assert!(lines[2].contains("{\"le\":100,\"n\":1}"), "{}", lines[2]);
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_is_always_a_valid_number() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0"); // display drops .0; re-added
        assert_eq!(json_f64(f64::NAN), "0.0");
    }
}
