//! Structural validation of emitted Chrome traces — the `--selfcheck`
//! gate for CI and the telemetry bench.
//!
//! The workspace has no JSON dependency (serde is a no-op shim), so the
//! validator parses the exporter's own line-oriented format: one event
//! object per line inside `traceEvents`. It checks exactly what the
//! acceptance criteria name: balanced begin/end spans, monotone
//! per-thread timestamps, and a nonnegative energy delta on every span.

/// Summary statistics from a validated trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Begin/end event count (metadata excluded).
    pub events: usize,
    /// Completed span count.
    pub spans: usize,
    /// Distinct event tids (= tracks).
    pub tracks: usize,
    /// Sum of every span's energy delta.
    pub total_package_j: f64,
    /// Deepest nesting observed.
    pub max_depth: usize,
    /// Instant (`ph:"i"`) events — profiler sample ticks.
    pub instants: usize,
}

/// Extract a string field (`"key":"value"`) from an event line.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extract a numeric field (`"key":123.45`) from an event line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validate a Chrome trace produced by [`crate::export::chrome_trace`].
///
/// Returns stats on success; a description of the first structural
/// violation otherwise.
pub fn validate_chrome(json: &str) -> Result<TraceStats, String> {
    if !json.trim_start().starts_with("{\"traceEvents\":[") {
        return Err("missing traceEvents envelope".to_string());
    }
    if !json.trim_end().ends_with("]}") {
        return Err("unterminated traceEvents array".to_string());
    }
    // Per-tid open-span stacks and timestamp high-water marks.
    let mut stacks: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
    let mut stats = TraceStats {
        events: 0,
        spans: 0,
        tracks: 0,
        total_package_j: 0.0,
        max_depth: 0,
        instants: 0,
    };
    let mut tids = std::collections::BTreeSet::new();
    for (lineno, line) in json.lines().enumerate() {
        let Some(ph) = str_field(line, "ph") else {
            continue;
        };
        if ph == "M" {
            continue;
        }
        if ph != "B" && ph != "E" && ph != "i" {
            return Err(format!("line {}: unexpected phase `{ph}`", lineno + 1));
        }
        let tid = num_field(line, "tid")
            .ok_or_else(|| format!("line {}: event without tid", lineno + 1))?
            as i64;
        let ts = num_field(line, "ts")
            .ok_or_else(|| format!("line {}: event without ts", lineno + 1))?;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "line {}: tid {tid} timestamp regressed ({ts} < {prev})",
                    lineno + 1
                ));
            }
        }
        last_ts.insert(tid, ts);
        tids.insert(tid);
        if ph == "i" {
            // Sample ticks stand alone: no span stack interaction, but
            // their energy annotation must still be non-negative.
            let energy = num_field(line, "package_j")
                .ok_or_else(|| format!("line {}: instant without package_j", lineno + 1))?;
            if energy < 0.0 {
                return Err(format!(
                    "line {}: negative instant energy {energy}",
                    lineno + 1
                ));
            }
            stats.instants += 1;
            continue;
        }
        let span_id = str_field(line, "span_id")
            .ok_or_else(|| format!("line {}: event without span_id", lineno + 1))?
            .to_string();
        stats.events += 1;
        let stack = stacks.entry(tid).or_default();
        if ph == "B" {
            stack.push(span_id);
            stats.max_depth = stats.max_depth.max(stack.len());
        } else {
            let energy = num_field(line, "package_j")
                .ok_or_else(|| format!("line {}: end event without package_j", lineno + 1))?;
            if energy < 0.0 {
                return Err(format!(
                    "line {}: negative span energy {energy}",
                    lineno + 1
                ));
            }
            match stack.pop() {
                Some(open) if open == span_id => {}
                Some(open) => {
                    return Err(format!(
                        "line {}: end of span {span_id} while {open} is open (unbalanced nesting)",
                        lineno + 1
                    ));
                }
                None => {
                    return Err(format!(
                        "line {}: end of span {span_id} with no span open on tid {tid}",
                        lineno + 1
                    ));
                }
            }
            stats.spans += 1;
            stats.total_package_j += energy;
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never closed: {:?}",
                stack.len(),
                stack
            ));
        }
    }
    stats.tracks = tids.len();
    Ok(stats)
}

/// Zero a numeric field's value in one event line.
fn zero_num(line: &str, key: &str, replacement: &str) -> String {
    let pat = format!("\"{key}\":");
    let Some(start) = line.find(&pat).map(|i| i + pat.len()) else {
        return line.to_string();
    };
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    format!("{}{}{}", &line[..start], replacement, &rest[end..])
}

/// Strip the run-varying fields (`ts`, `package_j`) from an *unmasked*
/// Chrome trace so two runs can be compared for span content alone.
/// A trace exported with `mask_timing = true` is a fixed point.
pub fn masked_content(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    for line in json.lines() {
        if str_field(line, "ph").is_some() {
            let line = zero_num(line, "ts", "0.000");
            let line = zero_num(&line, "package_j", "0.000000000");
            out.push_str(&line);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{span, Tracer};

    fn sample_trace() -> String {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("work");
            let mut a = span("outer");
            a.add_joules(1.0);
            {
                let _b = span("inner");
            }
        }
        {
            let _g = t.track("other");
            let _s = span("solo");
        }
        t.export_chrome(false)
    }

    #[test]
    fn valid_trace_passes_with_stats() {
        let stats = validate_chrome(&sample_trace()).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.events, 6);
        assert_eq!(stats.tracks, 2);
        assert_eq!(stats.max_depth, 2);
        assert!((stats.total_package_j - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_trace_is_rejected() {
        let json = sample_trace();
        // Drop the last end event: some span never closes.
        let mut lines: Vec<&str> = json.lines().collect();
        let last_end = lines
            .iter()
            .rposition(|l| l.contains("\"ph\":\"E\""))
            .unwrap();
        lines.remove(last_end);
        let broken = lines.join("\n");
        let err = validate_chrome(&broken).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn timestamp_regression_is_rejected() {
        let json = sample_trace();
        // Force the final event's ts to 0 — regresses unless already 0.
        let mut lines: Vec<String> = json.lines().map(String::from).collect();
        let last_end = lines
            .iter()
            .rposition(|l| l.contains("\"ph\":\"E\""))
            .unwrap();
        lines[last_end] = zero_num(&lines[last_end], "ts", "-1.0");
        let err = validate_chrome(&lines.join("\n")).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn negative_energy_is_rejected() {
        let json = sample_trace();
        let mut lines: Vec<String> = json.lines().map(String::from).collect();
        let end = lines
            .iter()
            .position(|l| l.contains("\"ph\":\"E\""))
            .unwrap();
        lines[end] = zero_num(&lines[end], "package_j", "-0.5");
        let err = validate_chrome(&lines.join("\n")).unwrap_err();
        assert!(err.contains("negative"), "{err}");
    }

    #[test]
    fn instants_validate_and_count() {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("samples");
            let _s = span("run");
            crate::span::instant("tick", 0.25);
            crate::span::instant("tick", 0.5);
        }
        let json = t.export_chrome(false);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
        let stats = validate_chrome(&json).unwrap();
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.spans, 1);
        // Masking applies to instants too, and stays valid.
        let masked = masked_content(&json);
        assert!(validate_chrome(&masked).is_ok());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{\"traceEvents\":[").is_err());
    }

    #[test]
    fn masking_agrees_with_the_exporters_masked_mode() {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.track("work");
            let mut s = span("step");
            s.add_joules(0.25);
        }
        let unmasked = t.export_chrome(false);
        let masked = t.export_chrome(true);
        assert_eq!(masked_content(&unmasked), masked_content(&masked));
        assert_eq!(masked_content(&masked), masked);
    }
}
