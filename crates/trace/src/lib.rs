//! # jepo-trace — the telemetry spine of the reproduction.
//!
//! The paper's contribution is *measurement*: per-method energy read
//! from RAPL by injected probes. This crate turns the same idea on the
//! reproduction itself. Every layer (pool, VM, analyzer, harness) opens
//! [`span`]s on named *tracks*; closing a span records wall time plus an
//! energy delta read wrap-safely from the active RAPL backend through an
//! [`EnergyProbe`]. A [`metrics::Registry`] collects counters, gauges
//! and fixed-bucket histograms on a striped lock-free hot path (the
//! PR-2 scoreboard pattern). Exporters produce Chrome trace-event JSON
//! (loadable in `about:tracing` / Perfetto), a terminal summary/flame
//! view in the Fig. 1–5 table style, and a JSONL metrics dump.
//!
//! ## Determinism contract
//!
//! Spans belong to *tracks* — logical work units ("table4",
//! "row/Naive Bayes", "file/NaiveBayes.java") rather than OS threads.
//! `jepo-pool` self-schedules each work item onto exactly one worker and
//! runs it contiguously, so a track is only ever appended to by one
//! thread at a time. Span IDs and per-track sequence numbers derive from
//! the track name and arrival order *within the track*, and the exporter
//! orders tracks by name — so exported span content (names, IDs,
//! parents, ordering) is bit-identical for any `--jobs` value; only
//! timestamps and energy vary ([`validate::masked_content`] strips
//! those for exact comparisons).
//!
//! ## Overhead contract
//!
//! With tracing disabled (the default), [`span`] is a thread-local read
//! plus a branch and takes no locks; instrumentation sites sit at coarse
//! boundaries (per worker, per file, per run), never per-op. The
//! `bench --bin telemetry` selfcheck enforces this stays
//! indistinguishable from zero on the kernel microbench.

pub mod export;
pub mod metrics;
pub mod span;
pub mod validate;

pub use metrics::{
    Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Registry, COUNT_BUCKETS,
    TIME_NS_BUCKETS,
};
pub use span::{
    active, bind_probe, instant, span, track, would_trace, EnergyProbe, ProbeGuard, SpanGuard,
    TraceData, Tracer, TrackGuard,
};
