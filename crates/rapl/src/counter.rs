//! Wrapping 32-bit energy counters and wrap-correct interval readers.
//!
//! RAPL energy-status counters are 32-bit and wrap roughly hourly at
//! laptop TDP (see [`crate::RaplUnits::wrap_seconds_at`]). The paper's
//! evaluation repeats each classifier run ten times with outlier
//! replacement, easily spanning a wrap, so interval measurement must be
//! wrap-correct.

use crate::RaplUnits;

/// A simulated hardware energy counter for one domain.
///
/// Internally accumulates exact joules; exposes the truncated, wrapping
/// 32-bit raw view that real hardware exposes. Sub-unit residue is kept
/// (real RAPL accumulates energy in internal precision and exposes
/// quantized counts).
#[derive(Debug, Clone)]
pub struct EnergyCounter {
    units: RaplUnits,
    /// Total joules ever added (never wraps; simulator-internal).
    total_joules: f64,
    /// Raw counter offset at construction, so fresh counters don't all
    /// start at zero (real counters never do).
    start_offset: u32,
}

impl EnergyCounter {
    /// Create a counter with the given units, starting at `start_offset`
    /// raw counts (use a nonzero offset in tests to catch code that
    /// assumes counters start at zero).
    pub fn new(units: RaplUnits, start_offset: u32) -> Self {
        EnergyCounter {
            units,
            total_joules: 0.0,
            start_offset,
        }
    }

    /// Accrue energy.
    pub fn add_joules(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0, "energy cannot decrease");
        self.total_joules += joules.max(0.0);
    }

    /// Total joules accrued since construction (simulator-internal view;
    /// not available on real hardware).
    pub fn total_joules(&self) -> f64 {
        self.total_joules
    }

    /// The raw, wrapping 32-bit counter value — exactly what a
    /// `rdmsr` of the energy-status MSR returns.
    pub fn read_raw(&self) -> u32 {
        let counts = self.units.joules_to_raw(self.total_joules);
        (self.start_offset as u64).wrapping_add(counts) as u32
    }

    /// The units this counter is quantized in.
    pub fn units(&self) -> RaplUnits {
        self.units
    }
}

/// Wrap-correct interval reader over raw 32-bit counter samples.
///
/// Feed it successive raw readings; it accumulates total joules assuming
/// at most one wrap between consecutive samples (guaranteed if sampled
/// more often than [`crate::RaplUnits::wrap_seconds_at`]).
#[derive(Debug, Clone)]
pub struct CounterReader {
    units: RaplUnits,
    last_raw: Option<u32>,
    accumulated_joules: f64,
    wraps_observed: u64,
}

impl CounterReader {
    /// Create a reader; the first [`CounterReader::update`] call
    /// establishes the baseline and contributes no energy.
    pub fn new(units: RaplUnits) -> Self {
        CounterReader {
            units,
            last_raw: None,
            accumulated_joules: 0.0,
            wraps_observed: 0,
        }
    }

    /// Feed a new raw sample; returns the joules elapsed since the
    /// previous sample (0.0 for the first).
    pub fn update(&mut self, raw: u32) -> f64 {
        let delta_counts = match self.last_raw {
            None => 0u64,
            Some(prev) => {
                if raw >= prev {
                    (raw - prev) as u64
                } else {
                    // Counter wrapped: distance through the wrap point.
                    self.wraps_observed += 1;
                    (raw as u64) + (u32::MAX as u64 + 1) - prev as u64
                }
            }
        };
        self.last_raw = Some(raw);
        let joules = self.units.raw_to_joules(delta_counts);
        self.accumulated_joules += joules;
        joules
    }

    /// Total joules accumulated across all updates.
    pub fn total_joules(&self) -> f64 {
        self.accumulated_joules
    }

    /// Number of counter wraps handled.
    pub fn wraps_observed(&self) -> u64 {
        self.wraps_observed
    }

    /// Reset accumulation, keeping the last sample as the new baseline.
    pub fn reset(&mut self) {
        self.accumulated_joules = 0.0;
        self.wraps_observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn units() -> RaplUnits {
        RaplUnits::default()
    }

    #[test]
    fn counter_quantizes_to_hardware_units() {
        let mut c = EnergyCounter::new(units(), 0);
        // Half an energy unit: raw view must still read 0.
        c.add_joules(units().joules_per_count() / 2.0);
        assert_eq!(c.read_raw(), 0);
        // Another half: now exactly one count.
        c.add_joules(units().joules_per_count() / 2.0);
        assert_eq!(c.read_raw(), 1);
    }

    #[test]
    fn counter_wraps_at_32_bits() {
        let offset = u32::MAX - 1;
        let mut c = EnergyCounter::new(units(), offset);
        c.add_joules(units().raw_to_joules(3));
        assert_eq!(c.read_raw(), 1); // (MAX-1) + 3 wraps to 1
    }

    #[test]
    fn reader_handles_single_wrap() {
        let mut r = CounterReader::new(units());
        r.update(u32::MAX - 10);
        let j = r.update(5); // wrapped: 16 counts elapsed
        assert!((j - units().raw_to_joules(16)).abs() < 1e-12);
        assert_eq!(r.wraps_observed(), 1);
    }

    #[test]
    fn reader_first_sample_contributes_nothing() {
        let mut r = CounterReader::new(units());
        assert_eq!(r.update(123456), 0.0);
        assert_eq!(r.total_joules(), 0.0);
    }

    #[test]
    fn reader_reset_keeps_baseline() {
        let mut r = CounterReader::new(units());
        r.update(100);
        r.update(200);
        r.reset();
        assert_eq!(r.total_joules(), 0.0);
        let j = r.update(300);
        assert!((j - units().raw_to_joules(100)).abs() < 1e-12);
    }

    #[test]
    fn reader_tracks_counter_through_many_wraps() {
        // Simulate a long run: add energy in chunks, sample often enough
        // that at most one wrap occurs per sample; reader total must match
        // the counter's exact total to within quantization.
        let mut c = EnergyCounter::new(units(), 0xDEAD_BEEF);
        let mut r = CounterReader::new(units());
        r.update(c.read_raw());
        let chunk = units().raw_to_joules(u32::MAX as u64 / 3);
        for _ in 0..10 {
            c.add_joules(chunk);
            r.update(c.read_raw());
        }
        let expect = chunk * 10.0;
        assert!(r.wraps_observed() >= 2);
        assert!((r.total_joules() - expect).abs() < units().joules_per_count() * 11.0);
    }

    proptest! {
        #[test]
        fn reader_total_matches_counter_total(
            offset: u32,
            chunks in proptest::collection::vec(0.0f64..50_000.0, 1..50),
        ) {
            let mut c = EnergyCounter::new(units(), offset);
            let mut r = CounterReader::new(units());
            r.update(c.read_raw());
            let mut exact = 0.0;
            for j in chunks {
                c.add_joules(j);
                exact += j;
                r.update(c.read_raw());
            }
            // Each sample can lose at most one unit to quantization.
            prop_assert!((r.total_joules() - exact).abs()
                < units().joules_per_count() * 51.0 + exact * 1e-12);
        }

        #[test]
        fn energy_is_monotone_in_raw_view_modulo_wrap(
            adds in proptest::collection::vec(0.0f64..10.0, 1..20)
        ) {
            // Short additions (< wrap interval): each raw reading advances
            // by the quantized amount, never decreases unless wrapping.
            let mut c = EnergyCounter::new(units(), 0);
            let mut prev = c.read_raw();
            for j in adds {
                c.add_joules(j);
                let now = c.read_raw();
                prop_assert!(now >= prev, "no wrap possible for small adds");
                prev = now;
            }
        }

        #[test]
        fn reader_is_wrap_correct_across_the_u32_boundary(
            below in 1u32..1_000,
            chunks in proptest::collection::vec(1u64..5_000, 1..20),
        ) {
            // Start the raw counter just below the wrap point so small
            // additions force a crossing, and check the reader both
            // detects the wrap exactly when the boundary is crossed and
            // loses at most quantization error through it.
            let u = units();
            let mut c = EnergyCounter::new(u, u32::MAX - below);
            let mut r = CounterReader::new(u);
            r.update(c.read_raw());
            let mut exact_counts = 0u64;
            for counts in chunks {
                c.add_joules(u.raw_to_joules(counts));
                exact_counts += counts;
                r.update(c.read_raw());
            }
            let expected_wraps = u64::from(exact_counts > below as u64);
            prop_assert_eq!(r.wraps_observed(), expected_wraps);
            // Per-sample floors telescope: total error ≤ one count.
            prop_assert!(
                (r.total_joules() - u.raw_to_joules(exact_counts)).abs()
                    <= u.joules_per_count() * 2.0,
                "reader {} vs exact {}",
                r.total_joules(),
                u.raw_to_joules(exact_counts)
            );
        }
    }
}
