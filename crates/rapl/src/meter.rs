//! The measurement-level abstraction consumed by the profiler.
//!
//! [`EnergyMeter`] is what JEPO's injected probes call at method entry and
//! exit: "give me a reading now". A reading carries per-domain joules and
//! a timestamp; two readings difference into a [`Measurement`].

use crate::{Domain, MsrDevice, SimulatedRapl};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One instantaneous sample of all domains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReading {
    /// Package-domain joules since meter epoch.
    pub package_j: f64,
    /// Core (PP0) joules since meter epoch.
    pub core_j: f64,
    /// Uncore (PP1) joules since meter epoch.
    pub uncore_j: f64,
    /// DRAM joules since meter epoch (0 when unsupported).
    pub dram_j: f64,
    /// Seconds since meter epoch.
    pub seconds: f64,
}

impl EnergyReading {
    /// Component-wise `self - start`: the interval measurement.
    pub fn since(&self, start: &EnergyReading) -> Measurement {
        Measurement {
            package_j: self.package_j - start.package_j,
            core_j: self.core_j - start.core_j,
            uncore_j: self.uncore_j - start.uncore_j,
            dram_j: self.dram_j - start.dram_j,
            seconds: self.seconds - start.seconds,
        }
    }
}

/// An interval measurement: joules per domain plus elapsed time —
/// exactly the columns of the paper's Table IV ("Package", "CPU",
/// "Execution Time").
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// Package joules over the interval.
    pub package_j: f64,
    /// Core joules over the interval.
    pub core_j: f64,
    /// Uncore joules over the interval.
    pub uncore_j: f64,
    /// DRAM joules over the interval.
    pub dram_j: f64,
    /// Interval duration in seconds.
    pub seconds: f64,
}

impl Measurement {
    /// Average package power over the interval, watts.
    pub fn avg_package_watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.package_j / self.seconds
        } else {
            0.0
        }
    }

    /// Sum of two measurements (for aggregating per-method records).
    pub fn accumulate(&mut self, other: &Measurement) {
        self.package_j += other.package_j;
        self.core_j += other.core_j;
        self.uncore_j += other.uncore_j;
        self.dram_j += other.dram_j;
        self.seconds += other.seconds;
    }

    /// Percentage improvement of `optimized` relative to `self` (the
    /// baseline) in package energy: `(base - opt) / base × 100`.
    /// This is the formula behind every improvement column in Table IV.
    pub fn improvement_pct(base: f64, optimized: f64) -> f64 {
        if base == 0.0 {
            0.0
        } else {
            (base - optimized) / base * 100.0
        }
    }
}

/// Anything the profiler can read energy from.
pub trait EnergyMeter: Send + Sync {
    /// Take a reading now.
    fn read(&self) -> EnergyReading;

    /// Convenience: measure a closure as a single interval.
    fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Measurement)
    where
        Self: Sized,
    {
        let start = self.read();
        let out = f();
        let end = self.read();
        (out, end.since(&start))
    }
}

/// Meter over a [`SimulatedRapl`] device.
///
/// Uses the simulator's exact internal joules (not the quantized raw
/// counters) — equivalent to a wrap-correct [`crate::CounterReader`] per
/// domain, without the sampling constraint. The raw-counter path is
/// exercised separately by the register-level tests.
#[derive(Debug, Clone)]
pub struct SimMeter {
    sim: Arc<SimulatedRapl>,
}

impl SimMeter {
    /// Wrap a simulated device.
    pub fn new(sim: Arc<SimulatedRapl>) -> SimMeter {
        SimMeter { sim }
    }

    /// Access the underlying device.
    pub fn device(&self) -> &SimulatedRapl {
        &self.sim
    }
}

impl EnergyMeter for SimMeter {
    fn read(&self) -> EnergyReading {
        EnergyReading {
            package_j: self.sim.read_joules(Domain::Package),
            core_j: self.sim.read_joules(Domain::Core),
            uncore_j: self.sim.read_joules(Domain::Uncore),
            dram_j: self.sim.read_joules(Domain::Dram),
            seconds: self.sim.clock_seconds(),
        }
    }
}

/// A meter reading through the *register* interface (raw wrapping
/// counters + unit decoding), for any [`MsrDevice`]. This is the exact
/// code path the paper's injected reader uses against `/dev/cpu/*/msr`,
/// so it works unchanged against real hardware.
pub struct MsrMeter<D: MsrDevice> {
    device: D,
    epoch: std::sync::Mutex<MsrEpoch>,
}

struct MsrEpoch {
    readers: Vec<(Domain, crate::CounterReader)>,
    start: std::time::Instant,
}

impl<D: MsrDevice> MsrMeter<D> {
    /// Create a meter; domains that error on first read are skipped.
    pub fn new(device: D) -> Result<Self, crate::RaplError> {
        let units = device.units()?;
        let mut readers = Vec::new();
        for d in Domain::ALL {
            if let Ok(raw) = device.read_energy_raw(d) {
                let mut r = crate::CounterReader::new(units);
                r.update(raw);
                readers.push((d, r));
            }
        }
        if readers.is_empty() {
            return Err(crate::RaplError::BackendUnavailable(
                "no readable RAPL domains".into(),
            ));
        }
        Ok(MsrMeter {
            device,
            epoch: std::sync::Mutex::new(MsrEpoch {
                readers,
                start: std::time::Instant::now(),
            }),
        })
    }
}

impl<D: MsrDevice> EnergyMeter for MsrMeter<D> {
    fn read(&self) -> EnergyReading {
        let mut ep = self.epoch.lock().unwrap();
        let seconds = ep.start.elapsed().as_secs_f64();
        let mut reading = EnergyReading {
            package_j: 0.0,
            core_j: 0.0,
            uncore_j: 0.0,
            dram_j: 0.0,
            seconds,
        };
        for (d, r) in ep.readers.iter_mut() {
            if let Ok(raw) = self.device.read_energy_raw(*d) {
                r.update(raw);
            }
            let j = r.total_joules();
            match d {
                Domain::Package | Domain::Psys => reading.package_j = j,
                Domain::Core => reading.core_j = j,
                Domain::Uncore => reading.uncore_j = j,
                Domain::Dram => reading.dram_j = j,
            }
        }
        reading
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceProfile;

    fn sim() -> Arc<SimulatedRapl> {
        Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()))
    }

    #[test]
    fn sim_meter_measures_interval() {
        let s = sim();
        let m = SimMeter::new(s.clone());
        let start = m.read();
        s.add_dynamic_energy(3.0);
        s.advance_seconds(2.0);
        let iv = m.read().since(&start);
        // 3 J dynamic + 3.2 W × 2 s idle
        assert!((iv.package_j - (3.0 + 6.4)).abs() < 1e-9);
        assert!((iv.seconds - 2.0).abs() < 1e-12);
        assert!(iv.core_j > 0.0 && iv.core_j < iv.package_j);
    }

    #[test]
    fn measure_closure_brackets_work() {
        let s = sim();
        let m = SimMeter::new(s.clone());
        let (out, iv) = m.measure(|| {
            s.add_dynamic_energy(1.5);
            42
        });
        assert_eq!(out, 42);
        assert!((iv.package_j - 1.5).abs() < 1e-9);
    }

    #[test]
    fn avg_power_is_energy_over_time() {
        let mv = Measurement {
            package_j: 10.0,
            seconds: 2.0,
            ..Default::default()
        };
        assert!((mv.avg_package_watts() - 5.0).abs() < 1e-12);
        let zero = Measurement::default();
        assert_eq!(zero.avg_package_watts(), 0.0);
    }

    #[test]
    fn improvement_pct_matches_table4_formula() {
        // Random Forest: baseline 100 J → optimized 85.54 J = 14.46%.
        let pct = Measurement::improvement_pct(100.0, 85.54);
        assert!((pct - 14.46).abs() < 1e-9);
        assert_eq!(Measurement::improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let mut a = Measurement {
            package_j: 1.0,
            core_j: 0.5,
            uncore_j: 0.1,
            dram_j: 0.0,
            seconds: 2.0,
        };
        a.accumulate(&Measurement {
            package_j: 2.0,
            core_j: 1.0,
            uncore_j: 0.2,
            dram_j: 0.0,
            seconds: 3.0,
        });
        assert!((a.package_j - 3.0).abs() < 1e-12);
        assert!((a.seconds - 5.0).abs() < 1e-12);
    }

    #[test]
    fn msr_meter_reads_through_registers() {
        let s = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
        let meter = MsrMeter::new(s.clone()).expect("sim always has domains");
        let r0 = meter.read();
        s.add_dynamic_energy(2.0);
        let r1 = meter.read();
        let iv = r1.since(&r0);
        // Quantization to hardware units loses < 1 count per domain.
        assert!((iv.package_j - 2.0).abs() < 1e-3, "got {}", iv.package_j);
        assert!((iv.core_j - 1.64).abs() < 1e-3);
    }

    #[test]
    fn msr_meter_skips_missing_domains() {
        let s = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
        let meter = MsrMeter::new(s).unwrap();
        let r = meter.read();
        assert_eq!(r.dram_j, 0.0, "client part exposes no DRAM domain");
    }
}
