//! # jepo-rapl — RAPL energy-measurement substrate
//!
//! The paper's profiler reads Intel *Running Average Power Limit* (RAPL)
//! machine-specific registers (MSRs) at method entry and exit to attribute
//! energy to Java methods, and uses the Linux `perf` tool (which reads the
//! same counters) for the WEKA evaluation. This crate reproduces that
//! substrate in three layers:
//!
//! 1. **Register level** ([`msr`], [`units`], [`counter`]) — the RAPL MSR
//!    address map, the `MSR_RAPL_POWER_UNIT` bit-field decoding, and the
//!    32-bit wrapping energy-status counters, bit-accurate to the Intel SDM
//!    so that code written against real MSRs works unchanged against the
//!    simulator.
//! 2. **Device level** ([`sim`], [`hw`], [`power`]) — a simulated RAPL
//!    package driven by an activity-based power model, plus best-effort
//!    real backends (`/sys/class/powercap`, `/dev/cpu/*/msr`) used when the
//!    host actually exposes RAPL.
//! 3. **Measurement level** ([`meter`], [`activity`], [`perf`]) — the
//!    `EnergyMeter` abstraction the profiler consumes, the operation-count
//!    cost model that converts instrumented work into joules, and a
//!    `perf stat`-style repeated-measurement harness.
//!
//! ## Why a simulator?
//!
//! Reading RAPL MSRs requires ring-0 access (or the `powercap` sysfs tree),
//! which is unavailable in most containers and on non-Intel hosts. The
//! simulator preserves every property the paper's tooling depends on:
//! energy is monotone, counters wrap at 32 bits, readings are in hardware
//! units that must be scaled by `MSR_RAPL_POWER_UNIT`, and the package
//! domain dominates core + uncore + DRAM. Dynamic energy accrues from the
//! *work the profiled program actually performs* (instruction counts fed
//! through [`activity::CostModel`]), so relative comparisons — the only
//! quantity the paper reports — are meaningful.
//!
//! ## Quick example
//!
//! ```
//! use jepo_rapl::{SimulatedRapl, Domain, power::DeviceProfile};
//! use std::time::Duration;
//!
//! let rapl = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
//! let before = rapl.read_joules(Domain::Package);
//! rapl.advance_time(Duration::from_millis(100)); // idle power accrues
//! rapl.add_dynamic_energy(0.5);                  // work performed
//! let after = rapl.read_joules(Domain::Package);
//! assert!(after > before);
//! ```

pub mod activity;
pub mod counter;
pub mod domain;
pub mod error;
pub mod hw;
pub mod meter;
pub mod msr;
pub mod perf;
pub mod power;
pub mod probe;
pub mod sampler;
pub mod sim;
pub mod units;

pub use activity::{CostModel, OpCategory, OpCounter, OpSnapshot, Scoreboard};
pub use counter::{CounterReader, EnergyCounter};
pub use domain::Domain;
pub use error::RaplError;
pub use meter::{EnergyMeter, EnergyReading, Measurement, SimMeter};
pub use msr::MsrDevice;
pub use perf::EnergyStat;
pub use power::DeviceProfile;
pub use probe::CounterProbe;
pub use sampler::{PowerSample, Sampler};
pub use sim::SimulatedRapl;
pub use units::RaplUnits;
