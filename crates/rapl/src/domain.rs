//! RAPL power domains.
//!
//! RAPL exposes energy counters per *domain*. The paper measures the
//! **package** domain (its injected reader) and reports both package and
//! "CPU" (core, i.e. PP0) improvements in Table IV, so both must be modelled.

use serde::{Deserialize, Serialize};

/// A RAPL power domain.
///
/// The hierarchy on client parts (like the paper's i5-3317U, an Ivy Bridge
/// mobile CPU) is:
///
/// ```text
/// Package ⊇ { Core (PP0), Uncore (PP1/graphics) } ; Dram is separate
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Domain {
    /// Whole processor package: cores, caches, integrated graphics,
    /// memory controller. This is what `perf stat -e power/energy-pkg/`
    /// and the paper's "Package" column report.
    Package,
    /// Power plane 0: the CPU cores. The paper's "CPU energy" column.
    Core,
    /// Power plane 1: uncore / integrated graphics (client parts only).
    Uncore,
    /// DRAM domain (server parts and some mobile parts).
    Dram,
    /// Platform (PSys) domain, Skylake and later. Not present on the
    /// paper's Ivy Bridge machine; included for completeness and used by
    /// the edge-device profiles.
    Psys,
}

impl Domain {
    /// All domains, in MSR-address order.
    pub const ALL: [Domain; 5] = [
        Domain::Package,
        Domain::Core,
        Domain::Uncore,
        Domain::Dram,
        Domain::Psys,
    ];

    /// Domains available on a client (laptop) part such as the paper's
    /// i5-3317U: package, core, uncore. DRAM RAPL is not exposed there.
    pub const CLIENT: [Domain; 3] = [Domain::Package, Domain::Core, Domain::Uncore];

    /// Human-readable name matching the `powercap` sysfs naming.
    pub fn sysfs_name(self) -> &'static str {
        match self {
            Domain::Package => "package-0",
            Domain::Core => "core",
            Domain::Uncore => "uncore",
            Domain::Dram => "dram",
            Domain::Psys => "psys",
        }
    }

    /// The MSR holding this domain's energy-status counter.
    pub fn energy_status_msr(self) -> u32 {
        match self {
            Domain::Package => crate::msr::MSR_PKG_ENERGY_STATUS,
            Domain::Core => crate::msr::MSR_PP0_ENERGY_STATUS,
            Domain::Uncore => crate::msr::MSR_PP1_ENERGY_STATUS,
            Domain::Dram => crate::msr::MSR_DRAM_ENERGY_STATUS,
            Domain::Psys => crate::msr::MSR_PLATFORM_ENERGY_STATUS,
        }
    }

    /// Inverse of [`Domain::energy_status_msr`].
    pub fn from_energy_status_msr(addr: u32) -> Option<Domain> {
        Domain::ALL
            .into_iter()
            .find(|d| d.energy_status_msr() == addr)
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Domain::Package => "package",
            Domain::Core => "core",
            Domain::Uncore => "uncore",
            Domain::Dram => "dram",
            Domain::Psys => "psys",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msr_roundtrip() {
        for d in Domain::ALL {
            assert_eq!(
                Domain::from_energy_status_msr(d.energy_status_msr()),
                Some(d)
            );
        }
    }

    #[test]
    fn unknown_msr_is_none() {
        assert_eq!(Domain::from_energy_status_msr(0x0), None);
        assert_eq!(Domain::from_energy_status_msr(0x606), None); // unit MSR, not a counter
    }

    #[test]
    fn client_set_is_subset_of_all() {
        for d in Domain::CLIENT {
            assert!(Domain::ALL.contains(&d));
        }
        assert!(!Domain::CLIENT.contains(&Domain::Dram));
    }

    #[test]
    fn display_and_sysfs_names_are_stable() {
        assert_eq!(Domain::Package.to_string(), "package");
        assert_eq!(Domain::Package.sysfs_name(), "package-0");
        assert_eq!(Domain::Core.sysfs_name(), "core");
    }
}
