//! Activity-based energy accounting: operation categories, cost models,
//! and lock-free operation counters.
//!
//! Real RAPL integrates the power drawn by the instructions a program
//! executes. The simulator gets the same signal explicitly: instrumented
//! code (the bytecode VM, or the ML layer's numeric kernels) counts
//! operations by category into an [`OpCounter`], and a [`CostModel`]
//! converts counts into joules which are flushed to the simulated device.
//!
//! The default cost model is **calibrated against Table I of the paper**:
//! the per-category ratios reproduce the paper's reported worst-case
//! component ratios (e.g. modulus ≈ 17× a plain ALU op, static variable
//! access ≈ 178× an instance field access, string `+` ≈ 9× a
//! `StringBuilder.append`). Absolute values are nanojoule-scale figures
//! plausible for an interpreted JVM on a laptop-class core; the paper only
//! reports ratios, so only ratios matter.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Categories of work instrumented code may report.
///
/// One counter slot exists per category; categories deliberately mirror
/// the Java components of Table I so the microbenchmarks of
/// `bench --bin table1` can exercise them one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum OpCategory {
    /// 32-bit integer add/sub/bitwise/compare.
    IntAlu,
    /// 64-bit integer add/sub/bitwise/compare.
    LongAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Integer remainder (`%`) — the paper's most expensive operator.
    Modulus,
    /// 32-bit float add/sub.
    FloatAlu,
    /// 64-bit float add/sub.
    DoubleAlu,
    /// 32-bit float multiply.
    FloatMul,
    /// 64-bit float multiply.
    DoubleMul,
    /// 32-bit float divide.
    FloatDiv,
    /// 64-bit float divide.
    DoubleDiv,
    /// Narrow-type (byte/short/char) ALU op — costs more than `int` on a
    /// JVM because of mandatory widening/narrowing, per Table I's
    /// "int is the most energy-efficient primitive".
    NarrowAlu,
    /// Load from memory that hits cache.
    Load,
    /// Store to memory.
    Store,
    /// A cache miss (modelled by the VM's cache simulator; column-major
    /// traversal of a 2-D array generates many of these — Table I's 793%).
    CacheMiss,
    /// Conditional branch, predicted.
    Branch,
    /// Ternary/conditional-move style select — costlier than a plain
    /// branch in the paper's measurements (+37%).
    Select,
    /// Method invocation.
    Call,
    /// Method return.
    Return,
    /// Object allocation.
    Alloc,
    /// Boxing a primitive into a wrapper object.
    Box,
    /// Unboxing a wrapper.
    Unbox,
    /// Non-`Integer` wrapper overhead surcharge (Table I: Integer is the
    /// most efficient wrapper).
    WrapperSurcharge,
    /// Instance field read/write.
    FieldAccess,
    /// `static` field read/write — the paper's 17,700% outlier.
    StaticAccess,
    /// Array element access bounds-check + address computation.
    ArrayIndex,
    /// Manual element-by-element array copy (per element).
    ArrayCopyElem,
    /// Bulk `System.arraycopy` (per element).
    ArrayCopyBulk,
    /// `String` `+` concatenation (per operation).
    StringConcat,
    /// `StringBuilder.append` (per operation).
    SbAppend,
    /// `String.equals` (per call).
    StringEquals,
    /// `String.compareTo` (per call) — 33% over `equals`.
    StringCompareTo,
    /// Loading a plain decimal literal constant.
    ConstDecimal,
    /// Loading a scientific-notation decimal literal constant — cheaper
    /// per Table I ("scientific notation results in lower energy").
    ConstScientific,
    /// Constructing + throwing an exception.
    ExceptionThrow,
    /// Entering a `try` region (cheap).
    TryEnter,
}

impl OpCategory {
    /// Every category, in discriminant order.
    pub const ALL: [OpCategory; 36] = [
        OpCategory::IntAlu,
        OpCategory::LongAlu,
        OpCategory::IntMul,
        OpCategory::IntDiv,
        OpCategory::Modulus,
        OpCategory::FloatAlu,
        OpCategory::DoubleAlu,
        OpCategory::FloatMul,
        OpCategory::DoubleMul,
        OpCategory::FloatDiv,
        OpCategory::DoubleDiv,
        OpCategory::NarrowAlu,
        OpCategory::Load,
        OpCategory::Store,
        OpCategory::CacheMiss,
        OpCategory::Branch,
        OpCategory::Select,
        OpCategory::Call,
        OpCategory::Return,
        OpCategory::Alloc,
        OpCategory::Box,
        OpCategory::Unbox,
        OpCategory::WrapperSurcharge,
        OpCategory::FieldAccess,
        OpCategory::StaticAccess,
        OpCategory::ArrayIndex,
        OpCategory::ArrayCopyElem,
        OpCategory::ArrayCopyBulk,
        OpCategory::StringConcat,
        OpCategory::SbAppend,
        OpCategory::StringEquals,
        OpCategory::StringCompareTo,
        OpCategory::ConstDecimal,
        OpCategory::ConstScientific,
        OpCategory::ExceptionThrow,
        OpCategory::TryEnter,
    ];

    /// Number of categories (size of counter arrays).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index of this category.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Joules-per-operation table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Nanojoules per operation, indexed by [`OpCategory::index`].
    nanojoules: Vec<f64>,
}

impl CostModel {
    /// The paper-calibrated model (see module docs for provenance).
    pub fn paper_calibrated() -> CostModel {
        let mut nj = vec![0.0; OpCategory::COUNT];
        let mut set = |c: OpCategory, v: f64| nj[c.index()] = v;
        set(OpCategory::IntAlu, 1.0);
        set(OpCategory::LongAlu, 1.7);
        set(OpCategory::IntMul, 3.0);
        set(OpCategory::IntDiv, 14.0);
        // "Modulus consumes up to 1,620% more energy than other
        // arithmetic operators" → 17.2× the IntAlu baseline.
        set(OpCategory::Modulus, 17.2);
        set(OpCategory::FloatAlu, 1.8);
        set(OpCategory::DoubleAlu, 2.2);
        set(OpCategory::FloatMul, 3.0);
        set(OpCategory::DoubleMul, 3.6);
        set(OpCategory::FloatDiv, 16.0);
        set(OpCategory::DoubleDiv, 20.0);
        set(OpCategory::NarrowAlu, 1.55);
        set(OpCategory::Load, 1.2);
        set(OpCategory::Store, 1.5);
        // DRAM access energy dwarfs an ALU op; this drives the 793%
        // column-traversal penalty through the VM's cache model.
        set(OpCategory::CacheMiss, 62.0);
        set(OpCategory::Branch, 0.8);
        // "Ternary operator consumes up to 37% more energy than
        // if-then-else statement": calibrated so a whole ternary
        // assignment (load + compare + branch + const + join + store)
        // costs ≈ 1.37× the equivalent if-then-else statement.
        set(OpCategory::Select, 1.9);
        set(OpCategory::Call, 6.0);
        set(OpCategory::Return, 3.0);
        set(OpCategory::Alloc, 42.0);
        set(OpCategory::Box, 26.0);
        set(OpCategory::Unbox, 7.0);
        set(OpCategory::WrapperSurcharge, 9.0);
        set(OpCategory::FieldAccess, 1.4);
        // "static keyword consumes up to 17,700% more energy" → 178×
        // an instance field access.
        set(OpCategory::StaticAccess, 1.4 * 178.0);
        set(OpCategory::ArrayIndex, 1.1);
        set(OpCategory::ArrayCopyElem, 2.6);
        set(OpCategory::ArrayCopyBulk, 0.35);
        set(OpCategory::StringConcat, 230.0);
        set(OpCategory::SbAppend, 26.0);
        set(OpCategory::StringEquals, 12.0);
        // "compareTo consumes up to 33% more energy than equals".
        set(OpCategory::StringCompareTo, 16.0);
        set(OpCategory::ConstDecimal, 1.9);
        set(OpCategory::ConstScientific, 1.3);
        set(OpCategory::ExceptionThrow, 640.0);
        set(OpCategory::TryEnter, 0.2);
        CostModel { nanojoules: nj }
    }

    /// A uniform model (every op costs `nj` nanojoules) — useful as an
    /// ablation baseline showing how much of Table IV's improvement
    /// depends on cost heterogeneity.
    pub fn uniform(nj: f64) -> CostModel {
        CostModel {
            nanojoules: vec![nj; OpCategory::COUNT],
        }
    }

    /// Nanojoules for one operation of `cat`.
    #[inline]
    pub fn nanojoules(&self, cat: OpCategory) -> f64 {
        self.nanojoules[cat.index()]
    }

    /// Override one category's cost (for calibration sweeps).
    pub fn set_nanojoules(&mut self, cat: OpCategory, nj: f64) {
        assert!(nj >= 0.0);
        self.nanojoules[cat.index()] = nj;
    }

    /// Joules for a full counter snapshot.
    pub fn joules_for(&self, counts: &OpSnapshot) -> f64 {
        OpCategory::ALL
            .iter()
            .map(|&c| counts.get(c) as f64 * self.nanojoules(c) * 1e-9)
            .sum()
    }
}

/// A point-in-time copy of an [`OpCounter`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    counts: Vec<u64>,
}

impl OpSnapshot {
    /// Count for one category.
    pub fn get(&self, cat: OpCategory) -> u64 {
        self.counts.get(cat.index()).copied().unwrap_or(0)
    }

    /// Total operations across all categories.
    pub fn total_ops(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Add another snapshot's counts into this one (worker-counter
    /// merging: addition commutes, so any merge order yields the same
    /// totals as one shared counter would).
    pub fn merge(&mut self, other: &OpSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Per-category difference `self - earlier` (saturating).
    pub fn delta_since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        let counts = OpCategory::ALL
            .iter()
            .map(|&c| self.get(c).saturating_sub(earlier.get(c)))
            .collect();
        OpSnapshot { counts }
    }

    /// Iterate non-zero categories.
    pub fn nonzero(&self) -> impl Iterator<Item = (OpCategory, u64)> + '_ {
        OpCategory::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
    }
}

/// A thread-local (non-atomic) operation scoreboard.
///
/// The batching half of the two-tier accounting scheme: hot paths bump a
/// plain [`Cell`] slot (one machine add, no RMW, no cache-line
/// ping-pong) and the accumulated block of counts is flushed in bulk
/// into a shared [`OpCounter`] stripe at coarse-grained points (drop,
/// explicit flush, snapshot). `Cell` makes the type `!Sync`, which is
/// exactly the contract: a scoreboard belongs to one thread; the striped
/// counter is the cross-thread rendezvous.
#[derive(Debug)]
pub struct Scoreboard {
    counts: [Cell<u64>; OpCategory::COUNT],
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard::new()
    }
}

impl Scoreboard {
    /// New zeroed scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard {
            counts: std::array::from_fn(|_| Cell::new(0)),
        }
    }

    /// Record one operation of `cat`.
    #[inline]
    pub fn bump(&self, cat: OpCategory) {
        self.bump_n(cat, 1);
    }

    /// Record `n` operations of `cat`.
    #[inline]
    pub fn bump_n(&self, cat: OpCategory, n: u64) {
        let c = &self.counts[cat.index()];
        c.set(c.get().wrapping_add(n));
    }

    /// Current count for one category.
    #[inline]
    pub fn get(&self, cat: OpCategory) -> u64 {
        self.counts[cat.index()].get()
    }

    /// Non-destructive copy of all counts.
    pub fn counts(&self) -> [u64; OpCategory::COUNT] {
        std::array::from_fn(|i| self.counts[i].get())
    }

    /// Copy all counts out and reset the scoreboard to zero.
    pub fn drain(&self) -> [u64; OpCategory::COUNT] {
        std::array::from_fn(|i| self.counts[i].replace(0))
    }

    /// Total operations currently recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(Cell::get).sum()
    }
}

/// One cache-line-aligned lane of a striped [`OpCounter`].
///
/// The alignment guarantees two workers flushing to *different* stripes
/// never write the same cache line, eliminating the false sharing that
/// made the original single-array counter a parallel scaling wall.
#[derive(Debug)]
#[repr(align(64))]
struct Stripe {
    counts: [AtomicU64; OpCategory::COUNT],
}

impl Stripe {
    fn zeroed() -> Stripe {
        Stripe {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A lock-free, shareable operation counter, striped per worker slot.
///
/// Counting uses relaxed atomics: counts from concurrent workers may
/// interleave arbitrarily but never get lost, which is all energy
/// accounting needs (c.f. *Rust Atomics and Locks*, ch. 2 — statistics
/// counters are the canonical relaxed-ordering use case).
///
/// Internally the counter is an array of cache-line-aligned stripes.
/// Each producer (a [`Scoreboard`] owner) takes a stripe slot via
/// [`OpCounter::assign_slot`] and flushes whole count blocks with
/// [`OpCounter::add_slab`]; [`OpCounter::snapshot`] sums the stripes.
/// Because every path is a sum of `u64` increments, the totals are
/// *exact* — identical for any stripe count, slot assignment, or flush
/// interleaving — which is what keeps parallel Table IV output
/// bit-identical to sequential.
#[derive(Debug)]
pub struct OpCounter {
    stripes: Box<[Stripe]>,
    next_slot: AtomicUsize,
}

impl Default for OpCounter {
    fn default() -> Self {
        OpCounter::new()
    }
}

impl OpCounter {
    /// New zeroed counter with one stripe per available core (rounded up
    /// to a power of two, capped at 16).
    pub fn new() -> OpCounter {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        OpCounter::striped(cores.min(16))
    }

    /// New zeroed counter with at least `slots` stripes (rounded up to a
    /// power of two so slot assignment is a mask).
    pub fn striped(slots: usize) -> OpCounter {
        let n = slots.max(1).next_power_of_two();
        OpCounter {
            stripes: (0..n).map(|_| Stripe::zeroed()).collect(),
            next_slot: AtomicUsize::new(0),
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Claim a stripe slot for a new producer (round-robin). One atomic
    /// RMW per *producer lifetime*, not per operation.
    pub fn assign_slot(&self) -> usize {
        self.next_slot.fetch_add(1, Ordering::Relaxed) & (self.stripes.len() - 1)
    }

    /// Record `n` operations of `cat` (unbatched compatibility path:
    /// one atomic RMW on stripe 0 — prefer a [`Scoreboard`] +
    /// [`OpCounter::add_slab`] in hot loops).
    #[inline]
    pub fn add(&self, cat: OpCategory, n: u64) {
        self.stripes[0].counts[cat.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Record a single operation of `cat`.
    #[inline]
    pub fn incr(&self, cat: OpCategory) {
        self.add(cat, 1);
    }

    /// Bulk-add a drained scoreboard block into stripe `slot`. Zero
    /// entries are skipped, so a flush costs at most one relaxed RMW per
    /// *touched category*, amortized over the whole batch.
    pub fn add_slab(&self, slot: usize, counts: &[u64; OpCategory::COUNT]) {
        let stripe = &self.stripes[slot & (self.stripes.len() - 1)];
        for (i, &n) in counts.iter().enumerate() {
            if n > 0 {
                stripe.counts[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot current counts (sum over stripes).
    pub fn snapshot(&self) -> OpSnapshot {
        let mut counts = vec![0u64; OpCategory::COUNT];
        for stripe in self.stripes.iter() {
            for (a, c) in counts.iter_mut().zip(&stripe.counts) {
                *a += c.load(Ordering::Relaxed);
            }
        }
        OpSnapshot { counts }
    }

    /// Reset all counts to zero, returning the pre-reset snapshot.
    pub fn take(&self) -> OpSnapshot {
        let mut counts = vec![0u64; OpCategory::COUNT];
        for stripe in self.stripes.iter() {
            for (a, c) in counts.iter_mut().zip(&stripe.counts) {
                *a += c.swap(0, Ordering::Relaxed);
            }
        }
        OpSnapshot { counts }
    }

    /// Convert current counts to joules under `model`, reset the counter,
    /// and report the energy to `sim`. Returns the joules flushed.
    pub fn flush_to(&self, model: &CostModel, sim: &crate::SimulatedRapl) -> f64 {
        let snap = self.take();
        let joules = model.joules_for(&snap);
        sim.add_dynamic_energy(joules);
        joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_categories_have_unique_indices() {
        let mut seen = std::collections::HashSet::new();
        for c in OpCategory::ALL {
            assert!(seen.insert(c.index()), "duplicate index for {c:?}");
            assert!(c.index() < OpCategory::COUNT);
        }
        assert_eq!(seen.len(), OpCategory::COUNT);
    }

    #[test]
    fn paper_model_reproduces_table1_ratios() {
        let m = CostModel::paper_calibrated();
        let r = |a: OpCategory, b: OpCategory| m.nanojoules(a) / m.nanojoules(b);
        // Modulus vs other arithmetic: up to 1,620% more → 17.2×.
        assert!((r(OpCategory::Modulus, OpCategory::IntAlu) - 17.2).abs() < 0.01);
        // static vs instance field: up to 17,700% more → 178×.
        assert!((r(OpCategory::StaticAccess, OpCategory::FieldAccess) - 178.0).abs() < 0.5);
        // compareTo vs equals: up to 33% more.
        assert!((r(OpCategory::StringCompareTo, OpCategory::StringEquals) - 1.333).abs() < 0.01);
        // String + vs StringBuilder.append: much lower for append.
        assert!(r(OpCategory::StringConcat, OpCategory::SbAppend) > 5.0);
        // arraycopy beats a manual loop per element.
        assert!(r(OpCategory::ArrayCopyElem, OpCategory::ArrayCopyBulk) > 5.0);
        // Scientific-notation constants are cheaper.
        assert!(m.nanojoules(OpCategory::ConstScientific) < m.nanojoules(OpCategory::ConstDecimal));
        // int is the cheapest primitive ALU.
        for c in [
            OpCategory::LongAlu,
            OpCategory::FloatAlu,
            OpCategory::DoubleAlu,
            OpCategory::NarrowAlu,
        ] {
            assert!(m.nanojoules(c) > m.nanojoules(OpCategory::IntAlu), "{c:?}");
        }
    }

    #[test]
    fn joules_for_sums_categories() {
        let m = CostModel::uniform(2.0); // 2 nJ per op
        let ctr = OpCounter::new();
        ctr.add(OpCategory::IntAlu, 500);
        ctr.add(OpCategory::Load, 500);
        let j = m.joules_for(&ctr.snapshot());
        assert!((j - 1000.0 * 2.0e-9).abs() < 1e-15);
    }

    #[test]
    fn take_resets() {
        let ctr = OpCounter::new();
        ctr.incr(OpCategory::Call);
        let snap = ctr.take();
        assert_eq!(snap.get(OpCategory::Call), 1);
        assert_eq!(ctr.snapshot().total_ops(), 0);
    }

    #[test]
    fn delta_since_subtracts() {
        let ctr = OpCounter::new();
        ctr.add(OpCategory::Branch, 10);
        let early = ctr.snapshot();
        ctr.add(OpCategory::Branch, 5);
        ctr.add(OpCategory::Store, 2);
        let d = ctr.snapshot().delta_since(&early);
        assert_eq!(d.get(OpCategory::Branch), 5);
        assert_eq!(d.get(OpCategory::Store), 2);
    }

    #[test]
    fn flush_reports_to_simulator() {
        let sim = crate::SimulatedRapl::new(crate::DeviceProfile::laptop_i5_3317u());
        let m = CostModel::paper_calibrated();
        let ctr = OpCounter::new();
        ctr.add(OpCategory::IntAlu, 1_000_000_000); // 1e9 ops × 1 nJ = 1 J
        let j = ctr.flush_to(&m, &sim);
        assert!((j - 1.0).abs() < 1e-9);
        assert!((sim.read_joules(crate::Domain::Package) - 1.0).abs() < 1e-9);
        assert_eq!(ctr.snapshot().total_ops(), 0);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let ctr = std::sync::Arc::new(OpCounter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let ctr = ctr.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        ctr.incr(OpCategory::IntAlu);
                    }
                });
            }
        });
        assert_eq!(ctr.snapshot().get(OpCategory::IntAlu), 80_000);
    }

    #[test]
    fn scoreboard_accumulates_and_drains() {
        let sb = Scoreboard::new();
        sb.bump(OpCategory::IntAlu);
        sb.bump_n(OpCategory::DoubleMul, 41);
        assert_eq!(sb.get(OpCategory::DoubleMul), 41);
        assert_eq!(sb.total(), 42);
        let counts = sb.drain();
        assert_eq!(counts[OpCategory::IntAlu.index()], 1);
        assert_eq!(counts[OpCategory::DoubleMul.index()], 41);
        assert_eq!(sb.total(), 0, "drain resets");
    }

    #[test]
    fn add_slab_lands_in_the_requested_stripe_and_sums_globally() {
        let ctr = OpCounter::striped(4);
        assert_eq!(ctr.stripe_count(), 4);
        let mut slab = [0u64; OpCategory::COUNT];
        slab[OpCategory::Load.index()] = 7;
        for slot in 0..ctr.stripe_count() {
            ctr.add_slab(slot, &slab);
        }
        // Out-of-range slots wrap instead of panicking.
        ctr.add_slab(ctr.stripe_count() + 1, &slab);
        assert_eq!(ctr.snapshot().get(OpCategory::Load), 7 * 5);
    }

    #[test]
    fn slot_assignment_round_robins_over_a_power_of_two() {
        let ctr = OpCounter::striped(3); // rounds up to 4
        assert_eq!(ctr.stripe_count(), 4);
        let slots: Vec<usize> = (0..8).map(|_| ctr.assign_slot()).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    proptest! {
        /// The exactness contract behind the parallel Table IV runner:
        /// a striped counter's snapshot equals the arithmetic sum of
        /// every increment, no matter how many jepo-pool workers flush
        /// scoreboard slabs into it concurrently.
        #[test]
        fn striped_snapshot_is_exact_under_concurrent_pool_writers(
            per_worker in proptest::collection::vec(
                proptest::collection::vec((0usize..OpCategory::COUNT, 0u64..500), 1..12),
                1..6,
            ),
            stripes in 1usize..8,
        ) {
            let ctr = OpCounter::striped(stripes);
            // Each worker drains its adds through a thread-local
            // scoreboard into its own assigned stripe, exactly as a
            // Kernel flush does.
            jepo_pool::parallel_map(&per_worker, 0, |_, adds| {
                let slot = ctr.assign_slot();
                let sb = Scoreboard::new();
                for &(i, n) in adds {
                    sb.bump_n(OpCategory::ALL[i], n);
                }
                ctr.add_slab(slot, &sb.drain());
            });
            let mut expect = vec![0u64; OpCategory::COUNT];
            for adds in &per_worker {
                for &(i, n) in adds {
                    expect[i] += n;
                }
            }
            let snap = ctr.snapshot();
            for (i, &n) in expect.iter().enumerate() {
                prop_assert_eq!(snap.get(OpCategory::ALL[i]), n);
            }
        }
    }

    proptest! {
        #[test]
        fn joules_scale_linearly_with_counts(n in 0u64..1_000_000) {
            let m = CostModel::paper_calibrated();
            let ctr = OpCounter::new();
            ctr.add(OpCategory::DoubleMul, n);
            let j = m.joules_for(&ctr.snapshot());
            prop_assert!((j - n as f64 * 3.6e-9).abs() < 1e-12 + j * 1e-12);
        }

        #[test]
        fn snapshot_total_equals_sum_of_adds(
            adds in proptest::collection::vec((0usize..OpCategory::COUNT, 0u64..1000), 0..64)
        ) {
            let ctr = OpCounter::new();
            let mut expect = 0u64;
            for (i, n) in adds {
                ctr.add(OpCategory::ALL[i], n);
                expect += n;
            }
            prop_assert_eq!(ctr.snapshot().total_ops(), expect);
        }
    }
}
