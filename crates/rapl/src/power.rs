//! Device power profiles.
//!
//! The simulator needs a static power model for each device class the
//! paper discusses: the evaluation laptop (i5-3317U), and the edge
//! platforms motivating the work (Jetson-class embedded boards, edge
//! servers). Numbers are published TDP/idle figures, not measurements.

use crate::Domain;
use serde::{Deserialize, Serialize};

/// Static (activity-independent) power model of one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name, e.g. `"Intel i5-3317U laptop"`.
    pub name: String,
    /// Package idle power in watts (leakage + uncore clocks).
    pub idle_package_watts: f64,
    /// Fraction of *dynamic* energy attributed to the core (PP0) domain.
    /// Tree/ALU-heavy workloads are core-dominated; the paper's Table IV
    /// shows CPU (core) improvements tracking package improvements
    /// closely, which this split reproduces.
    pub core_dynamic_fraction: f64,
    /// Fraction of dynamic energy attributed to the uncore (PP1) domain.
    pub uncore_dynamic_fraction: f64,
    /// Fraction of dynamic energy attributed to DRAM. Zero for client
    /// parts whose DRAM domain is not exposed.
    pub dram_dynamic_fraction: f64,
    /// Fraction of *idle* power attributed to the core domain.
    pub core_idle_fraction: f64,
    /// Thermal design power in watts (reported via `MSR_PKG_POWER_INFO`).
    pub tdp_watts: f64,
    /// Domains this device exposes.
    pub domains: Vec<Domain>,
}

impl DeviceProfile {
    /// The paper's evaluation machine: Intel Core i5-3317U (Ivy Bridge,
    /// 17 W TDP, 2C/4T mobile part), Ubuntu 16.04 laptop with 4 GB RAM.
    pub fn laptop_i5_3317u() -> DeviceProfile {
        DeviceProfile {
            name: "Intel i5-3317U laptop".into(),
            idle_package_watts: 3.2,
            core_dynamic_fraction: 0.82,
            uncore_dynamic_fraction: 0.10,
            dram_dynamic_fraction: 0.0,
            core_idle_fraction: 0.35,
            tdp_watts: 17.0,
            domains: Domain::CLIENT.to_vec(),
        }
    }

    /// A Jetson-TX2-class embedded edge board (7.5–15 W envelope).
    /// NVIDIA boards expose INA-style rails rather than RAPL; we map the
    /// rails onto the same domain model (SOC→package, CPU rail→core).
    pub fn jetson_tx2() -> DeviceProfile {
        DeviceProfile {
            name: "Jetson TX2-class edge board".into(),
            idle_package_watts: 1.9,
            core_dynamic_fraction: 0.55,
            uncore_dynamic_fraction: 0.30, // GPU rail folded into uncore
            dram_dynamic_fraction: 0.10,
            core_idle_fraction: 0.30,
            tdp_watts: 15.0,
            domains: vec![Domain::Package, Domain::Core, Domain::Uncore, Domain::Dram],
        }
    }

    /// An edge-server (Xeon-D class) profile with an exposed DRAM domain.
    pub fn edge_server() -> DeviceProfile {
        DeviceProfile {
            name: "Xeon-D edge server".into(),
            idle_package_watts: 12.0,
            core_dynamic_fraction: 0.70,
            uncore_dynamic_fraction: 0.12,
            dram_dynamic_fraction: 0.15,
            core_idle_fraction: 0.40,
            tdp_watts: 45.0,
            domains: vec![Domain::Package, Domain::Core, Domain::Uncore, Domain::Dram],
        }
    }

    /// A Raspberry-Pi-class microcontroller-adjacent device, for the IoT
    /// scenarios of §I. Tiny idle power, core-dominated.
    pub fn iot_device() -> DeviceProfile {
        DeviceProfile {
            name: "IoT-class device".into(),
            idle_package_watts: 0.6,
            core_dynamic_fraction: 0.80,
            uncore_dynamic_fraction: 0.05,
            dram_dynamic_fraction: 0.08,
            core_idle_fraction: 0.25,
            tdp_watts: 5.0,
            domains: vec![Domain::Package, Domain::Core, Domain::Dram],
        }
    }

    /// Validate invariants: fractions in `[0,1]`, sub-domain dynamic
    /// fractions sum to ≤ 1 (the remainder is package-only energy such as
    /// the memory controller), idle below TDP.
    pub fn validate(&self) -> Result<(), String> {
        let fr = [
            self.core_dynamic_fraction,
            self.uncore_dynamic_fraction,
            self.dram_dynamic_fraction,
            self.core_idle_fraction,
        ];
        if fr.iter().any(|f| !(0.0..=1.0).contains(f)) {
            return Err(format!("{}: fraction out of [0,1]", self.name));
        }
        let sum = self.core_dynamic_fraction + self.uncore_dynamic_fraction;
        if sum > 1.0 + 1e-9 {
            return Err(format!(
                "{}: core+uncore dynamic fractions exceed 1",
                self.name
            ));
        }
        if self.idle_package_watts <= 0.0 || self.idle_package_watts >= self.tdp_watts {
            return Err(format!("{}: idle power must be in (0, TDP)", self.name));
        }
        if !self.domains.contains(&Domain::Package) {
            return Err(format!("{}: package domain is mandatory", self.name));
        }
        Ok(())
    }

    /// All built-in profiles (used by sweeps and tests).
    pub fn builtin() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::laptop_i5_3317u(),
            DeviceProfile::jetson_tx2(),
            DeviceProfile::edge_server(),
            DeviceProfile::iot_device(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_profiles_validate() {
        for p in DeviceProfile::builtin() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn paper_machine_matches_published_tdp() {
        let p = DeviceProfile::laptop_i5_3317u();
        assert_eq!(p.tdp_watts, 17.0);
        assert!(
            !p.domains.contains(&Domain::Dram),
            "client part: no DRAM RAPL"
        );
    }

    #[test]
    fn validate_rejects_bad_fractions() {
        let mut p = DeviceProfile::laptop_i5_3317u();
        p.core_dynamic_fraction = 0.95;
        p.uncore_dynamic_fraction = 0.2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_idle_above_tdp() {
        let mut p = DeviceProfile::iot_device();
        p.idle_package_watts = 6.0;
        assert!(p.validate().is_err());
    }
}
