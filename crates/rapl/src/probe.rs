//! The `jepo-trace` energy-probe adapter — spans read RAPL through here.
//!
//! A span's energy delta is the difference of two cumulative
//! [`jepo_trace::EnergyProbe::total_joules`] readings. The naive way to
//! implement that over RAPL — differencing two raw 32-bit energy-status
//! reads — silently loses `2³² × joules_per_count` whenever the counter
//! wraps inside the span (roughly hourly at laptop TDP, well within a
//! long Table IV run). [`CounterProbe`] therefore routes every raw MSR
//! read through the wrap-aware [`CounterReader`], the same path the
//! meters use, so a wrap mid-span yields the correct delta (see the
//! wrap-forcing test below).

use crate::{CounterReader, Domain, MsrDevice, RaplError};
use jepo_trace::EnergyProbe;
use std::sync::Mutex;

/// Wrap-correct cumulative energy probe over one domain of any
/// [`MsrDevice`] (simulator or real hardware — the probe cannot tell).
pub struct CounterProbe<D: MsrDevice> {
    device: D,
    domain: Domain,
    reader: Mutex<CounterReader>,
}

impl<D: MsrDevice> CounterProbe<D> {
    /// Build a probe; the construction-time read establishes the
    /// baseline, so `total_joules` starts at 0.
    pub fn new(device: D, domain: Domain) -> Result<CounterProbe<D>, RaplError> {
        let units = device.units()?;
        let mut reader = CounterReader::new(units);
        reader.update(device.read_energy_raw(domain)?);
        Ok(CounterProbe {
            device,
            domain,
            reader: Mutex::new(reader),
        })
    }
}

impl<D: MsrDevice> EnergyProbe for CounterProbe<D> {
    fn total_joules(&self) -> f64 {
        let mut reader = self.reader.lock().unwrap();
        if let Ok(raw) = self.device.read_energy_raw(self.domain) {
            reader.update(raw);
            let reg = jepo_trace::Registry::global();
            if reg.is_enabled() {
                reg.counter("rapl.probe_reads").incr();
            }
        }
        reader.total_joules()
    }
}

/// Package-domain probe over a (cheaply cloned, state-shared)
/// [`crate::SimulatedRapl`] — what the VM binds around instrumented runs.
pub fn package_probe(
    sim: &crate::SimulatedRapl,
) -> Result<CounterProbe<crate::SimulatedRapl>, RaplError> {
    CounterProbe::new(sim.clone(), Domain::Package)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceProfile, RaplUnits, SimulatedRapl};
    use jepo_trace::{bind_probe, span, Tracer};
    use std::sync::Arc;

    #[test]
    fn probe_baseline_is_zero_and_monotone() {
        let sim = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
        let probe = package_probe(&sim).unwrap();
        assert_eq!(probe.total_joules(), 0.0);
        sim.add_dynamic_energy(1.5);
        let a = probe.total_joules();
        assert!((a - 1.5).abs() < 1e-4, "{a}");
        sim.add_dynamic_energy(0.5);
        assert!(probe.total_joules() >= a);
    }

    /// Satellite bugfix test: force a 32-bit counter wrap *inside* an
    /// open span and check the recorded delta is the energy actually
    /// spent, not the garbage a raw end-minus-start difference gives.
    #[test]
    fn wrap_inside_a_span_yields_the_correct_delta() {
        let sim = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
        let units: RaplUnits = sim.units_struct();
        // The package counter starts at raw offset 0x1000_0000; joules
        // to the wrap point from there:
        let to_wrap = units.raw_to_joules((u32::MAX as u64 + 1) - 0x1000_0000);
        let spend = to_wrap + 100.0; // crosses the wrap mid-span
        let probe = Arc::new(package_probe(&sim).unwrap());

        let tracer = Tracer::new();
        tracer.enable();
        {
            let _t = tracer.track("wrap-test");
            let _p = bind_probe(probe.clone());
            let _s = span("long-span");
            // Cross the wrap in two chunks so the reader (≤1 wrap per
            // sample) sees the boundary, as a real sampler would.
            sim.add_dynamic_energy(to_wrap - 50.0);
            probe.total_joules(); // mid-span sample
            sim.add_dynamic_energy(150.0);
        }
        let json = tracer.export_chrome(false);
        let stats = jepo_trace::validate::validate_chrome(&json).unwrap();
        assert_eq!(stats.spans, 1);
        let got = stats.total_package_j;
        assert!(
            (got - spend).abs() < 1.0,
            "wrap-corrected span delta {got} J, spent {spend} J"
        );
        // Sanity: the delta is far larger than what a wrap-oblivious
        // raw difference could report (the post-wrap residue alone).
        let naive_max = units.raw_to_joules(u32::MAX as u64) - to_wrap;
        assert!(got > naive_max, "{got} vs naive ceiling {naive_max}");
    }

    #[test]
    fn reader_observes_the_wrap() {
        let sim = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
        let units = sim.units_struct();
        let probe = package_probe(&sim).unwrap();
        let to_wrap = units.raw_to_joules((u32::MAX as u64 + 1) - 0x1000_0000);
        sim.add_dynamic_energy(to_wrap + 10.0);
        let total = probe.total_joules();
        assert!((total - (to_wrap + 10.0)).abs() < 1.0, "{total}");
        assert_eq!(probe.reader.lock().unwrap().wraps_observed(), 1);
    }
}
