//! Best-effort real-hardware backends.
//!
//! When the host actually exposes RAPL, these backends let the same
//! profiler run against real counters — the configuration the paper ran.
//! Both are strictly optional: construction returns
//! [`RaplError::BackendUnavailable`] in containers or on non-Intel hosts,
//! and all higher layers fall back to the simulator.

use crate::{Domain, MsrDevice, RaplError};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;

/// Backend reading `/dev/cpu/<cpu>/msr` — the interface the paper's
/// injected Javassist code uses (requires the `msr` kernel module and
/// root or `CAP_SYS_RAWIO`).
pub struct MsrFileDevice {
    file: std::sync::Mutex<fs::File>,
}

impl MsrFileDevice {
    /// Open the MSR device for `cpu`.
    pub fn open(cpu: u32) -> Result<MsrFileDevice, RaplError> {
        let path = format!("/dev/cpu/{cpu}/msr");
        let file = fs::File::open(&path)
            .map_err(|e| RaplError::BackendUnavailable(format!("cannot open {path}: {e}")))?;
        Ok(MsrFileDevice {
            file: std::sync::Mutex::new(file),
        })
    }
}

impl MsrDevice for MsrFileDevice {
    fn read_msr(&self, addr: u32) -> Result<u64, RaplError> {
        let mut f = self.file.lock().unwrap();
        f.seek(SeekFrom::Start(addr as u64))?;
        let mut buf = [0u8; 8];
        f.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
}

/// Backend reading the Linux `powercap` sysfs tree
/// (`/sys/class/powercap/intel-rapl:*`), which needs no root on most
/// distributions. Exposes joules directly (the kernel handles units and
/// wrapping up to the `max_energy_range_uj` horizon).
pub struct PowercapReader {
    zones: Vec<(Domain, PathBuf)>,
}

impl PowercapReader {
    /// Discover RAPL zones under the given sysfs root
    /// (normally `/sys/class/powercap`).
    pub fn discover_in(root: &str) -> Result<PowercapReader, RaplError> {
        let mut zones = Vec::new();
        let entries = fs::read_dir(root).map_err(|e| {
            RaplError::BackendUnavailable(format!("no powercap tree at {root}: {e}"))
        })?;
        for entry in entries.flatten() {
            let path = entry.path();
            let name_file = path.join("name");
            let energy_file = path.join("energy_uj");
            if !name_file.exists() || !energy_file.exists() {
                continue;
            }
            let name = fs::read_to_string(&name_file)?.trim().to_string();
            let domain = match name.as_str() {
                s if s.starts_with("package") => Domain::Package,
                "core" => Domain::Core,
                "uncore" => Domain::Uncore,
                "dram" => Domain::Dram,
                "psys" => Domain::Psys,
                _ => continue,
            };
            zones.push((domain, energy_file));
        }
        if zones.is_empty() {
            return Err(RaplError::BackendUnavailable(format!(
                "no RAPL zones found under {root}"
            )));
        }
        zones.sort_by_key(|(d, _)| *d);
        Ok(PowercapReader { zones })
    }

    /// Discover zones under the standard sysfs root.
    pub fn discover() -> Result<PowercapReader, RaplError> {
        PowercapReader::discover_in("/sys/class/powercap")
    }

    /// Domains discovered.
    pub fn domains(&self) -> Vec<Domain> {
        self.zones.iter().map(|(d, _)| *d).collect()
    }

    /// Read one domain's cumulative energy in joules.
    pub fn read_joules(&self, domain: Domain) -> Result<f64, RaplError> {
        let (_, path) = self
            .zones
            .iter()
            .find(|(d, _)| *d == domain)
            .ok_or(RaplError::UnsupportedDomain(domain))?;
        let text = fs::read_to_string(path)?;
        let uj: u64 = text
            .trim()
            .parse()
            .map_err(|e| RaplError::Malformed(format!("energy_uj {text:?}: {e}")))?;
        Ok(uj as f64 * 1e-6)
    }
}

/// Pick the best available meter: powercap, then raw MSR, else `None`
/// (caller falls back to the simulator). Never panics.
pub fn detect_hardware() -> Option<String> {
    if let Ok(r) = PowercapReader::discover() {
        return Some(format!("powercap ({} zones)", r.domains().len()));
    }
    if MsrFileDevice::open(0).is_ok() {
        return Some("msr device".into());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msr_device_unavailable_is_graceful() {
        // In the build container there is no /dev/cpu/*/msr; constructing
        // must fail with BackendUnavailable, not panic.
        match MsrFileDevice::open(0) {
            Err(RaplError::BackendUnavailable(_)) => {}
            Ok(_) => {} // running on a privileged host: also fine
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }

    #[test]
    fn powercap_discovery_on_missing_root_fails_gracefully() {
        let r = PowercapReader::discover_in("/nonexistent/powercap");
        assert!(matches!(r, Err(RaplError::BackendUnavailable(_))));
    }

    #[test]
    fn powercap_parses_synthetic_tree() {
        // Build a fake powercap tree and read through the real code path.
        let dir = std::env::temp_dir().join(format!("jepo-powercap-{}", std::process::id()));
        let zone = dir.join("intel-rapl:0");
        fs::create_dir_all(&zone).unwrap();
        fs::write(zone.join("name"), "package-0\n").unwrap();
        fs::write(zone.join("energy_uj"), "2500000\n").unwrap();
        let reader = PowercapReader::discover_in(dir.to_str().unwrap()).unwrap();
        assert_eq!(reader.domains(), vec![Domain::Package]);
        let j = reader.read_joules(Domain::Package).unwrap();
        assert!((j - 2.5).abs() < 1e-12);
        assert!(matches!(
            reader.read_joules(Domain::Dram),
            Err(RaplError::UnsupportedDomain(Domain::Dram))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn powercap_rejects_malformed_energy() {
        let dir = std::env::temp_dir().join(format!("jepo-powercap-bad-{}", std::process::id()));
        let zone = dir.join("intel-rapl:0");
        fs::create_dir_all(&zone).unwrap();
        fs::write(zone.join("name"), "core\n").unwrap();
        fs::write(zone.join("energy_uj"), "not-a-number\n").unwrap();
        let reader = PowercapReader::discover_in(dir.to_str().unwrap()).unwrap();
        assert!(matches!(
            reader.read_joules(Domain::Core),
            Err(RaplError::Malformed(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_hardware_never_panics() {
        let _ = detect_hardware();
    }
}
