//! The simulated RAPL device.
//!
//! A [`SimulatedRapl`] owns one [`crate::EnergyCounter`] per domain plus a
//! virtual clock. Energy accrues from two sources, mirroring the standard
//! CMOS decomposition `P = P_static + P_dynamic`:
//!
//! * **Idle (static) power** — accrues with virtual time via
//!   [`SimulatedRapl::advance_time`], split between domains by the
//!   device profile's idle fractions.
//! * **Dynamic energy** — joules of *work*, reported by instrumented
//!   programs (the VM's per-opcode model, or the ML layer's operation
//!   counters) via [`SimulatedRapl::add_dynamic_energy`], split by the
//!   profile's dynamic fractions.
//!
//! The device is shared-state and thread-safe (`std::sync::Mutex`);
//! worker threads report energy concurrently during parallel training.

use crate::{
    counter::EnergyCounter, msr, power::DeviceProfile, Domain, MsrDevice, RaplError, RaplUnits,
};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Debug)]
struct SimState {
    counters: Vec<(Domain, EnergyCounter)>,
    /// Virtual elapsed time in seconds.
    clock_seconds: f64,
    /// Total dynamic joules ever reported (diagnostics).
    dynamic_joules: f64,
}

/// A simulated RAPL package (see module docs).
#[derive(Debug, Clone)]
pub struct SimulatedRapl {
    profile: Arc<DeviceProfile>,
    units: RaplUnits,
    state: Arc<Mutex<SimState>>,
}

impl SimulatedRapl {
    /// Create a device with the default Core-family units.
    pub fn new(profile: DeviceProfile) -> SimulatedRapl {
        SimulatedRapl::with_units(profile, RaplUnits::default())
    }

    /// Create a device with explicit units (e.g. Atom's coarser energy
    /// unit, to test unit-decoding paths).
    pub fn with_units(profile: DeviceProfile, units: RaplUnits) -> SimulatedRapl {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid device profile: {e}"));
        // Start counters at distinct nonzero offsets so consumers that
        // wrongly assume zero-based counters fail fast in tests.
        let counters = profile
            .domains
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                (
                    d,
                    EnergyCounter::new(units, 0x1000_0000u32.wrapping_mul(i as u32 + 1)),
                )
            })
            .collect();
        SimulatedRapl {
            profile: Arc::new(profile),
            units,
            state: Arc::new(Mutex::new(SimState {
                counters,
                clock_seconds: 0.0,
                dynamic_joules: 0.0,
            })),
        }
    }

    /// The device profile in force.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Advance the virtual clock; idle power accrues on every domain.
    pub fn advance_time(&self, dt: Duration) {
        self.advance_seconds(dt.as_secs_f64());
    }

    /// [`SimulatedRapl::advance_time`] with a raw seconds value.
    pub fn advance_seconds(&self, dt: f64) {
        assert!(dt >= 0.0, "time cannot run backwards");
        let idle_j = self.profile.idle_package_watts * dt;
        let mut st = self.state.lock().unwrap();
        st.clock_seconds += dt;
        for (d, c) in st.counters.iter_mut() {
            let share = match d {
                Domain::Package | Domain::Psys => 1.0,
                Domain::Core => self.profile.core_idle_fraction,
                Domain::Uncore => (1.0 - self.profile.core_idle_fraction) * 0.4,
                Domain::Dram => (1.0 - self.profile.core_idle_fraction) * 0.3,
            };
            c.add_joules(idle_j * share);
        }
    }

    /// Report `joules` of dynamic (work-proportional) energy. Split
    /// across domains by the profile's dynamic fractions; the package
    /// domain sees all of it (package ⊇ core ∪ uncore).
    pub fn add_dynamic_energy(&self, joules: f64) {
        assert!(joules >= 0.0, "energy cannot be negative");
        let mut st = self.state.lock().unwrap();
        st.dynamic_joules += joules;
        for (d, c) in st.counters.iter_mut() {
            let share = match d {
                Domain::Package | Domain::Psys => 1.0,
                Domain::Core => self.profile.core_dynamic_fraction,
                Domain::Uncore => self.profile.uncore_dynamic_fraction,
                Domain::Dram => self.profile.dram_dynamic_fraction,
            };
            c.add_joules(joules * share);
        }
    }

    /// Exact joules accrued on a domain since construction
    /// (simulator-internal; real hardware only exposes the raw counter).
    pub fn read_joules(&self, domain: Domain) -> f64 {
        let st = self.state.lock().unwrap();
        st.counters
            .iter()
            .find(|(d, _)| *d == domain)
            .map(|(_, c)| c.total_joules())
            .unwrap_or(0.0)
    }

    /// Virtual clock value in seconds.
    pub fn clock_seconds(&self) -> f64 {
        self.state.lock().unwrap().clock_seconds
    }

    /// Total dynamic joules ever reported.
    pub fn total_dynamic_joules(&self) -> f64 {
        self.state.lock().unwrap().dynamic_joules
    }

    /// The units this device reports through `MSR_RAPL_POWER_UNIT`.
    pub fn units_struct(&self) -> RaplUnits {
        self.units
    }
}

impl MsrDevice for SimulatedRapl {
    fn read_msr(&self, addr: u32) -> Result<u64, RaplError> {
        if addr == msr::MSR_RAPL_POWER_UNIT {
            return Ok(self.units.to_msr());
        }
        if addr == msr::MSR_PKG_POWER_INFO {
            let info = msr::PowerInfo {
                tdp_watts: self.profile.tdp_watts,
                min_watts: self.profile.idle_package_watts,
                max_watts: self.profile.tdp_watts * 1.5,
            };
            return Ok(info.to_msr(self.units.watts_per_count()));
        }
        if let Some(domain) = Domain::from_energy_status_msr(addr) {
            let st = self.state.lock().unwrap();
            return st
                .counters
                .iter()
                .find(|(d, _)| *d == domain)
                .map(|(_, c)| c.read_raw() as u64)
                .ok_or(RaplError::UnsupportedDomain(domain));
        }
        Err(RaplError::UnknownRegister(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> SimulatedRapl {
        SimulatedRapl::new(DeviceProfile::laptop_i5_3317u())
    }

    #[test]
    fn idle_power_accrues_with_time() {
        let d = dev();
        d.advance_seconds(10.0);
        let pkg = d.read_joules(Domain::Package);
        assert!((pkg - 32.0).abs() < 1e-9, "3.2 W × 10 s, got {pkg}");
        let core = d.read_joules(Domain::Core);
        assert!(core > 0.0 && core < pkg);
    }

    #[test]
    fn dynamic_energy_splits_by_profile() {
        let d = dev();
        d.add_dynamic_energy(10.0);
        assert!((d.read_joules(Domain::Package) - 10.0).abs() < 1e-9);
        assert!((d.read_joules(Domain::Core) - 8.2).abs() < 1e-9);
        assert!((d.read_joules(Domain::Uncore) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn package_dominates_subdomains() {
        let d = dev();
        d.advance_seconds(3.0);
        d.add_dynamic_energy(7.0);
        let pkg = d.read_joules(Domain::Package);
        assert!(d.read_joules(Domain::Core) <= pkg);
        assert!(d.read_joules(Domain::Core) + d.read_joules(Domain::Uncore) <= pkg + 1e-9);
    }

    #[test]
    fn msr_interface_reports_units_and_counters() {
        let d = dev();
        d.add_dynamic_energy(1.0);
        let units = d.units().unwrap();
        assert_eq!(units, RaplUnits::default());
        let j = d.read_energy_joules(Domain::Package).unwrap();
        // Raw counters start at a nonzero offset; convert the *offsetted*
        // reading — we can only check it's sane, not equal to 1.0.
        assert!(j >= 0.0);
    }

    #[test]
    fn interval_measured_through_msr_matches_added_energy() {
        let d = dev();
        let mut reader = crate::CounterReader::new(d.units().unwrap());
        reader.update(d.read_energy_raw(Domain::Package).unwrap());
        d.add_dynamic_energy(2.5);
        reader.update(d.read_energy_raw(Domain::Package).unwrap());
        assert!((reader.total_joules() - 2.5).abs() < 1e-4);
    }

    #[test]
    fn unknown_msr_errors() {
        assert!(matches!(
            dev().read_msr(0x1234),
            Err(RaplError::UnknownRegister(_))
        ));
    }

    #[test]
    fn dram_unsupported_on_client_part() {
        // i5-3317U exposes no DRAM domain: the MSR address is *known* but
        // the domain is absent from the register file.
        assert!(matches!(
            dev().read_msr(msr::MSR_DRAM_ENERGY_STATUS),
            Err(RaplError::UnsupportedDomain(Domain::Dram))
        ));
    }

    #[test]
    fn power_info_msr_reports_tdp() {
        let d = dev();
        let raw = d.read_msr(msr::MSR_PKG_POWER_INFO).unwrap();
        let info = msr::PowerInfo::from_msr(raw, d.units_struct().watts_per_count());
        assert!((info.tdp_watts - 17.0).abs() < 0.2);
    }

    #[test]
    fn concurrent_reporting_is_safe_and_lossless() {
        let d = dev();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        d.add_dynamic_energy(0.001);
                    }
                });
            }
        });
        assert!((d.total_dynamic_joules() - 8.0).abs() < 1e-9);
        assert!((d.read_joules(Domain::Package) - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "time cannot run backwards")]
    fn negative_time_panics() {
        dev().advance_seconds(-1.0);
    }
}
