//! RAPL MSR address map and the device trait.
//!
//! Addresses follow the Intel Software Developer's Manual, Vol. 4
//! (the same registers the paper's injected Javassist code reads through
//! `/dev/cpu/*/msr`).

use crate::{Domain, RaplError};

/// `MSR_RAPL_POWER_UNIT` — units for power (bits 3:0), energy (bits 12:8)
/// and time (bits 19:16). Read once, applied to every counter.
pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
/// Package energy-status counter (32 significant bits, wrapping).
pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
/// Package power-limit control register.
pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;
/// Package power-info register (TDP, min/max power).
pub const MSR_PKG_POWER_INFO: u32 = 0x614;
/// DRAM energy-status counter.
pub const MSR_DRAM_ENERGY_STATUS: u32 = 0x619;
/// Power-plane-0 (cores) energy-status counter.
pub const MSR_PP0_ENERGY_STATUS: u32 = 0x639;
/// Power-plane-1 (uncore/graphics) energy-status counter.
pub const MSR_PP1_ENERGY_STATUS: u32 = 0x641;
/// Platform (PSys) energy-status counter (Skylake+).
pub const MSR_PLATFORM_ENERGY_STATUS: u32 = 0x64D;

/// A device exposing RAPL MSRs. Implemented by the simulator
/// ([`crate::SimulatedRapl`]) and by the real-hardware backend
/// ([`crate::hw::MsrFileDevice`]). Code written against this trait —
/// including the profiler's injected readers — cannot tell the two apart.
pub trait MsrDevice: Send + Sync {
    /// Read a 64-bit MSR by address.
    fn read_msr(&self, addr: u32) -> Result<u64, RaplError>;

    /// Decode the unit register. Default implementation reads
    /// [`MSR_RAPL_POWER_UNIT`] and parses the bit-fields.
    fn units(&self) -> Result<crate::RaplUnits, RaplError> {
        Ok(crate::RaplUnits::from_msr(
            self.read_msr(MSR_RAPL_POWER_UNIT)?,
        ))
    }

    /// Read a domain's raw (hardware-unit) energy counter.
    ///
    /// Per the SDM only the low 32 bits are significant; the default
    /// implementation masks accordingly, mirroring what correct reader
    /// code must do on real hardware.
    fn read_energy_raw(&self, domain: Domain) -> Result<u32, RaplError> {
        Ok((self.read_msr(domain.energy_status_msr())? & 0xFFFF_FFFF) as u32)
    }

    /// Read a domain's energy counter converted to joules.
    ///
    /// Note this is the *wrapping counter value* in joules, not total
    /// energy since boot; callers must difference two reads through a
    /// [`crate::CounterReader`] to measure an interval.
    fn read_energy_joules(&self, domain: Domain) -> Result<f64, RaplError> {
        let units = self.units()?;
        Ok(units.raw_to_joules(self.read_energy_raw(domain)? as u64))
    }
}

/// Package power-info fields (decoded from [`MSR_PKG_POWER_INFO`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerInfo {
    /// Thermal design power in watts.
    pub tdp_watts: f64,
    /// Minimum settable power limit in watts.
    pub min_watts: f64,
    /// Maximum settable power limit in watts.
    pub max_watts: f64,
}

impl PowerInfo {
    /// Decode from the raw MSR value using the given power unit.
    pub fn from_msr(raw: u64, watts_per_unit: f64) -> PowerInfo {
        let field = |shift: u32| ((raw >> shift) & 0x7FFF) as f64 * watts_per_unit;
        PowerInfo {
            tdp_watts: field(0),
            min_watts: field(16),
            max_watts: field(32),
        }
    }

    /// Encode into the raw MSR layout (inverse of [`PowerInfo::from_msr`]).
    pub fn to_msr(&self, watts_per_unit: f64) -> u64 {
        let enc = |w: f64| ((w / watts_per_unit).round() as u64) & 0x7FFF;
        enc(self.tdp_watts) | (enc(self.min_watts) << 16) | (enc(self.max_watts) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_match_sdm() {
        assert_eq!(MSR_RAPL_POWER_UNIT, 0x606);
        assert_eq!(MSR_PKG_ENERGY_STATUS, 0x611);
        assert_eq!(MSR_PP0_ENERGY_STATUS, 0x639);
        assert_eq!(MSR_PP1_ENERGY_STATUS, 0x641);
        assert_eq!(MSR_DRAM_ENERGY_STATUS, 0x619);
    }

    #[test]
    fn power_info_roundtrip() {
        let unit = 1.0 / 8.0; // default RAPL power unit: 1/8 W
        let info = PowerInfo {
            tdp_watts: 17.0,
            min_watts: 4.0,
            max_watts: 25.0,
        };
        let decoded = PowerInfo::from_msr(info.to_msr(unit), unit);
        assert!((decoded.tdp_watts - 17.0).abs() < 1e-9);
        assert!((decoded.min_watts - 4.0).abs() < 1e-9);
        assert!((decoded.max_watts - 25.0).abs() < 1e-9);
    }

    #[test]
    fn power_info_fields_are_15_bits() {
        let unit = 0.125;
        // 0x7FFF * 0.125 = 4095.875 W is the max encodable value.
        let info = PowerInfo {
            tdp_watts: 1e9,
            min_watts: 0.0,
            max_watts: 0.0,
        };
        let raw = info.to_msr(unit);
        assert_eq!(raw & !0x7FFF_u64, raw & 0xFFFF_FFFF_FFFF_0000 & raw); // nothing spills
        assert!(PowerInfo::from_msr(raw, unit).tdp_watts <= 4096.0);
    }
}
