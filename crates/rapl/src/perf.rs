//! `perf stat`-style repeated energy measurement.
//!
//! The paper measures each classifier with the Linux `perf` tool, ten
//! runs, then applies Tukey outlier replacement (that statistical loop
//! lives in `jepo-core::protocol`; this module is the raw run-N-times
//! collector, the analogue of invoking `perf stat -r`).

use crate::{EnergyMeter, Measurement};

/// Collector for repeated measurements of one workload.
#[derive(Debug, Clone, Default)]
pub struct EnergyStat {
    runs: Vec<Measurement>,
}

impl EnergyStat {
    /// Empty collector.
    pub fn new() -> EnergyStat {
        EnergyStat::default()
    }

    /// Measure `work` once under `meter`, recording the interval.
    /// Returns the workload's output.
    pub fn record<M: EnergyMeter, T>(&mut self, meter: &M, work: impl FnOnce() -> T) -> T {
        let (out, m) = meter.measure(work);
        self.runs.push(m);
        out
    }

    /// Record a pre-taken measurement (used when the workload was
    /// measured elsewhere, e.g. inside the VM).
    pub fn push(&mut self, m: Measurement) {
        self.runs.push(m);
    }

    /// All runs so far.
    pub fn runs(&self) -> &[Measurement] {
        &self.runs
    }

    /// Replace run `i` (the Tukey protocol re-measures outliers in place).
    pub fn replace(&mut self, i: usize, m: Measurement) {
        self.runs[i] = m;
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Mean package joules across runs.
    pub fn mean_package_j(&self) -> f64 {
        mean(self.runs.iter().map(|m| m.package_j))
    }

    /// Mean core joules across runs.
    pub fn mean_core_j(&self) -> f64 {
        mean(self.runs.iter().map(|m| m.core_j))
    }

    /// Mean duration across runs, seconds.
    pub fn mean_seconds(&self) -> f64 {
        mean(self.runs.iter().map(|m| m.seconds))
    }

    /// Mean measurement across all runs (component-wise).
    pub fn mean(&self) -> Measurement {
        let n = self.runs.len().max(1) as f64;
        let mut acc = Measurement::default();
        for m in &self.runs {
            acc.accumulate(m);
        }
        Measurement {
            package_j: acc.package_j / n,
            core_j: acc.core_j / n,
            uncore_j: acc.uncore_j / n,
            dram_j: acc.dram_j / n,
            seconds: acc.seconds / n,
        }
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceProfile, SimMeter, SimulatedRapl};
    use std::sync::Arc;

    #[test]
    fn record_collects_runs() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let meter = SimMeter::new(sim.clone());
        let mut stat = EnergyStat::new();
        for i in 1..=3 {
            stat.record(&meter, || sim.add_dynamic_energy(i as f64));
        }
        assert_eq!(stat.len(), 3);
        assert!((stat.mean_package_j() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn replace_supports_outlier_protocol() {
        let mut stat = EnergyStat::new();
        stat.push(Measurement {
            package_j: 1.0,
            ..Default::default()
        });
        stat.push(Measurement {
            package_j: 100.0,
            ..Default::default()
        }); // outlier
        stat.replace(
            1,
            Measurement {
                package_j: 1.2,
                ..Default::default()
            },
        );
        assert!((stat.mean_package_j() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn empty_stat_means_are_zero() {
        let stat = EnergyStat::new();
        assert_eq!(stat.mean_package_j(), 0.0);
        assert_eq!(stat.mean().seconds, 0.0);
        assert!(stat.is_empty());
    }

    #[test]
    fn mean_is_componentwise() {
        let mut stat = EnergyStat::new();
        stat.push(Measurement {
            package_j: 2.0,
            core_j: 1.0,
            uncore_j: 0.2,
            dram_j: 0.1,
            seconds: 1.0,
        });
        stat.push(Measurement {
            package_j: 4.0,
            core_j: 3.0,
            uncore_j: 0.4,
            dram_j: 0.3,
            seconds: 3.0,
        });
        let m = stat.mean();
        assert!((m.package_j - 3.0).abs() < 1e-12);
        assert!((m.core_j - 2.0).abs() < 1e-12);
        assert!((m.seconds - 2.0).abs() < 1e-12);
    }
}
