//! Background energy sampling — the `perf stat -I`-style time series.
//!
//! The paper's tooling reads RAPL at method boundaries; operators also
//! want a wall-clock time series (power over time). The sampler spawns a
//! thread that reads an [`crate::EnergyMeter`] at a fixed interval and
//! streams [`PowerSample`]s over a bounded mpsc channel — and doubles as a
//! stress test of the meter's thread-safety.

use crate::{EnergyMeter, EnergyReading};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// One sample of the time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sample index (0-based).
    pub index: u64,
    /// Reading at sample time.
    pub reading: EnergyReading,
    /// Average package watts since the previous sample
    /// (0 for the first sample).
    pub package_watts: f64,
}

/// A running sampler; dropping it stops the thread.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    rx: Receiver<PowerSample>,
}

impl Sampler {
    /// Start sampling `meter` every `interval`. The channel holds up to
    /// `capacity` samples; when full, the oldest are dropped (monitoring
    /// must never block the measured system).
    pub fn start<M: EnergyMeter + 'static>(
        meter: M,
        interval: Duration,
        capacity: usize,
    ) -> Sampler {
        let (tx, rx) = sync_channel(capacity);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut prev: Option<EnergyReading> = None;
            let mut index = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                let reading = meter.read();
                let reg = jepo_trace::Registry::global();
                if reg.is_enabled() {
                    reg.counter("rapl.samples").incr();
                }
                let package_watts = match prev {
                    Some(p) => {
                        let dt = reading.seconds - p.seconds;
                        if dt > 0.0 {
                            (reading.package_j - p.package_j) / dt
                        } else {
                            0.0
                        }
                    }
                    None => 0.0,
                };
                let sample = PowerSample {
                    index,
                    reading,
                    package_watts,
                };
                // When the buffer is full the sample is dropped on the
                // floor: monitoring must never block the measured system.
                match tx.try_send(sample) {
                    Ok(()) | Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => break,
                }
                prev = Some(reading);
                index += 1;
                std::thread::sleep(interval);
            }
        });
        Sampler {
            stop,
            handle: Some(handle),
            rx,
        }
    }

    /// Receive-side of the sample stream.
    pub fn samples(&self) -> &Receiver<PowerSample> {
        &self.rx
    }

    /// Stop the sampler and drain remaining samples.
    pub fn stop(mut self) -> Vec<PowerSample> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.rx.try_iter().collect()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceProfile, SimMeter, SimulatedRapl};

    #[test]
    fn sampler_produces_monotone_readings() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let meter = SimMeter::new(sim.clone());
        let sampler = Sampler::start(meter, Duration::from_millis(2), 1024);
        for _ in 0..20 {
            sim.add_dynamic_energy(0.05);
            sim.advance_seconds(0.01);
            std::thread::sleep(Duration::from_millis(1));
        }
        let samples = sampler.stop();
        assert!(samples.len() >= 3, "got {}", samples.len());
        for w in samples.windows(2) {
            assert!(
                w[1].reading.package_j >= w[0].reading.package_j,
                "monotone energy"
            );
            assert_eq!(w[1].index, w[0].index + 1);
        }
    }

    #[test]
    fn watts_reflect_injected_power() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let meter = SimMeter::new(sim.clone());
        let sampler = Sampler::start(meter, Duration::from_millis(2), 1024);
        // Inject exactly 10 W of dynamic power on the virtual clock.
        for _ in 0..30 {
            sim.add_dynamic_energy(1.0);
            sim.advance_seconds(0.1);
            std::thread::sleep(Duration::from_millis(1));
        }
        let samples = sampler.stop();
        let watts: Vec<f64> = samples.iter().skip(1).map(|s| s.package_watts).collect();
        assert!(!watts.is_empty());
        // 10 W dynamic + 3.2 W idle = 13.2 W expected on the virtual axis.
        let mean = watts.iter().sum::<f64>() / watts.len() as f64;
        assert!((mean - 13.2).abs() < 2.0, "mean watts {mean}");
    }

    #[test]
    fn drop_stops_the_thread() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let sampler = Sampler::start(SimMeter::new(sim), Duration::from_millis(1), 8);
        drop(sampler); // must not hang
    }
}
