//! Background energy sampling — the `perf stat -I`-style time series.
//!
//! The paper's tooling reads RAPL at method boundaries; operators also
//! want a wall-clock time series (power over time). The sampler spawns a
//! thread that reads an [`crate::EnergyMeter`] at a fixed interval and
//! streams [`PowerSample`]s over a bounded mpsc channel — and doubles as a
//! stress test of the meter's thread-safety.

use crate::{EnergyMeter, EnergyReading};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One sample of the time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sample index (0-based).
    pub index: u64,
    /// Reading at sample time.
    pub reading: EnergyReading,
    /// Average package watts since the previous sample
    /// (0 for the first sample).
    pub package_watts: f64,
}

/// Production/delivery accounting for one sampler run. A nonzero
/// `dropped` means the consumer fell behind the sampling rate and the
/// delivered time series has gaps — visible here and via the
/// `rapl.samples.dropped` metric instead of silently biasing analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerSummary {
    /// Samples the thread produced (read + computed).
    pub produced: u64,
    /// Samples that were dropped because the channel was full.
    pub dropped: u64,
}

impl SamplerSummary {
    /// Samples actually handed to the channel.
    pub fn delivered(&self) -> u64 {
        self.produced - self.dropped
    }
}

struct Stats {
    produced: AtomicU64,
    dropped: AtomicU64,
}

/// A running sampler; dropping it stops the thread.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    rx: Receiver<PowerSample>,
    stats: Arc<Stats>,
}

impl Sampler {
    /// Start sampling `meter` every `interval`. The channel holds up to
    /// `capacity` samples; when full, the oldest are dropped (monitoring
    /// must never block the measured system) — and counted, see
    /// [`Sampler::summary`].
    pub fn start<M: EnergyMeter + 'static>(
        meter: M,
        interval: Duration,
        capacity: usize,
    ) -> Sampler {
        Sampler::spawn(move || meter.read(), interval, capacity)
    }

    /// Start sampling a wrap-corrected [`jepo_trace::EnergyProbe`] (e.g.
    /// [`crate::CounterProbe`]) every `interval`. The probe supplies
    /// cumulative package joules; elapsed wall time supplies the clock,
    /// so `package_watts` is real watts over the probe's domain.
    pub fn start_probe<P: jepo_trace::EnergyProbe + 'static>(
        probe: Arc<P>,
        interval: Duration,
        capacity: usize,
    ) -> Sampler {
        let epoch = Instant::now();
        Sampler::spawn(
            move || {
                let package_j = probe.total_joules();
                EnergyReading {
                    package_j,
                    core_j: 0.0,
                    uncore_j: 0.0,
                    dram_j: 0.0,
                    seconds: epoch.elapsed().as_secs_f64(),
                }
            },
            interval,
            capacity,
        )
    }

    fn spawn<F: FnMut() -> EnergyReading + Send + 'static>(
        mut read: F,
        interval: Duration,
        capacity: usize,
    ) -> Sampler {
        let (tx, rx) = sync_channel(capacity);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let stats = Arc::new(Stats {
            produced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        let stats2 = stats.clone();
        let handle = std::thread::spawn(move || {
            let mut prev: Option<EnergyReading> = None;
            let mut index = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                let reading = read();
                let reg = jepo_trace::Registry::global();
                if reg.is_enabled() {
                    reg.counter("rapl.samples").incr();
                }
                let package_watts = match prev {
                    Some(p) => {
                        let dt = reading.seconds - p.seconds;
                        if dt > 0.0 {
                            (reading.package_j - p.package_j) / dt
                        } else {
                            0.0
                        }
                    }
                    None => 0.0,
                };
                let sample = PowerSample {
                    index,
                    reading,
                    package_watts,
                };
                stats2.produced.fetch_add(1, Ordering::Relaxed);
                // When the buffer is full the sample is dropped on the
                // floor: monitoring must never block the measured
                // system. But never silently — the drop is counted.
                match tx.try_send(sample) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        stats2.dropped.fetch_add(1, Ordering::Relaxed);
                        if reg.is_enabled() {
                            reg.counter("rapl.samples.dropped").incr();
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
                prev = Some(reading);
                index += 1;
                std::thread::sleep(interval);
            }
        });
        Sampler {
            stop,
            handle: Some(handle),
            rx,
            stats,
        }
    }

    /// Receive-side of the sample stream.
    pub fn samples(&self) -> &Receiver<PowerSample> {
        &self.rx
    }

    /// Production/drop accounting so far.
    pub fn summary(&self) -> SamplerSummary {
        SamplerSummary {
            produced: self.stats.produced.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
        }
    }

    /// Stop the sampler and drain remaining samples.
    pub fn stop(mut self) -> Vec<PowerSample> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.rx.try_iter().collect()
    }

    /// Stop the sampler, returning the drained samples plus the final
    /// production/drop summary.
    pub fn stop_with_summary(self) -> (Vec<PowerSample>, SamplerSummary) {
        let stats = self.stats.clone();
        let samples = self.stop();
        let summary = SamplerSummary {
            produced: stats.produced.load(Ordering::Relaxed),
            dropped: stats.dropped.load(Ordering::Relaxed),
        };
        (samples, summary)
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceProfile, SimMeter, SimulatedRapl};

    #[test]
    fn sampler_produces_monotone_readings() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let meter = SimMeter::new(sim.clone());
        let sampler = Sampler::start(meter, Duration::from_millis(2), 1024);
        for _ in 0..20 {
            sim.add_dynamic_energy(0.05);
            sim.advance_seconds(0.01);
            std::thread::sleep(Duration::from_millis(1));
        }
        let samples = sampler.stop();
        assert!(samples.len() >= 3, "got {}", samples.len());
        for w in samples.windows(2) {
            assert!(
                w[1].reading.package_j >= w[0].reading.package_j,
                "monotone energy"
            );
            assert_eq!(w[1].index, w[0].index + 1);
        }
    }

    #[test]
    fn watts_reflect_injected_power() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let meter = SimMeter::new(sim.clone());
        let sampler = Sampler::start(meter, Duration::from_millis(2), 1024);
        // Inject exactly 10 W of dynamic power on the virtual clock.
        for _ in 0..30 {
            sim.add_dynamic_energy(1.0);
            sim.advance_seconds(0.1);
            std::thread::sleep(Duration::from_millis(1));
        }
        let samples = sampler.stop();
        let watts: Vec<f64> = samples.iter().skip(1).map(|s| s.package_watts).collect();
        assert!(!watts.is_empty());
        // 10 W dynamic + 3.2 W idle = 13.2 W expected on the virtual axis.
        let mean = watts.iter().sum::<f64>() / watts.len() as f64;
        assert!((mean - 13.2).abs() < 2.0, "mean watts {mean}");
    }

    #[test]
    fn drop_stops_the_thread() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let sampler = Sampler::start(SimMeter::new(sim), Duration::from_millis(1), 8);
        drop(sampler); // must not hang
    }

    #[test]
    fn full_channel_drops_are_counted_not_silent() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        // Capacity 2 and nobody draining: the thread must keep running
        // and count every overflow.
        let sampler = Sampler::start(SimMeter::new(sim), Duration::from_micros(200), 2);
        while sampler.summary().dropped < 5 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let (samples, summary) = sampler.stop_with_summary();
        assert!(summary.dropped >= 5, "{summary:?}");
        assert_eq!(summary.delivered(), summary.produced - summary.dropped);
        // Drained samples = delivered (channel never loses accepted ones).
        assert_eq!(samples.len() as u64, summary.delivered(), "{summary:?}");
    }

    #[test]
    fn no_drops_when_consumer_keeps_up() {
        let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
        let sampler = Sampler::start(SimMeter::new(sim), Duration::from_millis(1), 4096);
        std::thread::sleep(Duration::from_millis(20));
        let (_, summary) = sampler.stop_with_summary();
        assert!(summary.produced > 0);
        assert_eq!(summary.dropped, 0, "{summary:?}");
    }

    /// Satellite test: sampling attribution across a forced 32-bit RAPL
    /// counter wrap mid-interval (the probe.rs forced-wrap harness,
    /// driven through the probe-backed sampler). The wrap-corrected
    /// cumulative series must attribute the energy actually spent, with
    /// no negative interval delta.
    #[test]
    fn probe_sampler_attributes_across_a_forced_wrap() {
        let sim = SimulatedRapl::new(DeviceProfile::laptop_i5_3317u());
        let units = sim.units_struct();
        // Package counter starts at raw offset 0x1000_0000; joules to
        // the wrap point from there:
        let to_wrap = units.raw_to_joules((u32::MAX as u64 + 1) - 0x1000_0000);
        let spend = to_wrap + 100.0;
        let probe = Arc::new(crate::probe::package_probe(&sim).unwrap());
        let sampler = Sampler::start_probe(probe, Duration::from_millis(1), 4096);
        // Cross the wrap in two chunks with sample intervals in between,
        // so the reader (≤ 1 wrap per read) sees the boundary mid-series.
        sim.add_dynamic_energy(to_wrap - 50.0);
        std::thread::sleep(Duration::from_millis(10));
        sim.add_dynamic_energy(150.0);
        std::thread::sleep(Duration::from_millis(10));
        let (samples, summary) = sampler.stop_with_summary();
        assert_eq!(summary.dropped, 0, "{summary:?}");
        assert!(samples.len() >= 4, "got {}", samples.len());
        // Cumulative, monotone, wrap-corrected: every interval delta is
        // ≥ 0 even though the raw counter wrapped mid-series.
        for w in samples.windows(2) {
            assert!(
                w[1].reading.package_j >= w[0].reading.package_j,
                "negative interval delta across the wrap"
            );
            assert!(w[1].package_watts >= 0.0);
        }
        let total = samples.last().unwrap().reading.package_j;
        assert!(
            (total - spend).abs() < 1.0,
            "attributed {total} J across the wrap, spent {spend} J"
        );
        // Far beyond what a wrap-oblivious raw difference could report.
        let naive_max = units.raw_to_joules(u32::MAX as u64) - to_wrap;
        assert!(total > naive_max, "{total} vs naive ceiling {naive_max}");
    }
}
