//! Decoding of `MSR_RAPL_POWER_UNIT`.
//!
//! RAPL counters are in *hardware units*; the unit register says how many
//! of them make a watt / joule / second. Getting this decoding wrong is the
//! classic RAPL bug (energy off by 2^16), so it is modelled explicitly and
//! property-tested.

use serde::{Deserialize, Serialize};

/// Decoded RAPL units.
///
/// Each field is the raw exponent `e`; the physical unit is `1 / 2^e`
/// (watts, joules, seconds respectively).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaplUnits {
    /// Power unit exponent (bits 3:0). Default 3 → 1/8 W.
    pub power_exp: u8,
    /// Energy unit exponent (bits 12:8). Default 16 → 15.26 µJ.
    /// (Atom parts use 5; Haswell DRAM uses a fixed 2^-16 override.)
    pub energy_exp: u8,
    /// Time unit exponent (bits 19:16). Default 10 → 976 µs.
    pub time_exp: u8,
}

impl Default for RaplUnits {
    /// The values virtually all Core-family parts report, including the
    /// paper's i5-3317U.
    fn default() -> Self {
        RaplUnits {
            power_exp: 3,
            energy_exp: 16,
            time_exp: 10,
        }
    }
}

impl RaplUnits {
    /// Decode from the raw `MSR_RAPL_POWER_UNIT` value.
    pub fn from_msr(raw: u64) -> RaplUnits {
        RaplUnits {
            power_exp: (raw & 0xF) as u8,
            energy_exp: ((raw >> 8) & 0x1F) as u8,
            time_exp: ((raw >> 16) & 0xF) as u8,
        }
    }

    /// Encode back into the raw MSR layout.
    pub fn to_msr(self) -> u64 {
        (self.power_exp as u64 & 0xF)
            | ((self.energy_exp as u64 & 0x1F) << 8)
            | ((self.time_exp as u64 & 0xF) << 16)
    }

    /// Joules represented by one raw energy count.
    pub fn joules_per_count(self) -> f64 {
        1.0 / f64::from(1u32 << self.energy_exp)
    }

    /// Watts represented by one raw power count.
    pub fn watts_per_count(self) -> f64 {
        1.0 / f64::from(1u32 << self.power_exp)
    }

    /// Seconds represented by one raw time count.
    pub fn seconds_per_count(self) -> f64 {
        1.0 / f64::from(1u32 << self.time_exp)
    }

    /// Convert a raw energy counter value to joules.
    pub fn raw_to_joules(self, raw: u64) -> f64 {
        raw as f64 * self.joules_per_count()
    }

    /// Convert joules to raw counts (rounding down, as the hardware does —
    /// sub-unit energy accumulates internally, which the simulator models).
    pub fn joules_to_raw(self, joules: f64) -> u64 {
        (joules / self.joules_per_count()).floor().max(0.0) as u64
    }

    /// Time before a 32-bit energy counter wraps at the given average
    /// power, in seconds. At the default unit and 17 W (the i5-3317U TDP)
    /// this is about 64 minutes — short enough that the paper's multi-run
    /// protocol must (and our [`crate::CounterReader`] does) handle wraps.
    pub fn wrap_seconds_at(self, watts: f64) -> f64 {
        (u32::MAX as f64 * self.joules_per_count()) / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_units_match_core_family() {
        let u = RaplUnits::default();
        assert!((u.joules_per_count() - 15.258789e-6).abs() < 1e-9);
        assert!((u.watts_per_count() - 0.125).abs() < 1e-12);
        assert!((u.seconds_per_count() - 976.5625e-6).abs() < 1e-9);
    }

    #[test]
    fn default_msr_value_is_0xa1003() {
        // The exact raw value Core parts report.
        assert_eq!(RaplUnits::default().to_msr(), 0x000A_1003);
        assert_eq!(RaplUnits::from_msr(0x000A_1003), RaplUnits::default());
    }

    #[test]
    fn wrap_time_is_about_an_hour_at_tdp() {
        let secs = RaplUnits::default().wrap_seconds_at(17.0);
        assert!(secs > 3500.0 && secs < 4000.0, "got {secs}");
    }

    #[test]
    fn joules_roundtrip_within_one_count() {
        let u = RaplUnits::default();
        for j in [0.0, 1e-6, 0.5, 1.0, 100.0, 65536.0] {
            let raw = u.joules_to_raw(j);
            let back = u.raw_to_joules(raw);
            assert!(back <= j + 1e-12);
            assert!(j - back < u.joules_per_count() + 1e-12);
        }
    }

    proptest! {
        #[test]
        fn msr_roundtrip(power in 0u8..16, energy in 0u8..32, time in 0u8..16) {
            let u = RaplUnits { power_exp: power, energy_exp: energy, time_exp: time };
            prop_assert_eq!(RaplUnits::from_msr(u.to_msr()), u);
        }

        #[test]
        fn raw_to_joules_is_monotone(a in 0u64..1u64<<33, b in 0u64..1u64<<33) {
            let u = RaplUnits::default();
            if a <= b {
                prop_assert!(u.raw_to_joules(a) <= u.raw_to_joules(b));
            }
        }

        #[test]
        fn joules_to_raw_never_overshoots(j in 0.0f64..1e9) {
            let u = RaplUnits::default();
            prop_assert!(u.raw_to_joules(u.joules_to_raw(j)) <= j + 1e-9);
        }
    }
}
