//! Error type shared by all RAPL backends.

use std::fmt;

/// Errors produced while accessing RAPL state (simulated or real).
#[derive(Debug)]
pub enum RaplError {
    /// The requested MSR address is not part of the RAPL register map.
    UnknownRegister(u32),
    /// The requested domain is not supported by this device
    /// (e.g. PSys on pre-Skylake parts, PP1 on servers).
    UnsupportedDomain(crate::Domain),
    /// A hardware backend could not be opened (missing `/dev/cpu/*/msr`,
    /// missing powercap sysfs tree, or insufficient privileges).
    BackendUnavailable(String),
    /// An I/O error while talking to a hardware backend.
    Io(std::io::Error),
    /// A value read from hardware or a config file failed validation.
    Malformed(String),
}

impl fmt::Display for RaplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaplError::UnknownRegister(addr) => {
                write!(f, "unknown RAPL MSR address {addr:#x}")
            }
            RaplError::UnsupportedDomain(d) => {
                write!(f, "RAPL domain {d:?} not supported by this device")
            }
            RaplError::BackendUnavailable(why) => {
                write!(f, "RAPL backend unavailable: {why}")
            }
            RaplError::Io(e) => write!(f, "RAPL I/O error: {e}"),
            RaplError::Malformed(why) => write!(f, "malformed RAPL value: {why}"),
        }
    }
}

impl std::error::Error for RaplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RaplError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RaplError {
    fn from(e: std::io::Error) -> Self {
        RaplError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<RaplError> = vec![
            RaplError::UnknownRegister(0x611),
            RaplError::UnsupportedDomain(crate::Domain::Psys),
            RaplError::BackendUnavailable("no msr module".into()),
            RaplError::Io(std::io::Error::other("x")),
            RaplError::Malformed("bad unit field".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_preserves_source() {
        let e = RaplError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
