//! Kernel op-accounting microbench — the numbers behind the scoreboard
//! rearchitecture.
//!
//! Compares two accounting designs on the classifier hot path:
//!
//! * **atomic** — the pre-scoreboard design: every charged op is an
//!   atomic RMW on a shared flat counter array (modelled here as stripe
//!   0 of a one-stripe [`OpCounter`], which is exactly what the old
//!   `AtomicU64` array was). Under threads, all workers contend on the
//!   same cache lines.
//! * **scoreboard** — the current [`Kernel`]: plain `Cell` bumps into a
//!   thread-local scoreboard, flushed in bulk to a cache-line-padded
//!   stripe. Non-atomic counts are also visible to the optimizer, so
//!   the accounting can melt into the surrounding arithmetic.
//!
//! Two shapes are measured, single-threaded and with N threads:
//! *scalar* (one charge per op, `Kernel::add` in a tight loop — the
//! worst case for accounting overhead) and *vector* (`Kernel::dot` on
//! length-64 vectors — a handful of bulk charges amortized over 64
//! mul-adds). Arithmetic is identical between designs, so the ratio
//! isolates the accounting cost. After every run the harness asserts
//! the counter total equals the exact expected op count — the speedup
//! never trades away exactness.
//!
//! Results land in `BENCH_kernel.json`.
//!
//! Usage: `kernel [scalar_iters] [vector_iters] [--threads N]`
//! (defaults 20,000,000 and 200,000; threads defaults to
//! `max(2, cores)`; CI's perf-smoke passes a small budget).

use jepo_ml::{EfficiencyProfile, Kernel, Precision};
use jepo_rapl::{OpCategory, OpCounter};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The old accounting design, reconstructed for the baseline leg:
/// per-op atomic RMWs against one shared (unstriped) counter, with
/// arithmetic matching [`Kernel`] bit-for-bit so the two legs differ
/// only in how they count.
struct AtomicKernel {
    counter: Arc<OpCounter>,
    alu: OpCategory,
    mul: OpCategory,
    f32_round: bool,
}

impl AtomicKernel {
    fn new(profile: EfficiencyProfile) -> AtomicKernel {
        let f32_round = profile.precision == Precision::F32;
        AtomicKernel {
            counter: Arc::new(OpCounter::striped(1)),
            alu: if f32_round {
                OpCategory::FloatAlu
            } else {
                OpCategory::DoubleAlu
            },
            mul: if f32_round {
                OpCategory::FloatMul
            } else {
                OpCategory::DoubleMul
            },
            f32_round,
        }
    }

    #[inline]
    fn quantize(&self, x: f64) -> f64 {
        if self.f32_round {
            x as f32 as f64
        } else {
            x
        }
    }

    /// Counted add — one atomic RMW per op, as the old kernel did.
    #[inline]
    fn add(&self, a: f64, b: f64) -> f64 {
        self.counter.incr(self.alu);
        self.quantize(a + b)
    }

    /// Counted dot with the old bulk charging: one atomic RMW per
    /// category (six per call), all on the shared flat array.
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as u64;
        self.counter.add(OpCategory::ArrayIndex, 2 * n);
        self.counter.add(OpCategory::Branch, n);
        self.counter.add(OpCategory::IntAlu, 2 * n);
        self.counter.add(self.mul, n);
        self.counter.add(self.alu, n);
        self.counter.add(OpCategory::Load, 2 * n);
        let mut s = 0.0;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        self.quantize(s)
    }
}

/// Scalar hot loop: one charged add per iteration. The XOR fold defeats
/// dead-code elimination without serializing on a float dependency.
fn scalar_scoreboard(kernel: &Kernel, iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc ^= kernel.add(i as f64, 0.5).to_bits();
    }
    acc
}

fn scalar_atomic(kernel: &AtomicKernel, iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc ^= kernel.add(i as f64, 0.5).to_bits();
    }
    acc
}

fn vector_scoreboard(kernel: &Kernel, iters: u64, a: &[f64], b: &[f64]) -> u64 {
    let mut acc = 0u64;
    for _ in 0..iters {
        acc ^= kernel.dot(a, b).to_bits();
    }
    acc
}

fn vector_atomic(kernel: &AtomicKernel, iters: u64, a: &[f64], b: &[f64]) -> u64 {
    let mut acc = 0u64;
    for _ in 0..iters {
        acc ^= kernel.dot(a, b).to_bits();
    }
    acc
}

const VECTOR_LEN: usize = 64;

/// One measured leg: run `per_thread` iterations on each of `threads`
/// workers, return elapsed seconds. `spawn_leg` builds the per-thread
/// closure (the scoreboard leg moves a fresh `Kernel` clone into each
/// worker — the kernel is deliberately `!Sync`; the atomic leg shares
/// one counter, which is the contention being measured).
fn timed<'scope, F>(threads: usize, spawn_leg: F) -> f64
where
    F: Fn() -> Box<dyn FnOnce() + Send + 'scope>,
{
    let workers: Vec<_> = (0..threads).map(|_| spawn_leg()).collect();
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in workers {
            s.spawn(w);
        }
    });
    t.elapsed().as_secs_f64()
}

struct Leg {
    atomic_mops: f64,
    scoreboard_mops: f64,
    speedup: f64,
}

/// Measure the scalar shape at a thread count; assert exact totals.
fn scalar_leg(profile: EfficiencyProfile, threads: usize, iters: u64) -> Leg {
    let per_thread = iters / threads as u64;
    let total = per_thread * threads as u64;

    let atomic = AtomicKernel::new(profile);
    let atomic_ref = &atomic;
    let atomic_secs = timed(threads, || {
        Box::new(move || {
            black_box(scalar_atomic(atomic_ref, per_thread));
        })
    });
    assert_eq!(
        atomic.counter.snapshot().get(atomic.alu),
        total,
        "atomic scalar leg lost counts"
    );

    let kernel = Kernel::new(profile);
    let score_secs = timed(threads, || {
        let k = kernel.clone();
        Box::new(move || {
            black_box(scalar_scoreboard(&k, per_thread));
        })
    });
    // Worker clones drop-flushed inside `timed`; the root kernel has
    // nothing local, so the shared counter already holds everything.
    assert_eq!(
        kernel.take_snapshot().get(atomic.alu),
        total,
        "scoreboard scalar leg lost counts"
    );

    Leg {
        atomic_mops: total as f64 / atomic_secs / 1e6,
        scoreboard_mops: total as f64 / score_secs / 1e6,
        speedup: atomic_secs / score_secs.max(1e-12),
    }
}

/// Measure the vector shape (`dot` on length-64 vectors) at a thread
/// count; throughput is charged element-ops per second.
fn vector_leg(profile: EfficiencyProfile, threads: usize, iters: u64) -> Leg {
    let per_thread = iters / threads as u64;
    let total_calls = per_thread * threads as u64;
    let elem_ops = total_calls * VECTOR_LEN as u64;
    let a: Vec<f64> = (0..VECTOR_LEN).map(|i| i as f64 * 0.25).collect();
    let b: Vec<f64> = (0..VECTOR_LEN).map(|i| 1.0 / (i + 1) as f64).collect();

    let atomic = AtomicKernel::new(profile);
    let (atomic_ref, av, bv) = (&atomic, &a, &b);
    let atomic_secs = timed(threads, || {
        Box::new(move || {
            black_box(vector_atomic(atomic_ref, per_thread, av, bv));
        })
    });
    assert_eq!(
        atomic.counter.snapshot().get(atomic.mul),
        elem_ops,
        "atomic vector leg lost counts"
    );

    let kernel = Kernel::new(profile);
    let score_secs = timed(threads, || {
        let k = kernel.clone();
        let (av, bv) = (a.clone(), b.clone());
        Box::new(move || {
            black_box(vector_scoreboard(&k, per_thread, &av, &bv));
        })
    });
    assert_eq!(
        kernel.take_snapshot().get(atomic.mul),
        elem_ops,
        "scoreboard vector leg lost counts"
    );

    Leg {
        atomic_mops: elem_ops as f64 / atomic_secs / 1e6,
        scoreboard_mops: elem_ops as f64 / score_secs / 1e6,
        speedup: atomic_secs / score_secs.max(1e-12),
    }
}

fn leg_json(name: &str, threads: usize, leg: &Leg) -> String {
    format!(
        "    {{\"shape\": \"{name}\", \"threads\": {threads}, \
         \"atomic_mops\": {:.2}, \"scoreboard_mops\": {:.2}, \
         \"speedup\": {:.2}}}",
        leg.atomic_mops, leg.scoreboard_mops, leg.speedup
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let positional: Vec<&String> = {
        let at = args.iter().position(|a| a == "--threads");
        args.iter()
            .enumerate()
            .filter(|(i, _)| at.is_none_or(|j| *i != j && *i != j + 1))
            .map(|(_, a)| a)
            .collect()
    };
    let scalar_iters: u64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000_000);
    let vector_iters: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = threads_flag.unwrap_or_else(|| cores.max(2)).max(1);

    // The optimized profile's F32 quantization is the heavier arithmetic
    // path — the conservative choice for measuring accounting overhead.
    let profile = EfficiencyProfile::optimized();
    eprintln!(
        "kernel microbench: {scalar_iters} scalar ops, {vector_iters} dot calls \
         (len {VECTOR_LEN}), 1 vs {threads} thread(s), {cores} core(s)…"
    );

    let mut legs = Vec::new();
    for (name, t) in [
        ("scalar", 1),
        ("scalar", threads),
        ("vector", 1),
        ("vector", threads),
    ] {
        let leg = if name == "scalar" {
            scalar_leg(profile, t, scalar_iters)
        } else {
            vector_leg(profile, t, vector_iters)
        };
        println!(
            "{name:>7} ×{t}: atomic {:>9.2} Mops/s, scoreboard {:>9.2} Mops/s ({:.2}×)",
            leg.atomic_mops, leg.scoreboard_mops, leg.speedup
        );
        legs.push((name, t, leg));
    }

    let scalar_1t_speedup = legs
        .iter()
        .find(|(n, t, _)| *n == "scalar" && *t == 1)
        .map(|(_, _, l)| l.speedup)
        .unwrap_or(0.0);
    if scalar_1t_speedup < 5.0 {
        eprintln!(
            "warning: single-thread scalar speedup {scalar_1t_speedup:.2}× is below the \
             5× target (noisy host or tiny budget?)"
        );
    }

    let rows: Vec<String> = legs.iter().map(|(n, t, l)| leg_json(n, *t, l)).collect();
    let json = format!(
        "{{\n  \"bench\": \"kernel\",\n  \"scalar_iters\": {scalar_iters},\n  \
         \"vector_iters\": {vector_iters},\n  \"vector_len\": {VECTOR_LEN},\n  \
         \"threads\": {threads},\n  \"available_cores\": {cores},\n  \
         \"scalar_1t_speedup\": {scalar_1t_speedup:.2},\n  \"legs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = "BENCH_kernel.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path}."),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
