//! Analyzer microbench + corpus self-check — the numbers behind the
//! flow-sensitive analysis layer.
//!
//! Six legs over the bundled WEKA-flavoured corpus:
//!
//! * **syntactic ×1** — the PR-2 baseline: pattern rules only.
//! * **syntactic ×N** — the same, fanned over `jepo-pool`.
//! * **flow ×1** — CFG construction + reaching defs + liveness +
//!   dominators per method, then the definition-aware rules.
//! * **flow ×N** — the flow pipeline over `jepo-pool`.
//! * **interproc ×1** — flow plus whole-program call-graph summaries
//!   and the cross-method rules.
//! * **interproc ×N** — the interprocedural pipeline over `jepo-pool`
//!   (facts built once, single-threaded, before the fan-out).
//!
//! The interesting ratios are `flow_overhead_1t` (what the dataflow
//! facts cost over pure pattern matching) and the per-mode parallel
//! speedups. `N` is clamped to `available_parallelism` — timing more
//! threads than cores only measures scheduler thrash, and the old
//! unclamped default published sub-1× "speedups" that were really
//! oversubscription noise. The requested value is still recorded
//! (`requested_threads`, plus a `note` when clamping kicked in) so the
//! JSON says what happened. After every leg the harness asserts the
//! suggestion count is identical across thread counts for that mode —
//! the speedup never trades away determinism (the acceptance criterion
//! is bit-identical output for jobs ∈ {1, 2, 4}; counts are the cheap
//! proxy asserted on every run, and the full equality is pinned in
//! `tests/flow_analysis.rs`).
//!
//! Three more legs measure the incremental layer over a *generated*
//! corpus (`jepo_analyzer::gen`, default 1000 files — the bundled
//! corpus is too small to show cache effects):
//!
//! * **cold** — fresh [`jepo_analyzer::AnalysisCache`] every rep: full
//!   hash + analyze of every file.
//! * **warm** — a pre-warmed cache and an unchanged corpus: hash +
//!   lookup only, zero re-analysis.
//! * **warm_1pct_dirty** — alternating two corpus revisions that differ
//!   in ~1% of files, so every rep re-analyzes exactly that dirty set.
//! * **interproc_cold / interproc_warm** — the same cold/warm pair
//!   under the interprocedural analyzer, whose cache entries carry
//!   call-graph dependency hashes; warm must still be bit-identical
//!   with zero re-analysis.
//!
//! Every incremental leg asserts its output equals the plain
//! (non-cached) analysis of the same revision — warm is bit-identical
//! to cold, never just "close".
//!
//! Results land in `BENCH_analyzer.json`.
//!
//! A second role: `--selfcheck` runs the flow-sensitive extended
//! analyzer over the corpus and compares per-component suggestion
//! counts against the checked-in `expected_analyzer_counts.json`, then
//! gates the incremental layer on the generated corpus: warm output
//! must be bit-identical to cold and the warm leg must be ≥10× faster.
//! Any panic, count drift, byte drift, or speedup shortfall fails the
//! process — CI runs this on every push. Regenerate the expectation
//! file with `--update-expected` after an intentional rule change.
//!
//! Usage: `analyzer [reps] [--threads N] [--gen-files N] [--selfcheck]
//! [--update-expected]` (reps defaults to 40; threads defaults to the
//! core count; gen-files defaults to 1000).

use jepo_analyzer::gen::{generate_project, generate_project_with, GenConfig};
use jepo_analyzer::{AnalysisMode, Analyzer, JavaComponent, Suggestion};
use jepo_core::corpus;
use jepo_jlang::JavaProject;
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

/// Every component the interprocedural analyzer can emit, in a stable
/// order.
fn all_components() -> Vec<JavaComponent> {
    let mut v: Vec<JavaComponent> = JavaComponent::ALL.to_vec();
    v.extend(JavaComponent::EXTENDED);
    v.extend(JavaComponent::INTERPROC);
    v
}

/// Per-component counts as stable `(name, count)` rows.
fn component_counts(suggestions: &[Suggestion]) -> Vec<(String, usize)> {
    all_components()
        .into_iter()
        .map(|c| {
            let n = suggestions.iter().filter(|s| s.component == c).count();
            (format!("{c:?}"), n)
        })
        .collect()
}

fn counts_json(counts: &[(String, usize)], total: usize) -> String {
    let rows: Vec<String> = counts
        .iter()
        .map(|(name, n)| format!("    \"{name}\": {n}"))
        .collect();
    format!(
        "{{\n  \"mode\": \"interproc+extended\",\n  \"total\": {total},\n  \
         \"components\": {{\n{}\n  }}\n}}\n",
        rows.join(",\n")
    )
}

/// Minimal reader for the expectation file: every `"Name": N` pair.
/// Tolerates whitespace and trailing commas; ignores non-count lines.
fn parse_counts(json: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "mode" || key == "components" {
            continue;
        }
        if let Ok(n) = value.trim().parse::<usize>() {
            out.push((key.to_string(), n));
        }
    }
    out
}

const EXPECTED_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/expected_analyzer_counts.json");

/// Compare corpus counts against the checked-in expectation; any drift
/// is a hard failure with a per-component diff.
fn selfcheck(project: &JavaProject) -> Result<(), String> {
    let suggestions = Analyzer::interprocedural().analyze_project(project);
    let got = component_counts(&suggestions);
    let expected_src = std::fs::read_to_string(EXPECTED_PATH)
        .map_err(|e| format!("cannot read {EXPECTED_PATH}: {e} (run --update-expected)"))?;
    let expected = parse_counts(&expected_src);
    let mut drift = Vec::new();
    let lookup =
        |rows: &[(String, usize)], key: &str| rows.iter().find(|(k, _)| k == key).map(|(_, n)| *n);
    if let Some(t) = lookup(&expected, "total") {
        if t != suggestions.len() {
            drift.push(format!("total: expected {t}, got {}", suggestions.len()));
        }
    }
    for (name, n) in &got {
        match lookup(&expected, name) {
            Some(e) if e == *n => {}
            Some(e) => drift.push(format!("{name}: expected {e}, got {n}")),
            None => drift.push(format!("{name}: not in expectation file, got {n}")),
        }
    }
    if drift.is_empty() {
        println!(
            "selfcheck OK: {} suggestions across {} components match {}",
            suggestions.len(),
            got.iter().filter(|(_, n)| *n > 0).count(),
            EXPECTED_PATH
        );
        Ok(())
    } else {
        Err(format!(
            "suggestion counts drifted from {EXPECTED_PATH}:\n  {}\n\
             (if intentional, regenerate with --update-expected)",
            drift.join("\n  ")
        ))
    }
}

/// Gate the incremental layer: over a generated corpus, warm output
/// must be byte-identical to cold (every field, impact to the last
/// bit) and the warm leg must be ≥10× faster than cold. Timings take
/// the best of three runs per leg so a noisy CI box cannot fail a
/// genuinely fast cache.
fn incremental_selfcheck(gen_files: usize, threads: usize) -> Result<(), String> {
    let cfg = GenConfig {
        files: gen_files,
        ..GenConfig::default()
    };
    let project = generate_project(&cfg);
    let analyzer = Analyzer::with_extensions();
    let cold_ref = analyzer.analyze_project_jobs(&project, threads);

    fn best_of<F: FnMut() -> Vec<Suggestion>>(runs: usize, mut f: F) -> (f64, Vec<Suggestion>) {
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..runs {
            let t = Instant::now();
            out = black_box(f());
            best = best.min(t.elapsed().as_secs_f64());
        }
        (best, out)
    }

    let (cold_secs, cold_out) = best_of(3, || {
        let mut cache = analyzer.new_cache();
        analyzer.analyze_project_incremental_jobs(&project, &mut cache, threads)
    });
    if cold_out != cold_ref {
        return Err("incremental cold output differs from plain analysis".into());
    }

    let mut cache = analyzer.new_cache();
    analyzer.analyze_project_incremental_jobs(&project, &mut cache, threads);
    let (warm_secs, warm_out) = best_of(3, || {
        analyzer.analyze_project_incremental_jobs(&project, &mut cache, threads)
    });
    if warm_out != cold_ref {
        return Err("warm output is not bit-identical to cold".into());
    }

    let speedup = cold_secs / warm_secs.max(1e-12);
    if speedup < 10.0 {
        return Err(format!(
            "warm leg only {speedup:.1}× faster than cold over {gen_files} generated \
             files (gate: ≥10×; cold {:.2} ms, warm {:.2} ms)",
            cold_secs * 1e3,
            warm_secs * 1e3
        ));
    }
    println!(
        "incremental selfcheck OK: {gen_files} generated files, {} suggestions, \
         warm ≡ cold, warm {speedup:.1}× faster (cold {:.2} ms, warm {:.2} ms)",
        cold_ref.len(),
        cold_secs * 1e3,
        warm_secs * 1e3
    );

    // Same gate under the interprocedural analyzer: its cache entries
    // additionally carry call-graph dependency hashes, and a warm run
    // must still be bit-identical to cold with zero re-analysis. (No
    // timing gate here — dep-hash recomputation makes warm slower than
    // the flow cache by design, and the flow gate above already proves
    // the cache machinery is fast.)
    let ia = Analyzer::interprocedural();
    let i_ref = ia.analyze_project_jobs(&project, threads);
    let mut icache = ia.new_cache();
    let i_cold = ia.analyze_project_incremental_jobs(&project, &mut icache, threads);
    if i_cold != i_ref {
        return Err("interproc cold output differs from plain analysis".into());
    }
    let i_warm = ia.analyze_project_incremental_jobs(&project, &mut icache, threads);
    if i_warm != i_ref {
        return Err("interproc warm output is not bit-identical to cold".into());
    }
    if icache.stats().last_misses != 0 {
        return Err(format!(
            "interproc warm run re-analyzed {} file(s); dependency hashes are unstable",
            icache.stats().last_misses
        ));
    }
    println!(
        "interproc incremental selfcheck OK: {} suggestions, warm ≡ cold, 0 misses",
        i_ref.len()
    );
    Ok(())
}

struct Leg {
    mode: &'static str,
    threads: usize,
    runs_per_s: f64,
    secs_per_run: f64,
    suggestions: usize,
}

/// The benched analyzer for a mode: extended rules for the syntactic
/// and flow legs, the full rule set for the interprocedural leg.
fn analyzer_for(mode: AnalysisMode) -> Analyzer {
    match mode {
        AnalysisMode::Interprocedural => Analyzer::interprocedural(),
        _ => Analyzer::with_extensions().with_mode(mode),
    }
}

/// Time `reps` full-project analyses at a given mode and job count.
fn run_leg(project: &JavaProject, mode: AnalysisMode, jobs: usize, reps: u32) -> Leg {
    let analyzer = analyzer_for(mode);
    // Warm-up run also yields the suggestion count for the invariance
    // assertion below.
    let first = analyzer.analyze_project_jobs(project, jobs);
    let t = Instant::now();
    for _ in 0..reps {
        black_box(analyzer.analyze_project_jobs(project, jobs));
    }
    let secs = t.elapsed().as_secs_f64();
    Leg {
        mode: match mode {
            AnalysisMode::Syntactic => "syntactic",
            AnalysisMode::FlowSensitive => "flow",
            AnalysisMode::Interprocedural => "interproc",
        },
        threads: jobs,
        runs_per_s: reps as f64 / secs.max(1e-12),
        secs_per_run: secs / reps as f64,
        suggestions: first.len(),
    }
}

fn leg_json(leg: &Leg) -> String {
    format!(
        "    {{\"mode\": \"{}\", \"threads\": {}, \"runs_per_s\": {:.2}, \
         \"ms_per_run\": {:.3}, \"suggestions\": {}}}",
        leg.mode,
        leg.threads,
        leg.runs_per_s,
        leg.secs_per_run * 1e3,
        leg.suggestions
    )
}

/// One incremental leg: `(name, secs_per_run, suggestions)`.
struct IncrLeg {
    name: &'static str,
    secs_per_run: f64,
    suggestions: usize,
}

/// Results of the incremental legs over the generated corpus.
struct IncrBench {
    generated_files: usize,
    dirty_files: usize,
    reps: u32,
    legs: Vec<IncrLeg>,
    warm_speedup: f64,
}

/// Run the cold / warm / warm_1pct_dirty legs over a generated corpus.
///
/// Every leg's output is asserted equal to the plain (cache-free)
/// analysis of the same revision — the timings are only meaningful if
/// the cache never changes the answer.
fn run_incremental_legs(gen_files: usize, threads: usize, reps: u32) -> IncrBench {
    let cfg = GenConfig {
        files: gen_files,
        ..GenConfig::default()
    };
    // ~1% of files (at least one) flips between revisions.
    let dirty: HashSet<usize> = (0..gen_files).step_by(100).collect();
    let rev0 = generate_project(&cfg);
    let rev1 = generate_project_with(&cfg, |i| u64::from(dirty.contains(&i)));
    let analyzer = Analyzer::with_extensions();
    let cold_ref = analyzer.analyze_project_jobs(&rev0, threads);
    let cold_ref1 = analyzer.analyze_project_jobs(&rev1, threads);

    let mut legs = Vec::new();

    // cold: a fresh cache every rep — full hash + analyze.
    let t = Instant::now();
    let mut out = Vec::new();
    for _ in 0..reps {
        let mut cache = analyzer.new_cache();
        out = black_box(analyzer.analyze_project_incremental_jobs(&rev0, &mut cache, threads));
    }
    let cold_secs = t.elapsed().as_secs_f64() / reps as f64;
    assert_eq!(out, cold_ref, "cold incremental ≠ plain analysis");
    legs.push(IncrLeg {
        name: "cold",
        secs_per_run: cold_secs,
        suggestions: out.len(),
    });

    // warm: pre-warmed cache, unchanged corpus — hash + lookup only.
    let mut cache = analyzer.new_cache();
    analyzer.analyze_project_incremental_jobs(&rev0, &mut cache, threads);
    let t = Instant::now();
    for _ in 0..reps {
        out = black_box(analyzer.analyze_project_incremental_jobs(&rev0, &mut cache, threads));
    }
    let warm_secs = t.elapsed().as_secs_f64() / reps as f64;
    assert_eq!(out, cold_ref, "warm output not bit-identical to cold");
    assert_eq!(cache.stats().last_misses, 0, "warm leg must not re-analyze");
    legs.push(IncrLeg {
        name: "warm",
        secs_per_run: warm_secs,
        suggestions: out.len(),
    });

    // warm_1pct_dirty: alternate the two revisions, so each rep sees
    // exactly the dirty set changed relative to the cached state.
    let t = Instant::now();
    for rep in 0..reps {
        let project = if rep % 2 == 0 { &rev1 } else { &rev0 };
        out = black_box(analyzer.analyze_project_incremental_jobs(project, &mut cache, threads));
        assert_eq!(
            cache.stats().last_misses,
            dirty.len() as u64,
            "each rep re-analyzes exactly the ~1% dirty set"
        );
        assert_eq!(
            &out,
            if rep % 2 == 0 { &cold_ref1 } else { &cold_ref },
            "dirty-leg output not bit-identical to plain analysis"
        );
    }
    let dirty_secs = t.elapsed().as_secs_f64() / reps as f64;
    legs.push(IncrLeg {
        name: "warm_1pct_dirty",
        secs_per_run: dirty_secs,
        suggestions: out.len(),
    });

    // interproc_cold / interproc_warm: the dependency-aware cache. Warm
    // pays a whole-program summary rebuild per run (that is what makes
    // callee-edit invalidation possible) but must still be bit-identical
    // with zero re-analysis.
    let ia = Analyzer::interprocedural();
    let i_ref = ia.analyze_project_jobs(&rev0, threads);
    let t = Instant::now();
    for _ in 0..reps {
        let mut cache = ia.new_cache();
        out = black_box(ia.analyze_project_incremental_jobs(&rev0, &mut cache, threads));
    }
    let i_cold_secs = t.elapsed().as_secs_f64() / reps as f64;
    assert_eq!(out, i_ref, "interproc cold incremental ≠ plain analysis");
    legs.push(IncrLeg {
        name: "interproc_cold",
        secs_per_run: i_cold_secs,
        suggestions: out.len(),
    });

    let mut icache = ia.new_cache();
    ia.analyze_project_incremental_jobs(&rev0, &mut icache, threads);
    let t = Instant::now();
    for _ in 0..reps {
        out = black_box(ia.analyze_project_incremental_jobs(&rev0, &mut icache, threads));
    }
    let i_warm_secs = t.elapsed().as_secs_f64() / reps as f64;
    assert_eq!(
        out, i_ref,
        "interproc warm output not bit-identical to cold"
    );
    assert_eq!(
        icache.stats().last_misses,
        0,
        "interproc warm leg must not re-analyze (dep hashes unstable?)"
    );
    legs.push(IncrLeg {
        name: "interproc_warm",
        secs_per_run: i_warm_secs,
        suggestions: out.len(),
    });

    IncrBench {
        generated_files: gen_files,
        dirty_files: dirty.len(),
        reps,
        legs,
        warm_speedup: cold_secs / warm_secs.max(1e-12),
    }
}

fn incr_json(b: &IncrBench) -> String {
    let rows: Vec<String> = b
        .legs
        .iter()
        .map(|l| {
            format!(
                "      {{\"leg\": \"{}\", \"runs_per_s\": {:.2}, \
                 \"ms_per_run\": {:.3}, \"suggestions\": {}}}",
                l.name,
                1.0 / l.secs_per_run.max(1e-12),
                l.secs_per_run * 1e3,
                l.suggestions
            )
        })
        .collect();
    format!(
        "  \"incremental\": {{\n    \"generated_files\": {},\n    \
         \"dirty_files\": {},\n    \"reps\": {},\n    \
         \"warm_speedup\": {:.2},\n    \"legs\": [\n{}\n    ]\n  }}",
        b.generated_files,
        b.dirty_files,
        b.reps,
        b.warm_speedup,
        rows.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let project = corpus::full_corpus();

    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse::<usize>().ok())
    };
    let gen_files = flag_value("--gen-files").unwrap_or(1000).max(1);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if args.iter().any(|a| a == "--update-expected") {
        let suggestions = Analyzer::interprocedural().analyze_project(&project);
        let counts = component_counts(&suggestions);
        let json = counts_json(&counts, suggestions.len());
        std::fs::write(EXPECTED_PATH, &json)
            .unwrap_or_else(|e| panic!("cannot write {EXPECTED_PATH}: {e}"));
        println!("Wrote {EXPECTED_PATH} ({} suggestions).", suggestions.len());
        return;
    }
    if args.iter().any(|a| a == "--selfcheck") {
        if let Err(msg) = selfcheck(&project).and_then(|()| incremental_selfcheck(gen_files, cores))
        {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        return;
    }

    let reps: u32 = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find_map(|s| s.parse().ok())
        .unwrap_or(40);
    // Clamp to physical parallelism: timing more threads than cores
    // measures oversubscription, not speedup. Keep what was asked for
    // so the JSON can say when and why the clamp engaged.
    let requested_threads = flag_value("--threads")
        .unwrap_or_else(|| cores.max(2))
        .max(1);
    let threads = requested_threads.min(cores).max(1);
    let clamp_note = (threads != requested_threads)
        .then(|| format!("threads clamped from {requested_threads} to {cores} available core(s)"));

    eprintln!(
        "analyzer microbench: {} corpus files, {reps} reps per leg, \
         1 vs {threads} job(s), {cores} core(s){}…",
        project.files().len(),
        clamp_note
            .as_deref()
            .map(|n| format!(" [{n}]"))
            .unwrap_or_default()
    );

    let mut legs = Vec::new();
    for (mode, jobs) in [
        (AnalysisMode::Syntactic, 1),
        (AnalysisMode::Syntactic, threads),
        (AnalysisMode::FlowSensitive, 1),
        (AnalysisMode::FlowSensitive, threads),
        (AnalysisMode::Interprocedural, 1),
        (AnalysisMode::Interprocedural, threads),
    ] {
        let leg = run_leg(&project, mode, jobs, reps);
        println!(
            "{:>9} ×{}: {:>8.2} runs/s ({:.3} ms/run, {} suggestions)",
            leg.mode,
            leg.threads,
            leg.runs_per_s,
            leg.secs_per_run * 1e3,
            leg.suggestions
        );
        legs.push(leg);
    }

    // Determinism proxy: thread count must never change what the
    // analyzer finds (the full bit-identity is a tier-1 test).
    for mode in ["syntactic", "flow", "interproc"] {
        let counts: Vec<usize> = legs
            .iter()
            .filter(|l| l.mode == mode)
            .map(|l| l.suggestions)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{mode} suggestion count varies with thread count: {counts:?}"
        );
    }

    let time_of = |mode: &str, t: usize| {
        legs.iter()
            .find(|l| l.mode == mode && l.threads == t)
            .map(|l| l.secs_per_run)
            .unwrap_or(f64::NAN)
    };
    let flow_overhead_1t = time_of("flow", 1) / time_of("syntactic", 1).max(1e-12);
    let interproc_overhead_1t = time_of("interproc", 1) / time_of("flow", 1).max(1e-12);
    let flow_speedup = time_of("flow", 1) / time_of("flow", threads).max(1e-12);
    let syntactic_speedup = time_of("syntactic", 1) / time_of("syntactic", threads).max(1e-12);
    let interproc_speedup = time_of("interproc", 1) / time_of("interproc", threads).max(1e-12);
    println!(
        "flow overhead ×1: {flow_overhead_1t:.2}×; interproc overhead over flow ×1: \
         {interproc_overhead_1t:.2}×; parallel speedup ×{threads}: \
         syntactic {syntactic_speedup:.2}×, flow {flow_speedup:.2}×, \
         interproc {interproc_speedup:.2}×"
    );

    // Incremental legs run fewer reps — one cold rep is a full
    // analysis of the generated corpus, orders of magnitude more work
    // than a corpus microbench rep.
    let incr_reps = (reps / 8).max(2);
    eprintln!(
        "incremental legs: {gen_files} generated files, {incr_reps} reps per leg, \
         {threads} job(s)…"
    );
    let incr = run_incremental_legs(gen_files, threads, incr_reps);
    for leg in &incr.legs {
        println!(
            "{:>16}: {:>8.2} runs/s ({:.3} ms/run, {} suggestions)",
            leg.name,
            1.0 / leg.secs_per_run.max(1e-12),
            leg.secs_per_run * 1e3,
            leg.suggestions
        );
    }
    println!(
        "incremental warm speedup over cold: {:.1}× ({} files, {} dirty per rep)",
        incr.warm_speedup, incr.generated_files, incr.dirty_files
    );

    let rows: Vec<String> = legs.iter().map(leg_json).collect();
    let note_field = clamp_note
        .as_deref()
        .map(|n| format!("  \"note\": \"{n}\",\n"))
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"analyzer\",\n  \"corpus_files\": {},\n  \
         \"reps\": {reps},\n  \"threads\": {threads},\n  \
         \"requested_threads\": {requested_threads},\n  \
         \"available_cores\": {cores},\n{note_field}  \
         \"flow_overhead_1t\": {flow_overhead_1t:.2},\n  \
         \"interproc_overhead_1t\": {interproc_overhead_1t:.2},\n  \
         \"syntactic_speedup\": {syntactic_speedup:.2},\n  \
         \"flow_speedup\": {flow_speedup:.2},\n  \
         \"interproc_speedup\": {interproc_speedup:.2},\n  \"legs\": [\n{}\n  ],\n{}\n}}\n",
        project.files().len(),
        rows.join(",\n"),
        incr_json(&incr)
    );
    let path = "BENCH_analyzer.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path}."),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
