//! Analyzer microbench + corpus self-check — the numbers behind the
//! flow-sensitive analysis layer.
//!
//! Four legs over the bundled WEKA-flavoured corpus, all with the
//! extended (Table I + flow-only) rule set:
//!
//! * **syntactic ×1** — the PR-2 baseline: pattern rules only.
//! * **syntactic ×N** — the same, fanned over `jepo-pool`.
//! * **flow ×1** — CFG construction + reaching defs + liveness +
//!   dominators per method, then the definition-aware rules.
//! * **flow ×N** — the flow pipeline over `jepo-pool`.
//!
//! The interesting ratios are `flow_overhead_1t` (what the dataflow
//! facts cost over pure pattern matching) and the per-mode parallel
//! speedups. After every leg the harness asserts the suggestion count
//! is identical across thread counts for that mode — the speedup never
//! trades away determinism (the acceptance criterion is bit-identical
//! output for jobs ∈ {1, 2, 4}; counts are the cheap proxy asserted on
//! every run, and the full equality is pinned in `tests/flow_analysis.rs`).
//!
//! Results land in `BENCH_analyzer.json`.
//!
//! A second role: `--selfcheck` runs the flow-sensitive extended
//! analyzer over the corpus and compares per-component suggestion
//! counts against the checked-in `expected_analyzer_counts.json`. Any
//! panic or count drift fails the process — CI runs this on every push
//! so a rule regression shows up as a reviewable diff in the
//! expectation file, not a silent behaviour change. Regenerate with
//! `--update-expected` after an intentional rule change.
//!
//! Usage: `analyzer [reps] [--threads N] [--selfcheck] [--update-expected]`
//! (reps defaults to 40; threads defaults to `max(2, cores)`).

use jepo_analyzer::{AnalysisMode, Analyzer, JavaComponent, Suggestion};
use jepo_core::corpus;
use jepo_jlang::JavaProject;
use std::hint::black_box;
use std::time::Instant;

/// Every component the extended analyzer can emit, in a stable order.
fn all_components() -> Vec<JavaComponent> {
    let mut v: Vec<JavaComponent> = JavaComponent::ALL.to_vec();
    v.extend(JavaComponent::EXTENDED);
    v
}

/// Per-component counts as stable `(name, count)` rows.
fn component_counts(suggestions: &[Suggestion]) -> Vec<(String, usize)> {
    all_components()
        .into_iter()
        .map(|c| {
            let n = suggestions.iter().filter(|s| s.component == c).count();
            (format!("{c:?}"), n)
        })
        .collect()
}

fn counts_json(counts: &[(String, usize)], total: usize) -> String {
    let rows: Vec<String> = counts
        .iter()
        .map(|(name, n)| format!("    \"{name}\": {n}"))
        .collect();
    format!(
        "{{\n  \"mode\": \"flow+extended\",\n  \"total\": {total},\n  \
         \"components\": {{\n{}\n  }}\n}}\n",
        rows.join(",\n")
    )
}

/// Minimal reader for the expectation file: every `"Name": N` pair.
/// Tolerates whitespace and trailing commas; ignores non-count lines.
fn parse_counts(json: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "mode" || key == "components" {
            continue;
        }
        if let Ok(n) = value.trim().parse::<usize>() {
            out.push((key.to_string(), n));
        }
    }
    out
}

const EXPECTED_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/expected_analyzer_counts.json");

/// Compare corpus counts against the checked-in expectation; any drift
/// is a hard failure with a per-component diff.
fn selfcheck(project: &JavaProject) -> Result<(), String> {
    let suggestions = Analyzer::with_extensions().analyze_project(project);
    let got = component_counts(&suggestions);
    let expected_src = std::fs::read_to_string(EXPECTED_PATH)
        .map_err(|e| format!("cannot read {EXPECTED_PATH}: {e} (run --update-expected)"))?;
    let expected = parse_counts(&expected_src);
    let mut drift = Vec::new();
    let lookup =
        |rows: &[(String, usize)], key: &str| rows.iter().find(|(k, _)| k == key).map(|(_, n)| *n);
    if let Some(t) = lookup(&expected, "total") {
        if t != suggestions.len() {
            drift.push(format!("total: expected {t}, got {}", suggestions.len()));
        }
    }
    for (name, n) in &got {
        match lookup(&expected, name) {
            Some(e) if e == *n => {}
            Some(e) => drift.push(format!("{name}: expected {e}, got {n}")),
            None => drift.push(format!("{name}: not in expectation file, got {n}")),
        }
    }
    if drift.is_empty() {
        println!(
            "selfcheck OK: {} suggestions across {} components match {}",
            suggestions.len(),
            got.iter().filter(|(_, n)| *n > 0).count(),
            EXPECTED_PATH
        );
        Ok(())
    } else {
        Err(format!(
            "suggestion counts drifted from {EXPECTED_PATH}:\n  {}\n\
             (if intentional, regenerate with --update-expected)",
            drift.join("\n  ")
        ))
    }
}

struct Leg {
    mode: &'static str,
    threads: usize,
    runs_per_s: f64,
    secs_per_run: f64,
    suggestions: usize,
}

/// Time `reps` full-project analyses at a given mode and job count.
fn run_leg(project: &JavaProject, mode: AnalysisMode, jobs: usize, reps: u32) -> Leg {
    let analyzer = Analyzer::with_extensions().with_mode(mode);
    // Warm-up run also yields the suggestion count for the invariance
    // assertion below.
    let first = analyzer.analyze_project_jobs(project, jobs);
    let t = Instant::now();
    for _ in 0..reps {
        black_box(analyzer.analyze_project_jobs(project, jobs));
    }
    let secs = t.elapsed().as_secs_f64();
    Leg {
        mode: match mode {
            AnalysisMode::Syntactic => "syntactic",
            AnalysisMode::FlowSensitive => "flow",
        },
        threads: jobs,
        runs_per_s: reps as f64 / secs.max(1e-12),
        secs_per_run: secs / reps as f64,
        suggestions: first.len(),
    }
}

fn leg_json(leg: &Leg) -> String {
    format!(
        "    {{\"mode\": \"{}\", \"threads\": {}, \"runs_per_s\": {:.2}, \
         \"ms_per_run\": {:.3}, \"suggestions\": {}}}",
        leg.mode,
        leg.threads,
        leg.runs_per_s,
        leg.secs_per_run * 1e3,
        leg.suggestions
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let project = corpus::full_corpus();

    if args.iter().any(|a| a == "--update-expected") {
        let suggestions = Analyzer::with_extensions().analyze_project(&project);
        let counts = component_counts(&suggestions);
        let json = counts_json(&counts, suggestions.len());
        std::fs::write(EXPECTED_PATH, &json)
            .unwrap_or_else(|e| panic!("cannot write {EXPECTED_PATH}: {e}"));
        println!("Wrote {EXPECTED_PATH} ({} suggestions).", suggestions.len());
        return;
    }
    if args.iter().any(|a| a == "--selfcheck") {
        if let Err(msg) = selfcheck(&project) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        return;
    }

    let threads_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let reps: u32 = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find_map(|s| s.parse().ok())
        .unwrap_or(40);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = threads_flag.unwrap_or_else(|| cores.max(2)).max(1);

    eprintln!(
        "analyzer microbench: {} corpus files, {reps} reps per leg, \
         1 vs {threads} job(s), {cores} core(s)…",
        project.files().len()
    );

    let mut legs = Vec::new();
    for (mode, jobs) in [
        (AnalysisMode::Syntactic, 1),
        (AnalysisMode::Syntactic, threads),
        (AnalysisMode::FlowSensitive, 1),
        (AnalysisMode::FlowSensitive, threads),
    ] {
        let leg = run_leg(&project, mode, jobs, reps);
        println!(
            "{:>9} ×{}: {:>8.2} runs/s ({:.3} ms/run, {} suggestions)",
            leg.mode,
            leg.threads,
            leg.runs_per_s,
            leg.secs_per_run * 1e3,
            leg.suggestions
        );
        legs.push(leg);
    }

    // Determinism proxy: thread count must never change what the
    // analyzer finds (the full bit-identity is a tier-1 test).
    for mode in ["syntactic", "flow"] {
        let counts: Vec<usize> = legs
            .iter()
            .filter(|l| l.mode == mode)
            .map(|l| l.suggestions)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{mode} suggestion count varies with thread count: {counts:?}"
        );
    }

    let time_of = |mode: &str, t: usize| {
        legs.iter()
            .find(|l| l.mode == mode && l.threads == t)
            .map(|l| l.secs_per_run)
            .unwrap_or(f64::NAN)
    };
    let flow_overhead_1t = time_of("flow", 1) / time_of("syntactic", 1).max(1e-12);
    let flow_speedup = time_of("flow", 1) / time_of("flow", threads).max(1e-12);
    let syntactic_speedup = time_of("syntactic", 1) / time_of("syntactic", threads).max(1e-12);
    println!(
        "flow overhead ×1: {flow_overhead_1t:.2}×; parallel speedup ×{threads}: \
         syntactic {syntactic_speedup:.2}×, flow {flow_speedup:.2}×"
    );

    let rows: Vec<String> = legs.iter().map(leg_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"analyzer\",\n  \"corpus_files\": {},\n  \
         \"reps\": {reps},\n  \"threads\": {threads},\n  \
         \"available_cores\": {cores},\n  \
         \"flow_overhead_1t\": {flow_overhead_1t:.2},\n  \
         \"syntactic_speedup\": {syntactic_speedup:.2},\n  \
         \"flow_speedup\": {flow_speedup:.2},\n  \"legs\": [\n{}\n  ]\n}}\n",
        project.files().len(),
        rows.join(",\n")
    );
    let path = "BENCH_analyzer.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path}."),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
