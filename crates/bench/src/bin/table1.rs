//! Regenerate Table I: the eleven Java components, their suggestions,
//! and — beyond the paper's static table — *measured* worst-case energy
//! ratios from microbenchmark pairs executed on the VM.
//!
//! Each component gets an (inefficient, efficient) Java-subset program
//! pair; both run on the energy-modelled VM and the measured ratio is
//! printed next to the paper's claim.

use jepo_bench::pct_more;
use jepo_jvm::Vm;

struct Micro {
    component: &'static str,
    paper_claim: &'static str,
    inefficient: String,
    efficient: String,
    /// Loop-skeleton program whose energy is subtracted from both sides:
    /// the paper's "up to" figures are *marginal* per-operation ratios,
    /// so fixed loop overhead must not dilute them.
    overhead: String,
    /// Separate skeleton for the efficient side when its loop structure
    /// differs (e.g. `System.arraycopy` has 10 iterations, the manual
    /// copy 40,000).
    overhead_efficient: Option<String>,
}

fn wrap(body: &str, decls: &str) -> String {
    format!(
        "class M {{ {decls}
            public static void main(String[] args) {{ {body} }} }}"
    )
}

fn microbenches() -> Vec<Micro> {
    const N: usize = 20_000;
    vec![
        Micro {
            component: "Primitive data types",
            paper_claim: "int is the most energy-efficient",
            inefficient: wrap(
                &format!("double s = 0; for (int i = 0; i < {N}; i++) s += i;"),
                "",
            ),
            efficient: wrap(&format!("int s = 0; for (int i = 0; i < {N}; i++) s += i;"), ""),
            overhead: wrap(&format!("int z = 0; for (int i = 0; i < {}; i++) z = z; ", 20_000), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "Scientific notation",
            paper_claim: "scientific notation is cheaper",
            inefficient: wrap(
                &format!("double s = 0; for (int i = 0; i < {N}; i++) s += 123456.0;"),
                "",
            ),
            efficient: wrap(
                &format!("double s = 0; for (int i = 0; i < {N}; i++) s += 1.23456e5;"),
                "",
            ),
            overhead: wrap(&format!("int z = 0; for (int i = 0; i < {}; i++) z = z; ", 20_000), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "Wrapper classes",
            paper_claim: "Integer is the most energy-efficient wrapper",
            inefficient: wrap(
                &format!("for (int i = 0; i < {}; i++) {{ Double d = 1.5; }}", N / 10),
                "",
            ),
            efficient: wrap(
                &format!("for (int i = 0; i < {}; i++) {{ Integer d = 1; }}", N / 10),
                "",
            ),
            overhead: wrap(&format!("int z = 0; for (int i = 0; i < {}; i++) z = z; ", 20_000/10), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "Static keyword",
            paper_claim: "up to +17,700%",
            inefficient: wrap(
                &format!("for (int i = 0; i < {N}; i++) counter = counter + 1;"),
                "static int counter;",
            ),
            efficient: wrap(
                &format!(
                    "M m = new M(); for (int i = 0; i < {N}; i++) m.field = m.field + 1;"
                ),
                "int field;",
            ),
            overhead: wrap(&format!("int z = 0; for (int i = 0; i < {}; i++) z = z; ", 20_000), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "Arithmetic operators",
            paper_claim: "modulus up to +1,620%",
            inefficient: wrap(
                &format!("int s = 1; for (int i = 1; i < {N}; i++) s = i % 7;"),
                "",
            ),
            efficient: wrap(
                &format!("int s = 1; for (int i = 1; i < {N}; i++) s = i + 7;"),
                "",
            ),
            overhead: wrap(&format!("int z = 0; for (int i = 1; i < {}; i++) z = z; ", 20_000), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "Ternary operator",
            paper_claim: "up to +37% vs if-then-else",
            inefficient: wrap(
                &format!("int s = 0; for (int i = 0; i < {N}; i++) s = i > 5 ? 1 : 2;"),
                "",
            ),
            efficient: wrap(
                &format!(
                    "int s = 0; for (int i = 0; i < {N}; i++) {{ if (i > 5) s = 1; else s = 2; }}"
                ),
                "",
            ),
            overhead: wrap(&format!("int z = 0; for (int i = 0; i < {}; i++) z = z; ", 20_000), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "Short circuit operator",
            paper_claim: "put the common case first",
            inefficient: wrap(
                &format!(
                    "int s = 0; for (int i = 0; i < {N}; i++) {{ if (i > 0 && i == 7) s++; }}"
                ),
                "",
            ),
            efficient: wrap(
                &format!(
                    "int s = 0; for (int i = 0; i < {N}; i++) {{ if (i == 7 && i > 0) s++; }}"
                ),
                "",
            ),
            overhead: wrap(&format!("int z = 0; for (int i = 0; i < {}; i++) z = z; ", 20_000), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "String concatenation operator",
            paper_claim: "StringBuilder.append is much cheaper",
            inefficient: wrap(
                &format!("String s = \"\"; for (int i = 0; i < {}; i++) s = s + \"x\";", 400),
                "",
            ),
            efficient: wrap(
                &format!(
                    "StringBuilder sb = new StringBuilder(); for (int i = 0; i < {}; i++) sb.append(\"x\"); String s = sb.toString();",
                    400
                ),
                "",
            ),
            overhead: wrap("int z = 0; for (int i = 0; i < 400; i++) z = z; ", ""),
            overhead_efficient: None,
        },
        Micro {
            component: "String comparison",
            paper_claim: "compareTo up to +33% vs equals",
            inefficient: wrap(
                &format!(
                    "int r = 0; for (int i = 0; i < {}; i++) r = \"abc\".compareTo(\"abd\");",
                    N / 4
                ),
                "",
            ),
            efficient: wrap(
                &format!(
                    "boolean r = false; for (int i = 0; i < {}; i++) r = \"abc\".equals(\"abd\");",
                    N / 4
                ),
                "",
            ),
            overhead: wrap(&format!("int z = 0; for (int i = 0; i < {}; i++) z = z; ", 20_000/4), ""),
            overhead_efficient: None,
        },
        Micro {
            component: "Arrays copy",
            paper_claim: "System.arraycopy is the most efficient",
            inefficient: wrap(
                "int[] a = new int[4000]; int[] b = new int[4000];
                 for (int r = 0; r < 10; r++) for (int i = 0; i < 4000; i++) b[i] = a[i];",
                "",
            ),
            efficient: wrap(
                "int[] a = new int[4000]; int[] b = new int[4000];
                 for (int r = 0; r < 10; r++) System.arraycopy(a, 0, b, 0, 4000);",
                "",
            ),
            overhead: wrap("int z = 0; for (int r = 0; r < 10; r++) for (int i = 0; i < 4000; i++) z = z; ", ""),
            overhead_efficient: Some(wrap("int[] a = new int[4000]; int[] b = new int[4000]; int z = 0; for (int r = 0; r < 10; r++) z = z; ", "")),
        },
        Micro {
            component: "Array traversal",
            paper_claim: "column traversal up to +793%",
            inefficient: wrap(
                "double[][] m = new double[512][512]; double s = 0;
                 for (int j = 0; j < 512; j++) for (int i = 0; i < 512; i++) s += m[i][j];",
                "",
            ),
            efficient: wrap(
                "double[][] m = new double[512][512]; double s = 0;
                 for (int i = 0; i < 512; i++) for (int j = 0; j < 512; j++) s += m[i][j];",
                "",
            ),
            overhead: wrap("double[][] m = new double[512][512]; int z = 0; for (int j = 0; j < 512; j++) for (int i = 0; i < 512; i++) z = z; ", ""),
            overhead_efficient: None,
        },
    ]
}

fn energy_of(src: &str) -> f64 {
    let mut vm = Vm::from_source(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    vm.run_main()
        .unwrap_or_else(|e| panic!("{e}"))
        .energy
        .package_j
}

fn main() {
    println!("{}", jepo_core::report::table1());
    jepo_bench::banner("Measured worst-case ratios (VM microbenchmarks)");
    println!(
        "{:<32} {:>14} {:>16}",
        "Component", "measured", "paper claim"
    );
    println!("{}", "-".repeat(66));
    for m in microbenches() {
        let ovh = energy_of(&m.overhead);
        let ovh_good = m
            .overhead_efficient
            .as_ref()
            .map(|p| energy_of(p))
            .unwrap_or(ovh);
        let bad = (energy_of(&m.inefficient) - ovh).max(1e-12);
        let good = (energy_of(&m.efficient) - ovh_good).max(1e-12);
        let ratio = bad / good;
        println!(
            "{:<32} {:>14} {:>16}",
            m.component,
            pct_more(ratio),
            m.paper_claim
        );
    }
}
