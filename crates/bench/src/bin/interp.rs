//! Interpreter dispatch benchmark: legacy `Vec<Op>` clone-per-op loop
//! vs the pre-decoded threaded engine (interned symbols, inline caches,
//! pooled frames) vs the register-IR compilation tier (basic blocks,
//! constant folding, DCE, inlining, LICM, per-block bulk accounting).
//!
//! Two legs:
//!
//! 1. **Microbench** — a dispatch-bound synthetic workload (virtual
//!    calls through a polymorphic site, field traffic, string building,
//!    tight integer arithmetic) run uninstrumented through all three
//!    engines. Reported as ops/sec; the acceptance bar is ≥ 2× for
//!    decoded and ≥ 3.5× for the IR tier, both over legacy.
//! 2. **End-to-end** — the instrumented profiler pipeline over the
//!    runnable WEKA corpus (mini-NaiveBayes, the workload behind every
//!    profiler-view number), timed under all engines.
//!
//! `--selfcheck` additionally reruns both legs comparing every
//! observable bit-for-bit (stdout, op counts, energy joule bits,
//! `result.txt`) and fails the process on any divergence — the same
//! contract the differential test suite enforces, wired into the
//! benchmark artifact so a perf run can never silently report numbers
//! from diverging engines.
//!
//! Usage: `interp [reps] [--selfcheck]` (default reps 200000).
//! Emits `BENCH_interp.json`.

use jepo_core::{corpus, JepoProfiler, ProfileReport};
use jepo_jvm::interp::RunOutcome;
use jepo_jvm::{Dispatch, Vm};
use std::time::Instant;

/// Dispatch-heavy microbench source: two receiver classes behind one
/// call site (inline-cache traffic), a static helper, field reads and
/// writes, and periodic string work.
fn microbench_src(reps: usize) -> String {
    format!(
        "class Base {{
            int v;
            int step(int x) {{ return x + v; }}
            int twice(int x) {{ return step(x) + step(x + 1); }}
        }}
        class Derived extends Base {{
            int step(int x) {{ return x * 2 - v; }}
            int twice(int x) {{ return step(x) + step(x + 3); }}
        }}
        class Main {{
            static int helper(int a, int b) {{ return (a * 31 + b) % 1000003; }}
            public static void main(String[] args) {{
                Base a = new Base();
                Base b = new Derived();
                a.v = 3; b.v = 5;
                int acc = 0;
                for (int i = 0; i < {reps}; i++) {{
                    acc = helper(a.twice(i), b.twice(acc));
                    int t = a.step(i) + b.step(acc);
                    t = a.step(t) + b.step(t);
                    t = a.step(t) + b.step(t);
                    t = a.step(t) + b.step(t);
                    acc = (acc + t) % 1000003;
                    a.v = acc % 17;
                    b.v = acc % 13;
                    if (\"k\".equals(\"k\")) {{ acc += 1; }}
                }}
                System.out.println(acc);
            }}
        }}"
    )
}

/// Time one engine pass.
fn micro_pass(src: &str, dispatch: Dispatch) -> (RunOutcome, f64) {
    let mut vm = Vm::from_source(src)
        .expect("microbench compiles")
        .with_dispatch(dispatch);
    let t = Instant::now();
    let run = vm.run_main().expect("microbench runs");
    (run, t.elapsed().as_secs_f64())
}

const ENGINES: [Dispatch; 3] = [Dispatch::Legacy, Dispatch::Decoded, Dispatch::Ir];

/// Run all engines in alternating rounds (so throttle/noise windows on
/// a busy machine hit each equally) and keep each engine's best time.
fn run_micro(src: &str) -> Vec<(RunOutcome, f64)> {
    let mut best = vec![f64::INFINITY; ENGINES.len()];
    let mut outs: Vec<Option<RunOutcome>> = vec![None; ENGINES.len()];
    for _ in 0..5 {
        for (i, &dispatch) in ENGINES.iter().enumerate() {
            let (run, secs) = micro_pass(src, dispatch);
            best[i] = best[i].min(secs);
            outs[i] = Some(run);
        }
    }
    outs.into_iter().map(Option::unwrap).zip(best).collect()
}

fn run_profiler(dispatch: Dispatch) -> (ProfileReport, f64) {
    let project = corpus::runnable_project();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..2 {
        let profiler = JepoProfiler::new().with_dispatch(dispatch);
        let t = Instant::now();
        let report = profiler.profile(&project).expect("corpus profiles");
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(report);
    }
    (out.unwrap(), best)
}

/// Bitwise outcome comparison (`f64` by bits): the selfcheck gate.
fn outcomes_identical(l: &RunOutcome, d: &RunOutcome) -> Vec<String> {
    let mut diffs = Vec::new();
    if l.stdout != d.stdout {
        diffs.push("stdout".into());
    }
    if l.ops_executed != d.ops_executed {
        diffs.push(format!(
            "ops_executed ({} vs {})",
            l.ops_executed, d.ops_executed
        ));
    }
    if l.cache_hits != d.cache_hits || l.cache_misses != d.cache_misses {
        diffs.push("cache stats".into());
    }
    for (name, a, b) in [
        ("package_j", l.energy.package_j, d.energy.package_j),
        ("core_j", l.energy.core_j, d.energy.core_j),
        ("seconds", l.energy.seconds, d.energy.seconds),
    ] {
        if a.to_bits() != b.to_bits() {
            diffs.push(format!("energy.{name} ({a} vs {b})"));
        }
    }
    diffs
}

/// Bitwise profiler report comparison: the end-to-end selfcheck gate.
fn reports_identical(l: &ProfileReport, d: &ProfileReport, tag: &str) -> Vec<String> {
    let mut diffs = Vec::new();
    if l.result_txt != d.result_txt {
        diffs.push(format!("profiler result.txt ({tag})"));
    }
    if l.stdout != d.stdout {
        diffs.push(format!("profiler stdout ({tag})"));
    }
    if l.energy.package_j.to_bits() != d.energy.package_j.to_bits() {
        diffs.push(format!("profiler energy ({tag})"));
    }
    diffs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selfcheck = args.iter().any(|a| a == "--selfcheck");
    let reps: usize = args
        .iter()
        .find(|a| *a != "--selfcheck")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    let src = microbench_src(reps);
    eprintln!("Microbench: {reps} iterations through all three engines…");
    let micro = run_micro(&src);
    let (legacy_out, legacy_secs) = &micro[0];
    let (decoded_out, decoded_secs) = &micro[1];
    let (ir_out, ir_secs) = &micro[2];
    assert_eq!(
        legacy_out.stdout, decoded_out.stdout,
        "microbench outputs diverged (decoded)"
    );
    assert_eq!(
        legacy_out.stdout, ir_out.stdout,
        "microbench outputs diverged (ir)"
    );
    let ops = decoded_out.ops_executed;
    let legacy_ops_sec = ops as f64 / legacy_secs.max(1e-9);
    let decoded_ops_sec = ops as f64 / decoded_secs.max(1e-9);
    let ir_ops_sec = ops as f64 / ir_secs.max(1e-9);
    let micro_speedup = decoded_ops_sec / legacy_ops_sec.max(1e-9);
    let ir_vs_legacy = ir_ops_sec / legacy_ops_sec.max(1e-9);
    let ir_vs_decoded = ir_ops_sec / decoded_ops_sec.max(1e-9);
    let ic_total = decoded_out.ic_hits + decoded_out.ic_misses;
    let ic_hit_rate = decoded_out.ic_hits as f64 / (ic_total.max(1)) as f64;
    eprintln!(
        "  legacy  {legacy_secs:.3}s ({legacy_ops_sec:.0} ops/s)\n  \
         decoded {decoded_secs:.3}s ({decoded_ops_sec:.0} ops/s)  speedup {micro_speedup:.2}×\n  \
         ir      {ir_secs:.3}s ({ir_ops_sec:.0} ops/s)  speedup {ir_vs_legacy:.2}× vs legacy, \
         {ir_vs_decoded:.2}× vs decoded\n  IC hit rate {:.2}%",
        100.0 * ic_hit_rate
    );

    eprintln!("End-to-end: instrumented profiler over the runnable corpus…");
    let (legacy_report, e2e_legacy_secs) = run_profiler(Dispatch::Legacy);
    let (decoded_report, e2e_decoded_secs) = run_profiler(Dispatch::Decoded);
    let (ir_report, e2e_ir_secs) = run_profiler(Dispatch::Ir);
    let e2e_speedup = e2e_legacy_secs / e2e_decoded_secs.max(1e-9);
    let e2e_ir_speedup = e2e_legacy_secs / e2e_ir_secs.max(1e-9);
    eprintln!(
        "  legacy {e2e_legacy_secs:.3}s, decoded {e2e_decoded_secs:.3}s \
         (speedup {e2e_speedup:.2}×), ir {e2e_ir_secs:.3}s (speedup {e2e_ir_speedup:.2}×)"
    );

    let mut selfcheck_status = "skipped";
    if selfcheck {
        eprintln!("Selfcheck: bit-exact comparison of all engines…");
        let mut diffs = outcomes_identical(legacy_out, decoded_out);
        diffs.extend(
            outcomes_identical(legacy_out, ir_out)
                .into_iter()
                .map(|d| format!("{d} (ir)")),
        );
        diffs.extend(reports_identical(
            &legacy_report,
            &decoded_report,
            "decoded",
        ));
        diffs.extend(reports_identical(&legacy_report, &ir_report, "ir"));
        if diffs.is_empty() {
            selfcheck_status = "pass";
            eprintln!("  ok — all observables identical across all three engines");
        } else {
            eprintln!("ERROR: engines diverged in: {}", diffs.join(", "));
            std::process::exit(1);
        }
    }

    // Hand-rolled JSON (the workspace deliberately has no JSON dep).
    let json = format!(
        "{{\n  \"bench\": \"interp\",\n  \"reps\": {reps},\n  \
         \"microbench\": {{\n    \"ops_executed\": {ops},\n    \
         \"legacy_secs\": {legacy_secs:.6},\n    \"decoded_secs\": {decoded_secs:.6},\n    \
         \"ir_secs\": {ir_secs:.6},\n    \
         \"legacy_ops_per_sec\": {legacy_ops_sec:.0},\n    \
         \"decoded_ops_per_sec\": {decoded_ops_sec:.0},\n    \
         \"ir_ops_per_sec\": {ir_ops_sec:.0},\n    \
         \"speedup\": {micro_speedup:.3},\n    \
         \"ir_vs_legacy\": {ir_vs_legacy:.3},\n    \
         \"ir_vs_decoded\": {ir_vs_decoded:.3},\n    \
         \"ic_hits\": {},\n    \"ic_misses\": {},\n    \"ic_hit_rate\": {ic_hit_rate:.6}\n  }},\n  \
         \"end_to_end\": {{\n    \
         \"workload\": \"instrumented profiler, runnable WEKA corpus (NaiveBayes)\",\n    \
         \"legacy_secs\": {e2e_legacy_secs:.6},\n    \"decoded_secs\": {e2e_decoded_secs:.6},\n    \
         \"ir_secs\": {e2e_ir_secs:.6},\n    \
         \"speedup\": {e2e_speedup:.3},\n    \
         \"ir_speedup\": {e2e_ir_speedup:.3}\n  }},\n  \
         \"selfcheck\": \"{selfcheck_status}\"\n}}\n",
        decoded_out.ic_hits, decoded_out.ic_misses,
    );
    let path = "BENCH_interp.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("Wrote {path}"),
        Err(e) => {
            eprintln!("ERROR: could not write {path}: {e}");
            std::process::exit(1);
        }
    }

    if micro_speedup < 2.0 {
        eprintln!("WARNING: microbench speedup {micro_speedup:.2}× is below the 2× acceptance bar");
    }
    if ir_vs_legacy < 3.5 {
        eprintln!(
            "WARNING: IR microbench speedup {ir_vs_legacy:.2}× is below the 3.5× acceptance bar"
        );
    }
}
