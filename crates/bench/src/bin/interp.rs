//! Interpreter dispatch benchmark: legacy `Vec<Op>` clone-per-op loop
//! vs the pre-decoded threaded engine (interned symbols, inline caches,
//! pooled frames).
//!
//! Two legs:
//!
//! 1. **Microbench** — a dispatch-bound synthetic workload (virtual
//!    calls through a polymorphic site, field traffic, string building,
//!    tight integer arithmetic) run uninstrumented through both
//!    engines. Reported as ops/sec; the acceptance bar is ≥ 2×.
//! 2. **End-to-end** — the instrumented profiler pipeline over the
//!    runnable WEKA corpus (mini-NaiveBayes, the workload behind every
//!    profiler-view number), timed under both engines.
//!
//! `--selfcheck` additionally reruns both legs comparing every
//! observable bit-for-bit (stdout, op counts, energy joule bits,
//! `result.txt`) and fails the process on any divergence — the same
//! contract the differential test suite enforces, wired into the
//! benchmark artifact so a perf run can never silently report numbers
//! from diverging engines.
//!
//! Usage: `interp [reps] [--selfcheck]` (default reps 200000).
//! Emits `BENCH_interp.json`.

use jepo_core::{corpus, JepoProfiler, ProfileReport};
use jepo_jvm::interp::RunOutcome;
use jepo_jvm::{Dispatch, Vm};
use std::time::Instant;

/// Dispatch-heavy microbench source: two receiver classes behind one
/// call site (inline-cache traffic), a static helper, field reads and
/// writes, and periodic string work.
fn microbench_src(reps: usize) -> String {
    format!(
        "class Base {{
            int v;
            int step(int x) {{ return x + v; }}
            int twice(int x) {{ return step(x) + step(x + 1); }}
        }}
        class Derived extends Base {{
            int step(int x) {{ return x * 2 - v; }}
            int twice(int x) {{ return step(x) + step(x + 3); }}
        }}
        class Main {{
            static int helper(int a, int b) {{ return (a * 31 + b) % 1000003; }}
            public static void main(String[] args) {{
                Base a = new Base();
                Base b = new Derived();
                a.v = 3; b.v = 5;
                int acc = 0;
                for (int i = 0; i < {reps}; i++) {{
                    acc = helper(a.twice(i), b.twice(acc));
                    int t = a.step(i) + b.step(acc);
                    t = a.step(t) + b.step(t);
                    t = a.step(t) + b.step(t);
                    t = a.step(t) + b.step(t);
                    acc = (acc + t) % 1000003;
                    a.v = acc % 17;
                    b.v = acc % 13;
                    if (\"k\".equals(\"k\")) {{ acc += 1; }}
                }}
                System.out.println(acc);
            }}
        }}"
    )
}

/// Time one engine pass.
fn micro_pass(src: &str, dispatch: Dispatch) -> (RunOutcome, f64) {
    let mut vm = Vm::from_source(src)
        .expect("microbench compiles")
        .with_dispatch(dispatch);
    let t = Instant::now();
    let run = vm.run_main().expect("microbench runs");
    (run, t.elapsed().as_secs_f64())
}

/// Run both engines in alternating rounds (so throttle/noise windows on
/// a busy machine hit both equally) and keep each engine's best time.
fn run_micro(src: &str) -> (RunOutcome, f64, RunOutcome, f64) {
    let mut legacy_best = f64::INFINITY;
    let mut decoded_best = f64::INFINITY;
    let mut legacy_out = None;
    let mut decoded_out = None;
    for _ in 0..5 {
        let (run, secs) = micro_pass(src, Dispatch::Legacy);
        legacy_best = legacy_best.min(secs);
        legacy_out = Some(run);
        let (run, secs) = micro_pass(src, Dispatch::Decoded);
        decoded_best = decoded_best.min(secs);
        decoded_out = Some(run);
    }
    (
        legacy_out.unwrap(),
        legacy_best,
        decoded_out.unwrap(),
        decoded_best,
    )
}

fn run_profiler(dispatch: Dispatch) -> (ProfileReport, f64) {
    let project = corpus::runnable_project();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..2 {
        let profiler = JepoProfiler::new().with_dispatch(dispatch);
        let t = Instant::now();
        let report = profiler.profile(&project).expect("corpus profiles");
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(report);
    }
    (out.unwrap(), best)
}

/// Bitwise outcome comparison (`f64` by bits): the selfcheck gate.
fn outcomes_identical(l: &RunOutcome, d: &RunOutcome) -> Vec<String> {
    let mut diffs = Vec::new();
    if l.stdout != d.stdout {
        diffs.push("stdout".into());
    }
    if l.ops_executed != d.ops_executed {
        diffs.push(format!(
            "ops_executed ({} vs {})",
            l.ops_executed, d.ops_executed
        ));
    }
    if l.cache_hits != d.cache_hits || l.cache_misses != d.cache_misses {
        diffs.push("cache stats".into());
    }
    for (name, a, b) in [
        ("package_j", l.energy.package_j, d.energy.package_j),
        ("core_j", l.energy.core_j, d.energy.core_j),
        ("seconds", l.energy.seconds, d.energy.seconds),
    ] {
        if a.to_bits() != b.to_bits() {
            diffs.push(format!("energy.{name} ({a} vs {b})"));
        }
    }
    diffs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selfcheck = args.iter().any(|a| a == "--selfcheck");
    let reps: usize = args
        .iter()
        .find(|a| *a != "--selfcheck")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    let src = microbench_src(reps);
    eprintln!("Microbench: {reps} iterations through both engines…");
    let (legacy_out, legacy_secs, decoded_out, decoded_secs) = run_micro(&src);
    assert_eq!(
        legacy_out.stdout, decoded_out.stdout,
        "microbench outputs diverged"
    );
    let ops = decoded_out.ops_executed;
    let legacy_ops_sec = ops as f64 / legacy_secs.max(1e-9);
    let decoded_ops_sec = ops as f64 / decoded_secs.max(1e-9);
    let micro_speedup = decoded_ops_sec / legacy_ops_sec.max(1e-9);
    let ic_total = decoded_out.ic_hits + decoded_out.ic_misses;
    let ic_hit_rate = decoded_out.ic_hits as f64 / (ic_total.max(1)) as f64;
    eprintln!(
        "  legacy  {legacy_secs:.3}s ({legacy_ops_sec:.0} ops/s)\n  \
         decoded {decoded_secs:.3}s ({decoded_ops_sec:.0} ops/s)  speedup {micro_speedup:.2}×  \
         IC hit rate {:.2}%",
        100.0 * ic_hit_rate
    );

    eprintln!("End-to-end: instrumented profiler over the runnable corpus…");
    let (legacy_report, e2e_legacy_secs) = run_profiler(Dispatch::Legacy);
    let (decoded_report, e2e_decoded_secs) = run_profiler(Dispatch::Decoded);
    let e2e_speedup = e2e_legacy_secs / e2e_decoded_secs.max(1e-9);
    eprintln!(
        "  legacy {e2e_legacy_secs:.3}s, decoded {e2e_decoded_secs:.3}s  (speedup {e2e_speedup:.2}×)"
    );

    let mut selfcheck_status = "skipped";
    if selfcheck {
        eprintln!("Selfcheck: bit-exact comparison of both engines…");
        let mut diffs = outcomes_identical(&legacy_out, &decoded_out);
        if legacy_report.result_txt != decoded_report.result_txt {
            diffs.push("profiler result.txt".into());
        }
        if legacy_report.stdout != decoded_report.stdout {
            diffs.push("profiler stdout".into());
        }
        if legacy_report.energy.package_j.to_bits() != decoded_report.energy.package_j.to_bits() {
            diffs.push("profiler energy".into());
        }
        if diffs.is_empty() {
            selfcheck_status = "pass";
            eprintln!("  ok — all observables identical");
        } else {
            eprintln!("ERROR: engines diverged in: {}", diffs.join(", "));
            std::process::exit(1);
        }
    }

    // Hand-rolled JSON (the workspace deliberately has no JSON dep).
    let json = format!(
        "{{\n  \"bench\": \"interp\",\n  \"reps\": {reps},\n  \
         \"microbench\": {{\n    \"ops_executed\": {ops},\n    \
         \"legacy_secs\": {legacy_secs:.6},\n    \"decoded_secs\": {decoded_secs:.6},\n    \
         \"legacy_ops_per_sec\": {legacy_ops_sec:.0},\n    \
         \"decoded_ops_per_sec\": {decoded_ops_sec:.0},\n    \
         \"speedup\": {micro_speedup:.3},\n    \
         \"ic_hits\": {},\n    \"ic_misses\": {},\n    \"ic_hit_rate\": {ic_hit_rate:.6}\n  }},\n  \
         \"end_to_end\": {{\n    \
         \"workload\": \"instrumented profiler, runnable WEKA corpus (NaiveBayes)\",\n    \
         \"legacy_secs\": {e2e_legacy_secs:.6},\n    \"decoded_secs\": {e2e_decoded_secs:.6},\n    \
         \"speedup\": {e2e_speedup:.3}\n  }},\n  \
         \"selfcheck\": \"{selfcheck_status}\"\n}}\n",
        decoded_out.ic_hits, decoded_out.ic_misses,
    );
    let path = "BENCH_interp.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("Wrote {path}"),
        Err(e) => {
            eprintln!("ERROR: could not write {path}: {e}");
            std::process::exit(1);
        }
    }

    if micro_speedup < 2.0 {
        eprintln!("WARNING: microbench speedup {micro_speedup:.2}× is below the 2× acceptance bar");
    }
}
