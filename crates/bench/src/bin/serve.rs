//! Load generator for the `jepo serve` daemon — the sustained-throughput
//! benchmark behind `BENCH_serve.json`.
//!
//! Boots the daemon in-process, then drives it through three phases:
//!
//! 1. **cold** — every distinct request in the mixed catalog once; the
//!    daemon has never seen the bytes, so parse/compile/analyze all run.
//! 2. **warm** — the same catalog again, several rounds; every response
//!    comes from the shared hot cache (response memo + AST/prepared
//!    programs), which is where the headline speedup comes from.
//! 3. **sustained** — N concurrent clients hammer the daemon with the
//!    mixed catalog and per-request latencies feed p50/p95/p99 and the
//!    sustained req/s figure.
//!
//! `--selfcheck` turns the run into a hard gate: every warm response
//! must be byte-identical to its cold counterpart (which is itself the
//! CLI's exact stdout — the CLI prints the same renderers), zero
//! requests may be dropped or rejected, and the warm speedup must be
//! ≥ 5×. Any violation exits 1.
//!
//! Usage: `serve [--jobs N] [--clients N] [--requests N] [--selfcheck]`
//! (defaults: jobs 0 = cores, 4 clients, 40 requests per client).

use jepo_serve::codec::Request;
use jepo_serve::{client, ServerConfig};
use std::time::Instant;

/// One catalog entry: a named request plus its cold-reference body.
struct CatalogEntry {
    label: String,
    request: Request,
}

/// Files of a generated analyzer corpus as `(name, body)` pairs.
fn corpus_files(seed: u64, files: usize) -> Vec<(String, String)> {
    let cfg = jepo_analyzer::gen::GenConfig {
        files,
        seed,
        ..Default::default()
    };
    jepo_analyzer::gen::generate_project(&cfg)
        .files()
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect()
}

/// A tiny runnable project for profile traffic; `k` varies the bytes so
/// distinct variants are distinct cache entries.
fn profile_files(k: u64) -> Vec<(String, String)> {
    vec![
        (
            "Main.java".to_string(),
            format!(
                "class Main {{ public static void main(String[] args) {{ \
                 int acc = 0; \
                 for (int i = 0; i < 40; i = i + 1) {{ acc = acc + Work.step(i, {k}); }} \
                 System.out.println(acc); }} }}"
            ),
        ),
        (
            "Work.java".to_string(),
            "class Work { static int step(int i, int k) { return i * k + i % 3; } }".to_string(),
        ),
    ]
}

/// The mixed-traffic catalog: analyze / energy / profile / table4.
fn build_catalog() -> Vec<CatalogEntry> {
    let mut catalog = Vec::new();
    for seed in [1u64, 2, 3] {
        let files = corpus_files(seed, 6);
        let mut request = Request::new("analyze");
        request.files = files.clone();
        catalog.push(CatalogEntry {
            label: format!("analyze/gen{seed}"),
            request,
        });
        let mut request = Request::new("energy");
        request.params.push(("top".into(), "10".into()));
        request.files = files;
        catalog.push(CatalogEntry {
            label: format!("energy/gen{seed}"),
            request,
        });
    }
    for k in [2u64, 5] {
        let mut request = Request::new("profile");
        request.files = profile_files(k);
        catalog.push(CatalogEntry {
            label: format!("profile/k{k}"),
            request,
        });
    }
    for instances in [60usize, 90] {
        let mut request = Request::new("table4");
        request
            .params
            .push(("instances".into(), instances.to_string()));
        request.params.push(("folds".into(), "2".into()));
        catalog.push(CatalogEntry {
            label: format!("table4/{instances}"),
            request,
        });
    }
    catalog
}

/// Latency percentile (nearest-rank on a sorted copy), in milliseconds.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Summary of one phase's latencies.
struct PhaseStats {
    requests: usize,
    total_secs: f64,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn phase_stats(latencies_ms: &[f64], total_secs: f64) -> PhaseStats {
    let mut sorted = latencies_ms.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    PhaseStats {
        requests: latencies_ms.len(),
        total_secs,
        mean_ms: mean,
        p50_ms: percentile(&sorted, 50.0),
        p95_ms: percentile(&sorted, 95.0),
        p99_ms: percentile(&sorted, 99.0),
    }
}

fn phase_json(s: &PhaseStats) -> String {
    format!(
        "{{\"requests\": {}, \"total_secs\": {:.4}, \"mean_ms\": {:.4}, \
         \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}",
        s.requests, s.total_secs, s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms
    )
}

/// One timed request; returns `(latency_ms, cache_tag, body)`.
fn timed_request(addr: &str, req: &Request) -> Result<(f64, String, String), String> {
    let t = Instant::now();
    let resp = client::request(addr, req).map_err(|e| e.to_string())?;
    let ms = t.elapsed().as_secs_f64() * 1e3;
    if let Some((code, message)) = resp.error {
        return Err(format!("{code}: {message}"));
    }
    Ok((ms, resp.cache, resp.body))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let jobs = flag("--jobs", 0);
    let clients = flag("--clients", 4).max(1);
    let per_client = flag("--requests", 40).max(1);
    let selfcheck = args.iter().any(|a| a == "--selfcheck");

    // The same clamp shape as the table4 bench: never oversubscribe,
    // warn once, record what happened.
    let (requested, effective, cores) = jepo_serve::clamp_workers(jobs);
    let note = if requested > effective {
        format!(
            "requested {requested} worker(s) clamped to {effective} ({cores} core(s) available)"
        )
    } else {
        format!("{effective} worker(s) on {cores} core(s)")
    };

    let queue_depth = clients * 4 + 8;
    let handle = jepo_serve::serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: effective,
        queue_depth,
        ..Default::default()
    })
    .expect("bind the benchmark daemon");
    let addr = handle.addr().to_string();
    eprintln!(
        "daemon on {addr}: {} worker(s), queue depth {queue_depth}",
        handle.workers()
    );

    let catalog = build_catalog();
    eprintln!(
        "catalog: {} distinct requests; {clients} client(s) × {per_client} sustained requests",
        catalog.len()
    );

    // Phase 1: cold.
    let mut cold_bodies: Vec<String> = Vec::new();
    let mut cold_lat = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let t_cold = Instant::now();
    for entry in &catalog {
        match timed_request(&addr, &entry.request) {
            Ok((ms, cache, body)) => {
                if cache != "cold" {
                    failures.push(format!("{}: first request served {cache}", entry.label));
                }
                cold_lat.push(ms);
                cold_bodies.push(body);
            }
            Err(e) => {
                failures.push(format!("{}: {e}", entry.label));
                cold_bodies.push(String::new());
            }
        }
    }
    let cold = phase_stats(&cold_lat, t_cold.elapsed().as_secs_f64());

    // Phase 2: warm rounds over the identical catalog.
    let mut warm_lat = Vec::new();
    let mut warm_mismatches = 0usize;
    let t_warm = Instant::now();
    for _round in 0..3 {
        for (i, entry) in catalog.iter().enumerate() {
            match timed_request(&addr, &entry.request) {
                Ok((ms, cache, body)) => {
                    if cache != "warm" {
                        failures.push(format!("{}: repeat served {cache}", entry.label));
                    }
                    if body != cold_bodies[i] {
                        warm_mismatches += 1;
                    }
                    warm_lat.push(ms);
                }
                Err(e) => failures.push(format!("{}: {e}", entry.label)),
            }
        }
    }
    let warm = phase_stats(&warm_lat, t_warm.elapsed().as_secs_f64());
    let warm_speedup = cold.mean_ms / warm.mean_ms.max(1e-9);

    // Phase 3: sustained mixed load from concurrent clients.
    let t_sus = Instant::now();
    let results: Vec<(Vec<f64>, usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = &addr;
                let catalog = &catalog;
                let cold_bodies = &cold_bodies;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    let (mut warm_hits, mut mismatches, mut errors) = (0usize, 0usize, 0usize);
                    for n in 0..per_client {
                        let i = (c + n) % catalog.len();
                        match timed_request(addr, &catalog[i].request) {
                            Ok((ms, cache, body)) => {
                                lat.push(ms);
                                if cache == "warm" {
                                    warm_hits += 1;
                                }
                                if body != cold_bodies[i] {
                                    mismatches += 1;
                                }
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    (lat, warm_hits, mismatches, errors)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let sustained_secs = t_sus.elapsed().as_secs_f64();
    let mut sus_lat = Vec::new();
    let (mut sus_warm, mut sus_mismatch, mut sus_errors) = (0usize, 0usize, 0usize);
    for (lat, w, m, e) in results {
        sus_lat.extend(lat);
        sus_warm += w;
        sus_mismatch += m;
        sus_errors += e;
    }
    let sustained = phase_stats(&sus_lat, sustained_secs);
    let req_per_s = sustained.requests as f64 / sustained_secs.max(1e-9);

    // Graceful stop: drain, then join. A dropped request would surface
    // as an error above or a mismatated count here.
    let shutdown = client::request(&addr, &Request::new("shutdown"));
    let shutdown_ok = matches!(&shutdown, Ok(r) if r.is_ok());
    handle.join();

    let submitted = catalog.len() + warm_lat.len() + clients * per_client;
    let completed = cold_lat.len() + warm_lat.len() + sus_lat.len();
    let dropped = submitted - completed - failures.iter().filter(|f| !f.contains("served")).count();
    let warm_ok = warm_speedup >= 5.0;
    let bytes_ok = warm_mismatches == 0 && sus_mismatch == 0 && failures.is_empty();

    println!("== jepo serve sustained-throughput benchmark ==");
    println!(
        "cold:      {:3} requests, mean {:8.2} ms  (p50 {:.2} / p95 {:.2} / p99 {:.2})",
        cold.requests, cold.mean_ms, cold.p50_ms, cold.p95_ms, cold.p99_ms
    );
    println!(
        "warm:      {:3} requests, mean {:8.2} ms  (p50 {:.2} / p95 {:.2} / p99 {:.2})",
        warm.requests, warm.mean_ms, warm.p50_ms, warm.p95_ms, warm.p99_ms
    );
    println!("warm speedup: {warm_speedup:.1}× (gate: ≥ 5×)");
    println!(
        "sustained: {:3} requests over {:.2}s from {clients} client(s) → {req_per_s:.1} req/s \
         ({} warm, {} errors)",
        sustained.requests, sustained_secs, sus_warm, sus_errors
    );
    println!(
        "integrity: {} byte mismatches, {} dropped, shutdown ok: {shutdown_ok}",
        warm_mismatches + sus_mismatch,
        dropped
    );
    for f in failures.iter().take(5) {
        eprintln!("failure: {f}");
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \
         \"requested_jobs\": {requested},\n  \"jobs\": {effective},\n  \
         \"available_cores\": {cores},\n  \"note\": \"{note}\",\n  \
         \"queue_depth\": {queue_depth},\n  \"clients\": {clients},\n  \
         \"distinct_requests\": {},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \"sustained\": {},\n  \
         \"sustained_req_per_s\": {req_per_s:.2},\n  \
         \"warm_speedup\": {warm_speedup:.2},\n  \
         \"warm_hits_sustained\": {sus_warm},\n  \
         \"selfcheck\": {{\"enabled\": {selfcheck}, \"warm_equals_cold\": {bytes_ok}, \
         \"dropped_requests\": {dropped}, \"request_errors\": {sus_errors}, \
         \"warm_speedup_ok\": {warm_ok}, \"shutdown_ok\": {shutdown_ok}}}\n}}\n",
        catalog.len(),
        phase_json(&cold),
        phase_json(&warm),
        phase_json(&sustained),
    );
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path}."),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if selfcheck {
        let mut bad = Vec::new();
        if !bytes_ok {
            bad.push("warm responses diverged from cold bytes".to_string());
        }
        if dropped != 0 || sus_errors != 0 {
            bad.push(format!("{dropped} dropped / {sus_errors} errored requests"));
        }
        if !warm_ok {
            bad.push(format!("warm speedup {warm_speedup:.1}× below the 5× gate"));
        }
        if !shutdown_ok {
            bad.push("graceful shutdown failed".to_string());
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("SELFCHECK FAILED: {b}");
            }
            std::process::exit(1);
        }
        println!("Selfcheck passed: warm ≡ cold bytes, zero dropped, speedup ≥ 5×, clean drain.");
    }
}
