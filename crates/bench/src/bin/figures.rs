//! Regenerate Figs 1–5 as terminal renderings.
//!
//! Usage: `figures [fig1|fig2|fig3|fig4|fig5]` (default: all).

use jepo_analyzer::DynamicAnalyzer;
use jepo_core::{corpus, views, JepoOptimizer, JepoProfiler};

fn fig1() {
    jepo_bench::banner("Fig. 1 — JEPO toolbar button");
    print!("{}", views::toolbar());
}

fn fig2() {
    jepo_bench::banner("Fig. 2 — dynamic suggestions while typing");
    let mut da = DynamicAnalyzer::new();
    let before = "class Hot { int f(int x) { return x + 1; } }";
    let after = "class Hot { int f(int x) { return x % 2 == 0 ? x : x * 3; } }";
    da.update("Hot.java", before);
    let delta = da.update("Hot.java", after);
    println!("(edit introduced {} new suggestions)", delta.added.len());
    print!("{}", views::dynamic_view("Hot.java", &delta.current));
}

fn fig3() {
    jepo_bench::banner("Fig. 3 — pop-up menu");
    print!("{}", views::popup_menu());
}

fn fig4() {
    jepo_bench::banner("Fig. 4 — profiler view (instrumented run of the bundled project)");
    let report = JepoProfiler::new()
        .profile(&corpus::runnable_project())
        .expect("bundled project runs");
    println!(
        "main class: {}; probes injected: {}",
        report.main_class, report.probes_injected
    );
    print!("{}", report.view());
}

fn fig5() {
    jepo_bench::banner("Fig. 5 — optimizer view (all classes of the project)");
    let project = corpus::shared_corpus();
    print!("{}", JepoOptimizer::new().view(project));
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        _ => {
            fig1();
            fig2();
            fig3();
            fig4();
            fig5();
        }
    }
}
