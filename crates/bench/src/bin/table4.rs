//! Regenerate Table IV: the WEKA evaluation.
//!
//! Every classifier runs stratified 10-fold CV on the airlines data
//! under the baseline and JEPO-optimized efficiency profiles; energy
//! flows through the calibrated cost/latency models into the simulated
//! RAPL device; the §VIII Tukey protocol produces the means.
//!
//! Usage: `table4 [instances] [folds]` (defaults 2000, 10; the paper
//! used 10,000 — pass it explicitly if you have a few minutes).

use jepo_core::{report, WekaExperiment};

fn main() {
    let mut args = std::env::args().skip(1);
    let instances: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let folds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let exp = WekaExperiment { instances, folds, ..Default::default() };
    eprintln!(
        "Running {} classifiers × 2 profiles, {instances} instances, {folds}-fold CV…",
        jepo_ml::classifiers::CLASSIFIER_NAMES.len()
    );
    let mut results = Vec::new();
    let data = exp.dataset();
    for name in jepo_ml::classifiers::CLASSIFIER_NAMES {
        eprintln!("  {name}…");
        results.push(exp.run_classifier(name, &data));
    }
    println!("{}", report::table4(&results));
    println!("Paper reference (i5-3317U, 10,000 instances): Random Forest best at");
    println!("14.46% package / 14.19% CPU / 12.93% time; Random Tree worst accuracy drop 0.48%.");
    println!("\nMarkdown:\n{}", report::table4_markdown(&results));
}
