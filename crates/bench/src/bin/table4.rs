//! Regenerate Table IV: the WEKA evaluation.
//!
//! Every classifier runs stratified 10-fold CV on the airlines data
//! under the baseline and JEPO-optimized efficiency profiles; energy
//! flows through the calibrated cost/latency models into the simulated
//! RAPL device; the §VIII Tukey protocol produces the means.
//!
//! With `--jobs N` the ten classifier rows fan out over N workers
//! (0 = one per core; values beyond the available cores are clamped,
//! since oversubscription only adds scheduler noise to the timing).
//! The runner is deterministic: before reporting,
//! this harness re-runs the table sequentially, verifies the parallel
//! output is bit-identical, and records both wall-clock times plus the
//! speedup in `BENCH_table4.json`.
//!
//! Usage: `table4 [instances] [folds] [--jobs N]` (defaults 2000, 10, 1;
//! the paper used 10,000 instances — pass it explicitly if you have a
//! few minutes).

use jepo_core::{report, ClassifierResult, WekaExperiment};
use std::time::Instant;

/// Bitwise equality of two result sets (f64s compared by bits — the
/// determinism contract is *identical output*, not merely close).
fn bit_identical(a: &[ClassifierResult], b: &[ClassifierResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.changes == y.changes
                && x.converged == y.converged
                && [
                    (x.package_improvement_pct, y.package_improvement_pct),
                    (x.cpu_improvement_pct, y.cpu_improvement_pct),
                    (x.time_improvement_pct, y.time_improvement_pct),
                    (x.accuracy_baseline, y.accuracy_baseline),
                    (x.accuracy_optimized, y.accuracy_optimized),
                    (x.baseline.package_j, y.baseline.package_j),
                    (x.baseline.seconds, y.baseline.seconds),
                    (x.optimized.package_j, y.optimized.package_j),
                    (x.optimized.seconds, y.optimized.seconds),
                ]
                .iter()
                .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// Hand-rolled JSON (the workspace deliberately has no JSON dependency).
#[allow(clippy::too_many_arguments)]
fn bench_json(
    instances: usize,
    folds: usize,
    requested_jobs: usize,
    jobs: usize,
    cores: usize,
    note: &str,
    seq_secs: f64,
    par_secs: f64,
    identical: bool,
    results: &[ClassifierResult],
) -> String {
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"classifier\": \"{}\", \"changes\": {}, \
             \"package_improvement_pct\": {:.6}, \"cpu_improvement_pct\": {:.6}, \
             \"time_improvement_pct\": {:.6}, \"accuracy_drop_pct\": {:.6}, \
             \"converged\": {}}}",
            r.name,
            r.changes,
            r.package_improvement_pct,
            r.cpu_improvement_pct,
            r.time_improvement_pct,
            r.accuracy_drop_pct,
            r.converged
        ));
    }
    format!(
        "{{\n  \"bench\": \"table4\",\n  \"instances\": {instances},\n  \
         \"folds\": {folds},\n  \"requested_jobs\": {requested_jobs},\n  \
         \"jobs\": {jobs},\n  \"available_cores\": {cores},\n  \
         \"note\": \"{note}\",\n  \
         \"sequential_secs\": {seq_secs:.3},\n  \"parallel_secs\": {par_secs:.3},\n  \
         \"speedup\": {:.3},\n  \"bit_identical_to_sequential\": {identical},\n  \
         \"rows\": [{rows}\n  ]\n}}\n",
        seq_secs / par_secs.max(1e-9),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let positional: Vec<&String> = {
        let jobs_at = args.iter().position(|a| a == "--jobs");
        args.iter()
            .enumerate()
            .filter(|(i, _)| jobs_at.is_none_or(|j| *i != j && *i != j + 1))
            .map(|(_, a)| a)
            .collect()
    };
    let instances: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let folds: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let exp = WekaExperiment {
        instances,
        folds,
        ..Default::default()
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Oversubscribing the timing run only adds scheduler noise (workers
    // time-slice one core and the "speedup" reads below 1×), so clamp
    // to the cores actually available and record what happened.
    let requested = jepo_pool::effective_jobs(jobs);
    let effective = requested.min(cores);
    let note = if requested > effective {
        eprintln!(
            "warning: --jobs {requested} exceeds the {cores} available core(s); \
             clamping to {effective} (oversubscription only adds scheduler noise)"
        );
        format!(
            "requested {requested} worker(s) clamped to {effective} ({cores} core(s) available)"
        )
    } else {
        format!("{effective} worker(s) on {cores} core(s)")
    };
    eprintln!(
        "Running {} classifiers × 2 profiles, {instances} instances, {folds}-fold CV, \
         {effective} worker(s)…",
        jepo_ml::classifiers::CLASSIFIER_NAMES.len()
    );

    let t = Instant::now();
    let results = exp.run_all_jobs(effective);
    let par_secs = t.elapsed().as_secs_f64();

    eprintln!("Verifying against the sequential run…");
    let t = Instant::now();
    let sequential = exp.run_all_jobs(1);
    let seq_secs = t.elapsed().as_secs_f64();
    let identical = bit_identical(&results, &sequential);

    println!("{}", report::table4(&results));
    println!("Paper reference (i5-3317U, 10,000 instances): Random Forest best at");
    println!("14.46% package / 14.19% CPU / 12.93% time; Random Tree worst accuracy drop 0.48%.");
    println!(
        "\nWall clock: sequential {seq_secs:.2}s, {effective} worker(s) {par_secs:.2}s \
         (speedup {:.2}×); parallel output bit-identical: {identical}",
        seq_secs / par_secs.max(1e-9)
    );
    if !identical {
        eprintln!("ERROR: parallel run diverged from the sequential run");
    }

    let json = bench_json(
        instances, folds, requested, effective, cores, &note, seq_secs, par_secs, identical,
        &results,
    );
    let path = "BENCH_table4.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path}."),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!("\nMarkdown:\n{}", report::table4_markdown(&results));
    if !identical {
        std::process::exit(1);
    }
}
