//! Ablation: which JEPO suggestion buys which share of Table IV's
//! improvement? For each efficiency-profile dimension, run the optimized
//! profile with that one dimension reverted to baseline and report the
//! improvement lost.
//!
//! Usage: `dimensions [classifier] [instances]` (defaults "Random
//! Forest", 1000).

use jepo_core::WekaExperiment;
use jepo_ml::EfficiencyProfile;
use jepo_rapl::Measurement;

fn main() {
    let mut args = std::env::args().skip(1);
    let classifier = args.next().unwrap_or_else(|| "Random Forest".into());
    let instances: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1_000);
    let exp = WekaExperiment {
        instances,
        folds: 5,
        ..Default::default()
    };
    let data = exp.dataset();
    let (base, _) = exp.measure(&classifier, EfficiencyProfile::baseline(), &data);
    let (opt, _) = exp.measure(&classifier, EfficiencyProfile::optimized(), &data);
    let full = Measurement::improvement_pct(base.package_j, opt.package_j);
    println!("{classifier}: full optimization improves package energy by {full:.2}%");
    println!(
        "{:<18} {:>24}",
        "dimension reverted", "improvement remaining"
    );
    println!("{}", "-".repeat(44));
    for dim in EfficiencyProfile::DIMENSIONS {
        let (partial, _) =
            exp.measure(&classifier, EfficiencyProfile::optimized_except(dim), &data);
        let pct = Measurement::improvement_pct(base.package_j, partial.package_j);
        println!("{dim:<18} {pct:>23.2}%");
    }
}
