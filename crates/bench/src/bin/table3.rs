//! Regenerate Table III: the MOA airlines schema, plus generator
//! statistics confirming the documented cardinalities (8 attributes,
//! 18 airlines, 293 airports, 539,383 instances in the original file,
//! 10,000 used by the paper).

use jepo_ml::data::airlines::{
    AirlinesGenerator, FULL_SIZE, NUM_AIRLINES, NUM_AIRPORTS, PAPER_SIZE,
};

fn main() {
    println!("{}", jepo_core::report::table3());
    let sample = AirlinesGenerator::new(7).generate(PAPER_SIZE);
    let mut airlines = std::collections::HashSet::new();
    let mut airports = std::collections::HashSet::new();
    for r in &sample.instances {
        airlines.insert(r[0] as u32);
        airports.insert(r[2] as u32);
        airports.insert(r[3] as u32);
    }
    println!("Original file: {FULL_SIZE} instances; paper subset: {PAPER_SIZE}.");
    println!(
        "Generated {PAPER_SIZE}: {} distinct airlines (schema {NUM_AIRLINES}), {} distinct airports (schema {NUM_AIRPORTS}).",
        airlines.len(),
        airports.len()
    );
    let counts = sample.class_counts();
    println!(
        "Delay distribution: {} on-time / {} delayed ({:.1}% delayed).",
        counts[0],
        counts[1],
        100.0 * counts[1] as f64 / sample.len() as f64
    );
}
