//! Regenerate Table II: per-classifier code metrics (dependencies,
//! attributes, methods, packages, LOC) over the bundled mini-WEKA
//! corpus. The paper's property — all ten classifiers have nearly
//! identical metrics because they share the WEKA core — holds at corpus
//! scale.

use jepo_analyzer::metrics::class_metrics;
use jepo_core::corpus;

fn main() {
    let project = corpus::shared_corpus();
    let metrics: Vec<_> = corpus::ENTRY_CLASSES
        .iter()
        .filter_map(|e| class_metrics(project, e))
        .collect();
    println!("{}", jepo_core::report::table2(&metrics));
    println!(
        "(Corpus scale: {} files, {} classes. The paper's WEKA has 3,373 classes;\n\
         the invariant reproduced here is the near-identical metrics across rows.)",
        project.len(),
        project.class_count()
    );
}
