//! The paper's closing §VIII claim: "These results show an increase in
//! metrics improvement when we increase the number of instances of MOA
//! data to 20,000. For autonomous vehicles, data centers, and
//! supercomputers, where huge amount of data is analyzed in short time,
//! JEPO can help to significantly reduce the energy consumption."
//!
//! This harness sweeps the instance count and reports the Random Forest
//! package-energy improvement at each scale — the trend (bigger data →
//! bigger matrices → bigger improvement) must be non-decreasing.
//!
//! Usage: `scaling [classifier] [--jobs N]` (default "J48", 1 worker).
//! `--jobs` fans the CV folds of each measurement out over N workers
//! (0 = one per core); the measurements are bit-identical for every N.

use jepo_core::WekaExperiment;
use jepo_ml::EfficiencyProfile;
use jepo_rapl::Measurement;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let classifier = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let jobs_at = args.iter().position(|x| x == "--jobs");
            jobs_at.is_none_or(|j| *i != j && *i != j + 1) && !a.starts_with("--")
        })
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "J48".into());
    println!("Improvement vs dataset size — {classifier}\n");
    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "instances", "baseline (J)", "optimized (J)", "improvement"
    );
    println!("{}", "-".repeat(60));
    for &n in &[250usize, 500, 1_000, 2_000, 4_000] {
        let exp = WekaExperiment {
            instances: n,
            folds: 5,
            ..Default::default()
        };
        let data = exp.dataset();
        let (base, _) = exp.measure_jobs(&classifier, EfficiencyProfile::baseline(), &data, jobs);
        let (opt, _) = exp.measure_jobs(&classifier, EfficiencyProfile::optimized(), &data, jobs);
        let pct = Measurement::improvement_pct(base.package_j, opt.package_j);
        println!(
            "{:>10} {:>16.4} {:>16.4} {:>13.2}%",
            n, base.package_j, opt.package_j, pct
        );
    }
    println!("\nPaper: improvements increase at 20,000 instances. The tree classifiers");
    println!("show the mechanism: the instance matrix outgrows L1 between 500 and 1,000");
    println!("instances, at which point the strided attribute scans of the baseline start");
    println!("missing and the traversal suggestion starts paying. Random Forest's");
    println!("improvement is roughly scale-independent (its drivers — static counters and");
    println!("bagging copies — scale linearly on both sides).");
}
