//! Telemetry self-measurement — how much does `jepo-trace` cost?
//!
//! An observability layer inside an *energy measurement* harness must
//! itself be close to free, or it perturbs the quantity being measured.
//! This bench pins that down in two regimes:
//!
//! * **Kernel micro legs** — a fixed arithmetic workload run three ways:
//!   with no instrumentation site at all (`no_site`), with a span site
//!   while tracing is disabled (`disabled_site` — the thread-local read
//!   and branch every shipped call site pays), and with tracing enabled
//!   and recording (`enabled_site`). Reps of the three legs are
//!   *interleaved* so frequency drift hits all legs equally; medians are
//!   reported. The selfcheck gate requires the disabled-site overhead to
//!   be statistically indistinguishable from zero: within
//!   `max(2%, 3 × measured noise)` of the uninstrumented leg.
//! * **Table IV off/on** — the real experiment harness run with
//!   telemetry fully off and fully on (global tracer + registry),
//!   reporting wall-clock overhead. The traced `--jobs` ∈ {1, 2, 4}
//!   runs are exported, structurally validated (balanced spans, monotone
//!   timestamps, nonnegative energy), and their *masked* content is
//!   required to be bit-identical across job counts.
//!
//! * **Sampling vs instrumented profiler legs** — the bundled runnable
//!   corpus profiled three ways per rep, interleaved: a plain VM run
//!   (baseline), the instrumented profiler (probes in every method), and
//!   the sampling profiler (safepoint snapshots on a virtual-time
//!   interval, calibrated overhead subtraction). The selfcheck gates
//!   require sampling overhead strictly below instrumented overhead,
//!   a nonnegative calibration subtraction, and zero dropped samples.
//!
//! Results land in `BENCH_telemetry.json`. With `--selfcheck` the
//! process exits nonzero when any gate fails (CI's telemetry smoke).
//!
//! Usage: `telemetry [outer_iters] [work_per_iter] [--reps R]
//!         [--instances N] [--folds K] [--selfcheck]`
//! (defaults 200,000 / 200 / 7 reps / 400 instances / 2 folds).

use jepo_core::{corpus, JepoProfiler, ProfilingMode, WekaExperiment};
use jepo_jvm::Vm;
use jepo_rapl::DeviceProfile;
use jepo_trace::{Registry, Tracer};
use std::hint::black_box;
use std::time::Instant;

/// Fixed arithmetic unit (splitmix64 steps, xor-folded): the "real
/// work" an instrumentation site sits next to.
#[inline]
fn workload(steps: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..steps {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= z ^ (z >> 31);
    }
    x
}

/// ns per outer iteration for the uninstrumented loop.
fn leg_no_site(outer: u64, work: u64) -> f64 {
    let t = Instant::now();
    let mut acc = 0u64;
    for i in 0..outer {
        acc ^= workload(work, i);
    }
    black_box(acc);
    t.elapsed().as_nanos() as f64 / outer as f64
}

/// Same loop with a span site per iteration, tracing disabled — every
/// site costs one thread-local read + branch.
fn leg_disabled_site(outer: u64, work: u64) -> f64 {
    assert!(!Tracer::global().is_enabled(), "leg requires tracing off");
    let t = Instant::now();
    let mut acc = 0u64;
    for i in 0..outer {
        let _s = jepo_trace::span("bench/unit");
        acc ^= workload(work, i);
    }
    black_box(acc);
    t.elapsed().as_nanos() as f64 / outer as f64
}

/// Same loop recording into an instance tracer (the enabled price:
/// two lock acquisitions and two events per span).
fn leg_enabled_site(tracer: &Tracer, outer: u64, work: u64) -> f64 {
    tracer.clear();
    let _track = tracer.track("bench");
    let t = Instant::now();
    let mut acc = 0u64;
    for i in 0..outer {
        let _s = jepo_trace::span("bench/unit");
        acc ^= workload(work, i);
    }
    black_box(acc);
    let ns = t.elapsed().as_nanos() as f64 / outer as f64;
    assert_eq!(
        tracer.data().span_count(),
        outer as usize,
        "enabled leg must have recorded every span"
    );
    ns
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

struct MicroResult {
    no_site_ns: f64,
    disabled_ns: f64,
    enabled_ns: f64,
    noise_pct: f64,
    overhead_disabled_pct: f64,
    overhead_enabled_pct: f64,
}

/// Run the three micro legs `reps` times, interleaved; report medians
/// and the no-site leg's rep-to-rep spread as the noise floor.
fn micro(outer: u64, work: u64, reps: usize) -> MicroResult {
    let tracer = Tracer::new();
    tracer.enable();
    // One warmup round outside the books.
    leg_no_site(outer / 4 + 1, work);
    leg_disabled_site(outer / 4 + 1, work);
    leg_enabled_site(&tracer, outer / 4 + 1, work);
    let (mut no, mut dis, mut en) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..reps {
        no.push(leg_no_site(outer, work));
        dis.push(leg_disabled_site(outer, work));
        en.push(leg_enabled_site(&tracer, outer, work));
    }
    let no_min = no.iter().cloned().fold(f64::INFINITY, f64::min);
    let no_max = no.iter().cloned().fold(0.0f64, f64::max);
    let no_site_ns = median(&mut no);
    let disabled_ns = median(&mut dis);
    let enabled_ns = median(&mut en);
    MicroResult {
        no_site_ns,
        disabled_ns,
        enabled_ns,
        noise_pct: 100.0 * (no_max - no_min) / (2.0 * no_site_ns),
        overhead_disabled_pct: 100.0 * (disabled_ns - no_site_ns) / no_site_ns,
        overhead_enabled_pct: 100.0 * (enabled_ns - no_site_ns) / no_site_ns,
    }
}

struct Table4Result {
    off_secs: f64,
    on_secs: f64,
    overhead_pct: f64,
    stats: jepo_trace::validate::TraceStats,
    metric_lines: usize,
    deterministic: bool,
    trace_errors: Vec<String>,
}

/// Off/on Table IV legs plus the cross-jobs determinism check.
fn table4_legs(instances: usize, folds: usize) -> Table4Result {
    let exp = WekaExperiment {
        instances,
        folds,
        ..Default::default()
    };
    let tracer = Tracer::global();
    let registry = Registry::global();
    assert!(!tracer.is_enabled() && !registry.is_enabled());

    // Off leg (telemetry fully disabled, the shipped default).
    let t = Instant::now();
    let off_rows = exp.run_all_jobs(4);
    let off_secs = t.elapsed().as_secs_f64();

    // On legs: jobs ∈ {1, 2, 4}, each exported and validated; the
    // jobs=4 leg is the timed one (matches the off leg).
    tracer.enable();
    registry.enable();
    let mut masked: Vec<String> = Vec::new();
    let mut trace_errors = Vec::new();
    let mut on_secs = 0.0;
    let mut stats = jepo_trace::validate::TraceStats::default();
    for jobs in [1usize, 2, 4] {
        tracer.clear();
        let t = Instant::now();
        let rows = exp.run_all_jobs(jobs);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(rows.len(), off_rows.len(), "jobs={jobs} row count");
        let json = tracer.export_chrome(false);
        match jepo_trace::validate::validate_chrome(&json) {
            Ok(s) => {
                if jobs == 4 {
                    on_secs = secs;
                    stats = s;
                }
            }
            Err(e) => trace_errors.push(format!("jobs={jobs}: {e}")),
        }
        masked.push(jepo_trace::validate::masked_content(&json));
    }
    let metric_lines = registry.jsonl().lines().count();
    tracer.disable();
    registry.disable();
    tracer.clear();
    registry.clear();
    Table4Result {
        off_secs,
        on_secs,
        overhead_pct: 100.0 * (on_secs - off_secs) / off_secs.max(1e-12),
        stats,
        metric_lines,
        deterministic: masked.windows(2).all(|w| w[0] == w[1]),
        trace_errors,
    }
}

/// The "overhead_enabled_pct" this bench reported *before* span names
/// were interned (one `String` allocation per enabled span). Kept in
/// the JSON so the before/after of the interning change stays visible.
const ENABLED_OVERHEAD_BEFORE_INTERNING_PCT: f64 = 33.97;

struct SamplingResult {
    baseline_secs: f64,
    instrumented_secs: f64,
    sampling_secs: f64,
    instrumented_overhead_pct: f64,
    sampling_overhead_pct: f64,
    interval_us: u64,
    samples: u64,
    dropped: u64,
    calibration_j: f64,
    raw_total_j: f64,
    calibrated_total_j: f64,
}

/// Profile the bundled corpus three ways per rep — plain run,
/// instrumented, sampling — interleaved; report medians. The baseline
/// is a bare compile+run so both profiler modes pay their full cost
/// (discovery, attribution) against the same floor.
fn sampling_legs(reps: usize, interval_us: u64) -> SamplingResult {
    let project = corpus::runnable_project();
    let baseline = || {
        let mut vm = Vm::from_project(&project)
            .expect("corpus compiles")
            .with_device(DeviceProfile::laptop_i5_3317u())
            .with_fuel(2_000_000_000);
        vm.run_main().expect("corpus runs");
    };
    // Warmup round outside the books.
    baseline();
    JepoProfiler::new().profile(&project).expect("instrumented");
    let (mut base, mut inst, mut samp) = (Vec::new(), Vec::new(), Vec::new());
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        baseline();
        base.push(t.elapsed().as_secs_f64());

        let t = Instant::now();
        JepoProfiler::new().profile(&project).expect("instrumented");
        inst.push(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let report = JepoProfiler::new()
            .with_mode(ProfilingMode::Sampling { interval_us })
            .profile(&project)
            .expect("sampling");
        samp.push(t.elapsed().as_secs_f64());
        last = report.sampled;
    }
    let s = last.expect("sampling mode returns attribution");
    let baseline_secs = median(&mut base);
    let instrumented_secs = median(&mut inst);
    let sampling_secs = median(&mut samp);
    let floor = baseline_secs.max(1e-12);
    SamplingResult {
        baseline_secs,
        instrumented_secs,
        sampling_secs,
        instrumented_overhead_pct: 100.0 * (instrumented_secs - baseline_secs) / floor,
        sampling_overhead_pct: 100.0 * (sampling_secs - baseline_secs) / floor,
        interval_us,
        samples: s.samples,
        dropped: s.dropped,
        calibration_j: s.calibration_j,
        raw_total_j: s.raw_total_j,
        calibrated_total_j: s.calibrated_total_j,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let selfcheck = args.iter().any(|a| a == "--selfcheck");
    let flag_positions: Vec<usize> = ["--reps", "--instances", "--folds"]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == f))
        .flat_map(|i| [i, i + 1])
        .chain(args.iter().position(|a| a == "--selfcheck"))
        .collect();
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, _)| !flag_positions.contains(i))
        .map(|(_, a)| a)
        .collect();
    let outer: u64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let work: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let reps = flag("--reps").unwrap_or(7).max(1);
    let instances = flag("--instances").unwrap_or(400);
    let folds = flag("--folds").unwrap_or(2);

    eprintln!(
        "telemetry bench: {outer} sites × {work} splitmix steps × {reps} reps; \
         Table IV at {instances} instances / {folds} folds…"
    );

    let m = micro(outer, work, reps);
    println!(
        "micro: no_site {:.2} ns, disabled_site {:.2} ns ({:+.3}%), \
         enabled_site {:.2} ns ({:+.1}%), noise ±{:.3}%",
        m.no_site_ns,
        m.disabled_ns,
        m.overhead_disabled_pct,
        m.enabled_ns,
        m.overhead_enabled_pct,
        m.noise_pct
    );

    let t4 = table4_legs(instances, folds);
    println!(
        "table4: off {:.3} s, on {:.3} s ({:+.1}%); trace {} events / {} spans / \
         {} tracks, {:.3} J attributed; {} metric lines; deterministic: {}",
        t4.off_secs,
        t4.on_secs,
        t4.overhead_pct,
        t4.stats.events,
        t4.stats.spans,
        t4.stats.tracks,
        t4.stats.total_package_j,
        t4.metric_lines,
        t4.deterministic
    );
    for e in &t4.trace_errors {
        eprintln!("trace validation failed: {e}");
    }

    let s = sampling_legs(reps, 20);
    println!(
        "sampling: baseline {:.3} s, instrumented {:.3} s ({:+.1}%), \
         sampling {:.3} s ({:+.1}%); {} samples ({} dropped) @ {} µs, \
         calibration {:.6} J, raw {:.6} J → calibrated {:.6} J",
        s.baseline_secs,
        s.instrumented_secs,
        s.instrumented_overhead_pct,
        s.sampling_secs,
        s.sampling_overhead_pct,
        s.samples,
        s.dropped,
        s.interval_us,
        s.calibration_j,
        s.raw_total_j,
        s.calibrated_total_j
    );

    // Selfcheck gates.
    let disabled_gate = f64::max(2.0, 3.0 * m.noise_pct);
    let disabled_ok = m.overhead_disabled_pct <= disabled_gate;
    let traces_ok = t4.trace_errors.is_empty() && t4.stats.spans > 0;
    let sampling_cheaper = s.sampling_overhead_pct < s.instrumented_overhead_pct;
    let calibration_ok = s.calibration_j >= 0.0 && s.calibrated_total_j >= 0.0;
    let no_drops = s.dropped == 0 && s.samples > 0;
    let failures: Vec<&str> = [
        (!disabled_ok).then_some("disabled-site overhead above the noise gate"),
        (!traces_ok).then_some("Chrome trace failed structural validation"),
        (!t4.deterministic).then_some("masked trace content differs across --jobs"),
        (!sampling_cheaper).then_some("sampling overhead not below instrumented overhead"),
        (!calibration_ok).then_some("calibration subtraction went negative"),
        (!no_drops).then_some("sampling profiler dropped samples"),
    ]
    .into_iter()
    .flatten()
    .collect();

    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \
         \"outer_iters\": {outer},\n  \"work_per_iter\": {work},\n  \"reps\": {reps},\n  \
         \"micro\": {{\n    \
         \"no_site_ns\": {:.3},\n    \"disabled_site_ns\": {:.3},\n    \
         \"enabled_site_ns\": {:.3},\n    \"noise_pct\": {:.3},\n    \
         \"overhead_disabled_pct\": {:.3},\n    \"overhead_enabled_pct\": {:.3},\n    \
         \"overhead_enabled_before_interning_pct\": {ENABLED_OVERHEAD_BEFORE_INTERNING_PCT:.2},\n    \
         \"disabled_gate_pct\": {:.3}\n  }},\n  \
         \"table4\": {{\n    \
         \"instances\": {instances},\n    \"folds\": {folds},\n    \
         \"off_secs\": {:.4},\n    \"on_secs\": {:.4},\n    \
         \"overhead_pct\": {:.2},\n    \"trace_events\": {},\n    \
         \"trace_spans\": {},\n    \"trace_tracks\": {},\n    \
         \"trace_package_j\": {:.6},\n    \"metric_lines\": {},\n    \
         \"deterministic_across_jobs\": {}\n  }},\n  \
         \"sampling\": {{\n    \
         \"interval_us\": {},\n    \"baseline_secs\": {:.4},\n    \
         \"instrumented_secs\": {:.4},\n    \"sampling_secs\": {:.4},\n    \
         \"instrumented_overhead_pct\": {:.2},\n    \"sampling_overhead_pct\": {:.2},\n    \
         \"samples\": {},\n    \"dropped\": {},\n    \
         \"calibration_j\": {:.9},\n    \"raw_total_j\": {:.9},\n    \
         \"calibrated_total_j\": {:.9}\n  }},\n  \
         \"selfcheck\": {{\n    \"enforced\": {selfcheck},\n    \"passed\": {},\n    \
         \"failures\": [{}]\n  }}\n}}\n",
        m.no_site_ns,
        m.disabled_ns,
        m.enabled_ns,
        m.noise_pct,
        m.overhead_disabled_pct,
        m.overhead_enabled_pct,
        disabled_gate,
        t4.off_secs,
        t4.on_secs,
        t4.overhead_pct,
        t4.stats.events,
        t4.stats.spans,
        t4.stats.tracks,
        t4.stats.total_package_j,
        t4.metric_lines,
        t4.deterministic,
        s.interval_us,
        s.baseline_secs,
        s.instrumented_secs,
        s.sampling_secs,
        s.instrumented_overhead_pct,
        s.sampling_overhead_pct,
        s.samples,
        s.dropped,
        s.calibration_j,
        s.raw_total_j,
        s.calibrated_total_j,
        failures.is_empty(),
        failures
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let path = "BENCH_telemetry.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path}."),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if selfcheck && !failures.is_empty() {
        for f in &failures {
            eprintln!("selfcheck FAILED: {f}");
        }
        std::process::exit(1);
    }
    if selfcheck {
        println!("selfcheck passed.");
    }
}
