//! # jepo-bench — benchmark harnesses
//!
//! One binary per paper table (`table1`–`table4`), one for the figures
//! (`figures`), an ablation sweep (`ablation` bench + `dimensions` bin),
//! and Criterion micro-benchmarks for the hot paths (classifier
//! training, VM interpretation, analyzer throughput, RAPL sampling).
//!
//! Reproduction targets:
//!
//! | Paper artifact | Regenerate with |
//! |---|---|
//! | Table I   | `cargo run -p jepo-bench --bin table1 --release` |
//! | Table II  | `cargo run -p jepo-bench --bin table2 --release` |
//! | Table III | `cargo run -p jepo-bench --bin table3 --release` |
//! | Table IV  | `cargo run -p jepo-bench --bin table4 --release` |
//! | Figs 1–5  | `cargo run -p jepo-bench --bin figures --release` |
//!
//! Perf microbenches (not paper artifacts): `--bin kernel` measures the
//! op-accounting hot path (thread-local scoreboards vs the old per-op
//! atomic design) and writes `BENCH_kernel.json`.

/// Shared helper: print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a ratio as the paper's "+N%" convention.
pub fn pct_more(ratio: f64) -> String {
    format!("+{:.0}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pct_more_formats_like_the_paper() {
        assert_eq!(super::pct_more(178.0), "+17700%");
        assert_eq!(super::pct_more(17.2), "+1620%");
        assert_eq!(super::pct_more(1.37), "+37%");
    }
}
