//! Criterion: bytecode VM throughput — plain vs instrumented (the
//! profiler's probe overhead) and cache model on/off.

use criterion::{criterion_group, criterion_main, Criterion};
use jepo_jvm::{EnergySettings, Vm};

const HOT_LOOP: &str = "class M {
    static int work(int n) {
        int s = 0;
        for (int i = 1; i < n; i++) { s += i % 7; }
        return s;
    }
    public static void main(String[] a) { System.out.println(work(20000)); }
}";

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm");
    group.sample_size(20);
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut vm = Vm::from_source(HOT_LOOP).unwrap();
            vm.run_main().unwrap().ops_executed
        });
    });
    group.bench_function("instrumented", |b| {
        b.iter(|| {
            let mut vm = Vm::from_source(HOT_LOOP).unwrap();
            vm.instrument();
            vm.run_main().unwrap().ops_executed
        });
    });
    group.bench_function("cache_model_off", |b| {
        b.iter(|| {
            let mut vm = Vm::from_source(HOT_LOOP)
                .unwrap()
                .with_settings(EnergySettings {
                    cache_enabled: false,
                    ..Default::default()
                });
            vm.run_main().unwrap().ops_executed
        });
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
