//! Criterion: analyzer throughput over the bundled corpus —
//! full-project analysis (optimizer flow) vs incremental (dynamic flow)
//! vs refactoring.

use criterion::{criterion_group, criterion_main, Criterion};
use jepo_analyzer::{analyze_project, DynamicAnalyzer};

fn bench_analysis(c: &mut Criterion) {
    let project = jepo_core::corpus::full_corpus();
    let mut group = c.benchmark_group("analyzer");
    group.bench_function("full_project", |b| {
        b.iter(|| analyze_project(&project).len());
    });
    group.bench_function("dynamic_single_file", |b| {
        let mut da = DynamicAnalyzer::new();
        b.iter(|| {
            da.update("MathUtils.java", jepo_core::corpus::MATH_UTILS)
                .current
                .len()
        });
    });
    group.bench_function("refactor_project", |b| {
        b.iter(|| {
            let mut p = jepo_core::corpus::full_corpus();
            jepo_core::JepoOptimizer::new().apply(&mut p).total_changes
        });
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
