//! Criterion-reported ablation: Table IV's Random-Forest improvement with
//! each efficiency-profile dimension reverted one at a time, plus the
//! cost-model ablation (uniform costs vs paper-calibrated).

use criterion::{criterion_group, criterion_main, Criterion};
use jepo_core::WekaExperiment;
use jepo_ml::classifiers::by_name;
use jepo_ml::eval::crossval::stratified_cross_validate;
use jepo_ml::{EfficiencyProfile, Kernel};
use jepo_rapl::{CostModel, Measurement};

/// Not a timing bench: runs once under criterion's harness entry point
/// and prints the ablation table (criterion is the workspace's bench
/// runner; `--bin dimensions` offers the standalone variant).
fn ablation_report(_c: &mut Criterion) {
    let exp = WekaExperiment {
        instances: 600,
        folds: 4,
        ..Default::default()
    };
    let data = exp.dataset();
    let (base, _) = exp.measure("Random Forest", EfficiencyProfile::baseline(), &data);
    let (opt, _) = exp.measure("Random Forest", EfficiencyProfile::optimized(), &data);
    let full = Measurement::improvement_pct(base.package_j, opt.package_j);
    println!("\nAblation (Random Forest, 600 instances): full improvement {full:.2}%");
    for dim in EfficiencyProfile::DIMENSIONS {
        let (partial, _) = exp.measure(
            "Random Forest",
            EfficiencyProfile::optimized_except(dim),
            &data,
        );
        let pct = Measurement::improvement_pct(base.package_j, partial.package_j);
        println!(
            "  without `{dim}` fix: {pct:.2}% (lost {:.2} pp)",
            full - pct
        );
    }
    // Cost-model ablation: with uniform per-op costs the improvement
    // collapses — Table IV depends on cost heterogeneity.
    let uniform = CostModel::uniform(2.0);
    let joules_under = |profile: EfficiencyProfile| {
        let kernel = Kernel::new(profile);
        stratified_cross_validate(&data, 4, exp.seed, || {
            by_name("Random Forest", kernel.clone(), exp.seed).unwrap()
        });
        uniform.joules_for(&kernel.take_snapshot())
    };
    let b = joules_under(EfficiencyProfile::baseline());
    let o = joules_under(EfficiencyProfile::optimized());
    println!(
        "  uniform cost model: improvement {:.2}% (heterogeneity is the effect)",
        Measurement::improvement_pct(b, o)
    );
}

criterion_group!(benches, ablation_report);
criterion_main!(benches);
