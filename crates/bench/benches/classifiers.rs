//! Criterion: classifier training/prediction throughput on airlines data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jepo_ml::classifiers::{by_name, Classifier, CLASSIFIER_NAMES};
use jepo_ml::data::airlines::AirlinesGenerator;
use jepo_ml::Kernel;

fn bench_training(c: &mut Criterion) {
    let data = AirlinesGenerator::new(7).generate(300);
    let mut group = c.benchmark_group("train_300");
    group.sample_size(10);
    for name in CLASSIFIER_NAMES {
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            b.iter(|| {
                let mut clf = by_name(name, Kernel::silent(), 1).unwrap();
                clf.fit(data).unwrap();
                clf
            });
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let data = AirlinesGenerator::new(7).generate(300);
    let mut group = c.benchmark_group("predict_300");
    group.sample_size(10);
    for name in ["J48", "Naive Bayes", "IBk", "Random Forest"] {
        let mut clf = by_name(name, Kernel::silent(), 1).unwrap();
        clf.fit(&data).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut s = 0.0;
                for row in &data.instances {
                    s += clf.predict(row);
                }
                s
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
