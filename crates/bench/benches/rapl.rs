//! Criterion: RAPL substrate overheads — counter sampling, op counting,
//! meter reads.

use criterion::{criterion_group, criterion_main, Criterion};
use jepo_rapl::{
    CostModel, CounterReader, DeviceProfile, EnergyMeter, MsrDevice, OpCategory, OpCounter,
    SimMeter, SimulatedRapl,
};
use std::sync::Arc;

fn bench_rapl(c: &mut Criterion) {
    let mut group = c.benchmark_group("rapl");
    let sim = Arc::new(SimulatedRapl::new(DeviceProfile::laptop_i5_3317u()));
    group.bench_function("op_counter_incr", |b| {
        let ctr = OpCounter::new();
        b.iter(|| {
            for _ in 0..1000 {
                ctr.incr(OpCategory::IntAlu);
            }
            ctr.snapshot().total_ops()
        });
    });
    group.bench_function("cost_model_joules", |b| {
        let ctr = OpCounter::new();
        for cat in OpCategory::ALL {
            ctr.add(cat, 1000);
        }
        let model = CostModel::paper_calibrated();
        let snap = ctr.snapshot();
        b.iter(|| model.joules_for(&snap));
    });
    group.bench_function("msr_read", |b| {
        b.iter(|| sim.read_msr(0x611).unwrap());
    });
    group.bench_function("meter_read", |b| {
        let meter = SimMeter::new(sim.clone());
        b.iter(|| meter.read());
    });
    group.bench_function("counter_reader_update", |b| {
        let mut reader = CounterReader::new(Default::default());
        let mut raw = 0u32;
        b.iter(|| {
            raw = raw.wrapping_add(1013);
            reader.update(raw)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rapl);
criterion_main!(benches);
