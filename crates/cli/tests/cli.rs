//! End-to-end tests of the `jepo` binary against real files on disk.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn jepo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jepo"))
}

fn temp_project(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jepo-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(dir.join("util")).unwrap();
    fs::write(
        dir.join("util/Calc.java"),
        "package util;
         public class Calc {
             static int calls;
             public static int mod(int a, int b) { calls = calls + 1; return a % b; }
             public static int pick(int x) { return x > 0 ? x : 0 - x; }
         }",
    )
    .unwrap();
    fs::write(
        dir.join("Main.java"),
        "import util.Calc;
         public class Main {
             public static void main(String[] args) {
                 int s = 0;
                 for (int i = 1; i < 500; i++) { s += Calc.mod(i, 7); }
                 System.out.println(Calc.pick(s));
             }
         }",
    )
    .unwrap();
    dir
}

#[test]
fn analyze_reports_suggestions_with_lines() {
    let dir = temp_project("analyze");
    let out = jepo()
        .args(["analyze", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Modulus"), "{stdout}");
    assert!(stdout.contains("Ternary"), "{stdout}");
    assert!(stdout.contains("static keyword"), "{stdout}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn optimize_dry_run_then_write() {
    let dir = temp_project("optimize");
    let before = fs::read_to_string(dir.join("util/Calc.java")).unwrap();
    // Dry run: no change on disk.
    let out = jepo()
        .args(["optimize", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        before,
        fs::read_to_string(dir.join("util/Calc.java")).unwrap()
    );
    // --write rewrites the ternary into if/else.
    let out = jepo()
        .args(["optimize", dir.to_str().unwrap(), "--write"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let after = fs::read_to_string(dir.join("util/Calc.java")).unwrap();
    assert_ne!(before, after);
    assert!(!after.contains('?'), "ternary refactored away:\n{after}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_runs_and_writes_result_txt() {
    let dir = temp_project("profile");
    let out = jepo()
        .args(["profile", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Calc.mod"), "{stdout}");
    assert!(stdout.contains("Energy Consumed"), "{stdout}");
    let result = fs::read_to_string(dir.join("result.txt")).unwrap();
    assert!(result.lines().count() >= 500, "one line per execution");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_prints_table2_columns() {
    let dir = temp_project("metrics");
    let out = jepo()
        .args(["metrics", dir.to_str().unwrap(), "Main", "Calc"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Dependencies"));
    assert!(stdout.contains("Main"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = jepo().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = jepo()
        .args(["analyze", "/nonexistent/nowhere"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn table4_writes_valid_trace_and_metrics() {
    let dir = std::env::temp_dir().join(format!("jepo-cli-telemetry-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t4.json");
    let metrics = dir.join("t4.jsonl");
    let out = jepo()
        .args([
            "table4",
            "200",
            "2",
            "--jobs",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The trace must pass the structural gate: balanced spans, monotone
    // timestamps, nonnegative energy.
    let json = fs::read_to_string(&trace).unwrap();
    let stats = jepo_trace::validate::validate_chrome(&json).expect("valid Chrome trace");
    assert!(stats.spans >= 10 * 3, "a span triple per Table IV row");
    assert!(json.contains("row/Naive Bayes"), "per-row track present");
    assert!(json.contains("table4/dataset"));
    // The metrics dump carries the pool's per-worker accounting.
    let m = fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("\"metric\":\"pool.items\""), "{m}");
    assert!(m.contains("\"metric\":\"pool.worker.busy_ns\""), "{m}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_content_is_identical_for_any_job_count() {
    let dir = std::env::temp_dir().join(format!("jepo-cli-tracedet-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let run = |jobs: &str, name: &str| -> String {
        let path = dir.join(name);
        let out = jepo()
            .args([
                "table4",
                "120",
                "2",
                "--jobs",
                jobs,
                "--trace",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        jepo_trace::validate::masked_content(&fs::read_to_string(&path).unwrap())
    };
    let j1 = run("1", "j1.json");
    let j2 = run("2", "j2.json");
    let j4 = run("4", "j4.json");
    assert_eq!(j1, j2, "span content must not depend on --jobs");
    assert_eq!(j1, j4);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_trace_carries_vm_spans_with_energy() {
    let dir = temp_project("trace-profile");
    let trace = dir.join("profile-trace.json");
    let out = jepo()
        .args([
            "profile",
            dir.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = fs::read_to_string(&trace).unwrap();
    let stats = jepo_trace::validate::validate_chrome(&json).expect("valid Chrome trace");
    assert!(json.contains("profile/run"), "{json}");
    assert!(json.contains("vm/main"), "{json}");
    // The VM binds a RAPL probe, so the run's spans carry energy.
    assert!(stats.total_package_j > 0.0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_flag_without_value_is_a_usage_error() {
    let out = jepo().args(["table4", "--trace"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn optimized_profile_costs_less_on_disk_roundtrip() {
    // Full CLI loop: profile → optimize --write → profile again.
    let dir = temp_project("roundtrip");
    let energy = |dir: &PathBuf| -> f64 {
        let out = jepo()
            .args(["profile", dir.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let total_line = stdout.lines().find(|l| l.contains("| total")).unwrap();
        total_line
            .split("total ")
            .nth(1)
            .unwrap()
            .split(" mJ")
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let before = energy(&dir);
    let out = jepo()
        .args(["optimize", dir.to_str().unwrap(), "--write"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let after = energy(&dir);
    assert!(after <= before, "{after} vs {before}");
    fs::remove_dir_all(&dir).ok();
}

/// Append a regressive method (string concat in a loop) to a generated
/// corpus file — the scripted patch the CI energy gate applies.
fn apply_regressive_patch(file: &PathBuf) {
    let src = fs::read_to_string(file).unwrap();
    let body = src.trim_end().strip_suffix('}').unwrap().to_string();
    fs::write(
        file,
        format!(
            "{body}    public String regress(String[] parts, int n) {{\n        \
             String s = \"\";\n        \
             for (int i = 0; i < n; i++) {{ s += parts[i]; }}\n        \
             return s;\n    }}\n}}\n"
        ),
    )
    .unwrap();
}

#[test]
fn gen_corpus_is_deterministic_and_analyzable() {
    let root = std::env::temp_dir().join(format!("jepo-cli-gen-{}", std::process::id()));
    let a = root.join("a");
    let b = root.join("b");
    for dir in [&a, &b] {
        let out = jepo()
            .args([
                "gen-corpus",
                dir.to_str().unwrap(),
                "--files",
                "12",
                "--seed",
                "9",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Same seed → byte-identical corpora.
    for i in 0..12 {
        let name = format!("gen/Gen{i:05}.java");
        assert_eq!(
            fs::read_to_string(a.join(&name)).unwrap(),
            fs::read_to_string(b.join(&name)).unwrap(),
            "{name}"
        );
    }
    let out = jepo()
        .args(["analyze", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn analyze_cache_dir_warm_run_is_byte_identical() {
    let dir = temp_project("cache-warm");
    let cache = dir.join(".jepo-cache");
    let run = || {
        let out = jepo()
            .args([
                "analyze",
                dir.to_str().unwrap(),
                "--cache-dir",
                cache.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            out.stdout,
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (cold_stdout, cold_stderr) = run();
    assert!(
        cache.join("analysis.jepocache").is_file(),
        "cache persisted"
    );
    assert!(
        cold_stderr.contains("0 unchanged file(s) reused, 2 analyzed"),
        "{cold_stderr}"
    );
    let (warm_stdout, warm_stderr) = run();
    // The warm run re-analyzes nothing and prints the same bytes.
    assert!(
        warm_stderr.contains("2 unchanged file(s) reused, 0 analyzed"),
        "{warm_stderr}"
    );
    assert_eq!(
        cold_stdout, warm_stdout,
        "cold vs warm stdout must match byte-for-byte"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn energy_view_ranks_methods() {
    let dir = temp_project("energy");
    let out = jepo()
        .args(["energy", dir.to_str().unwrap(), "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("static per-method energy"), "{stdout}");
    // Main.main drives the 500-trip loop over Calc.mod, so it must
    // carry the largest estimate and lead the ranking.
    let first_row = stdout
        .lines()
        .find(|l| l.contains("Main.java"))
        .expect("Main ranked");
    assert!(first_row.contains("Main.main"), "{stdout}");
    let main_pos = stdout.find("Main.main").unwrap();
    let pick_pos = stdout.find("Calc.pick").expect("Calc.pick listed");
    assert!(main_pos < pick_pos, "hot method first:\n{stdout}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn callee_only_edit_invalidates_cached_caller() {
    // Regression test for content-only invalidation: the caller file's
    // bytes never change, yet its suggestions must track the callee.
    let dir = std::env::temp_dir().join(format!("jepo-cli-stale-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let helper_cheap = "public class Helper {
         public static int work(int x) { return x + 1; }
     }";
    let helper_alloc = "public class Helper {
         public static int work(int x) { int[] b = new int[8]; b[0] = x; return b[0]; }
     }";
    fs::write(dir.join("Helper.java"), helper_cheap).unwrap();
    fs::write(
        dir.join("Caller.java"),
        "public class Caller {
             public int drive(int n) {
                 int s = 0;
                 for (int i = 0; i < n; i++) { s = s + Helper.work(i); }
                 return s;
             }
         }",
    )
    .unwrap();
    let cache = dir.join(".jepo-cache");
    let run = || {
        let out = jepo()
            .args([
                "analyze",
                dir.to_str().unwrap(),
                "--cache-dir",
                cache.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (cold_stdout, cold_stderr) = run();
    assert!(cold_stderr.contains("0 unchanged file(s) reused, 2 analyzed"));
    assert!(
        !cold_stdout.contains("allocates inside the callee"),
        "cheap callee must not fire the rule:\n{cold_stdout}"
    );

    // Edit ONLY the callee; the caller's bytes are untouched.
    fs::write(dir.join("Helper.java"), helper_alloc).unwrap();
    let (edited_stdout, edited_stderr) = run();
    assert!(
        edited_stderr.contains("0 unchanged file(s) reused, 2 analyzed"),
        "the caller's dependency hash must dirty it too: {edited_stderr}"
    );
    assert!(
        edited_stdout.contains("allocates inside the callee"),
        "caller must pick up the callee's new allocation:\n{edited_stdout}"
    );
    assert!(edited_stdout.contains("Caller"), "{edited_stdout}");

    // Steady state: everything warm again, output byte-identical.
    let (warm_stdout, warm_stderr) = run();
    assert!(
        warm_stderr.contains("2 unchanged file(s) reused, 0 analyzed"),
        "{warm_stderr}"
    );
    assert_eq!(edited_stdout, warm_stdout);
    fs::remove_dir_all(&dir).ok();
}

/// Tentpole: the daemon's warm responses are byte-identical to the
/// real binary's cold stdout, and a `shutdown` request drains the
/// daemon to a clean exit 0.
#[test]
fn serve_daemon_matches_cli_bytes_and_drains_on_shutdown() {
    use std::io::BufRead;
    let dir = temp_project("serve");
    let mut child = jepo()
        .args(["serve", "--addr", "127.0.0.1:0", "--queue", "8"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The first stdout line announces the bound address.
    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    // The corpus exactly as load_project ships it: sorted paths,
    // root-relative names.
    let files = vec![
        (
            "Main.java".to_string(),
            fs::read_to_string(dir.join("Main.java")).unwrap(),
        ),
        (
            "util/Calc.java".to_string(),
            fs::read_to_string(dir.join("util/Calc.java")).unwrap(),
        ),
    ];
    let cli_stdout = |args: &[&str]| -> String {
        let out = jepo().args(args).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let cases: Vec<(jepo_serve::Request, String)> = {
        let mut analyze = jepo_serve::Request::new("analyze");
        analyze.files = files.clone();
        let mut energy = jepo_serve::Request::new("energy");
        energy.params.push(("top".into(), "3".into()));
        energy.files = files;
        let mut table4 = jepo_serve::Request::new("table4");
        table4.params.push(("instances".into(), "120".into()));
        table4.params.push(("folds".into(), "2".into()));
        vec![
            (analyze, cli_stdout(&["analyze", dir.to_str().unwrap()])),
            (
                energy,
                cli_stdout(&["energy", dir.to_str().unwrap(), "--top", "3"]),
            ),
            (table4, cli_stdout(&["table4", "120", "2"])),
        ]
    };
    for round in 0..2 {
        for (req, want) in &cases {
            let resp = jepo_serve::request(&addr, req).expect("request served");
            assert!(resp.is_ok(), "{:?}", resp.error);
            assert_eq!(
                &resp.body, want,
                "round {round}: served {} bytes differ from CLI stdout",
                req.verb
            );
            if round > 0 {
                assert_eq!(resp.cache, "warm", "{}: repeat must be warm", req.verb);
            }
        }
    }

    let resp = jepo_serve::request(&addr, &jepo_serve::Request::new("shutdown")).unwrap();
    assert!(resp.is_ok());
    let status = child.wait().unwrap();
    assert!(status.success(), "serve must drain and exit 0: {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).unwrap();
    assert!(rest.contains("drained and stopped"), "{rest}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_energy_gates_on_regression() {
    let root = std::env::temp_dir().join(format!("jepo-cli-diff-{}", std::process::id()));
    let a = root.join("a");
    let out = jepo()
        .args([
            "gen-corpus",
            a.to_str().unwrap(),
            "--files",
            "10",
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Identical revisions: no regression, exit 0 even when gated.
    let out = jepo()
        .args([
            "diff-energy",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
            "--fail-on-regression",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "identical revisions must pass the gate"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("No suggestion changes"), "{stdout}");

    // Patched revision: gate trips with exit code 3.
    let b = root.join("b");
    fs::create_dir_all(b.join("gen")).unwrap();
    for entry in fs::read_dir(a.join("gen")).unwrap() {
        let p = entry.unwrap().path();
        fs::copy(&p, b.join("gen").join(p.file_name().unwrap())).unwrap();
    }
    apply_regressive_patch(&b.join("gen/Gen00002.java"));
    let out = jepo()
        .args([
            "diff-energy",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--cache-dir",
            root.join("cache").to_str().unwrap(),
            "--fail-on-regression",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "regression must exit 3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("String concatenation"), "{stdout}");
    assert!(
        stdout.contains("reused 9 unchanged file(s)"),
        "B must reuse A's analysis for the 9 untouched files: {stdout}"
    );

    // Without the gate flag the same diff reports but exits 0.
    let out = jepo()
        .args(["diff-energy", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "ungated diff-energy always exits 0");
    fs::remove_dir_all(&root).ok();
}
