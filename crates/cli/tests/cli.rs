//! End-to-end tests of the `jepo` binary against real files on disk.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn jepo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jepo"))
}

fn temp_project(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jepo-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(dir.join("util")).unwrap();
    fs::write(
        dir.join("util/Calc.java"),
        "package util;
         public class Calc {
             static int calls;
             public static int mod(int a, int b) { calls = calls + 1; return a % b; }
             public static int pick(int x) { return x > 0 ? x : 0 - x; }
         }",
    )
    .unwrap();
    fs::write(
        dir.join("Main.java"),
        "import util.Calc;
         public class Main {
             public static void main(String[] args) {
                 int s = 0;
                 for (int i = 1; i < 500; i++) { s += Calc.mod(i, 7); }
                 System.out.println(Calc.pick(s));
             }
         }",
    )
    .unwrap();
    dir
}

#[test]
fn analyze_reports_suggestions_with_lines() {
    let dir = temp_project("analyze");
    let out = jepo()
        .args(["analyze", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Modulus"), "{stdout}");
    assert!(stdout.contains("Ternary"), "{stdout}");
    assert!(stdout.contains("static keyword"), "{stdout}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn optimize_dry_run_then_write() {
    let dir = temp_project("optimize");
    let before = fs::read_to_string(dir.join("util/Calc.java")).unwrap();
    // Dry run: no change on disk.
    let out = jepo()
        .args(["optimize", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        before,
        fs::read_to_string(dir.join("util/Calc.java")).unwrap()
    );
    // --write rewrites the ternary into if/else.
    let out = jepo()
        .args(["optimize", dir.to_str().unwrap(), "--write"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let after = fs::read_to_string(dir.join("util/Calc.java")).unwrap();
    assert_ne!(before, after);
    assert!(!after.contains('?'), "ternary refactored away:\n{after}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_runs_and_writes_result_txt() {
    let dir = temp_project("profile");
    let out = jepo()
        .args(["profile", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Calc.mod"), "{stdout}");
    assert!(stdout.contains("Energy Consumed"), "{stdout}");
    let result = fs::read_to_string(dir.join("result.txt")).unwrap();
    assert!(result.lines().count() >= 500, "one line per execution");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_prints_table2_columns() {
    let dir = temp_project("metrics");
    let out = jepo()
        .args(["metrics", dir.to_str().unwrap(), "Main", "Calc"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Dependencies"));
    assert!(stdout.contains("Main"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = jepo().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = jepo()
        .args(["analyze", "/nonexistent/nowhere"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn optimized_profile_costs_less_on_disk_roundtrip() {
    // Full CLI loop: profile → optimize --write → profile again.
    let dir = temp_project("roundtrip");
    let energy = |dir: &PathBuf| -> f64 {
        let out = jepo()
            .args(["profile", dir.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let total_line = stdout.lines().find(|l| l.contains("| total")).unwrap();
        total_line
            .split("total ")
            .nth(1)
            .unwrap()
            .split(" mJ")
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let before = energy(&dir);
    let out = jepo()
        .args(["optimize", dir.to_str().unwrap(), "--write"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let after = energy(&dir);
    assert!(after <= before, "{after} vs {before}");
    fs::remove_dir_all(&dir).ok();
}
