//! `jepo` — the command-line surface of the reproduction.
//!
//! The paper ships JEPO as an Eclipse plugin; this binary exposes the
//! same two flows (profiler, optimizer) plus the evaluation harness for
//! projects of `.java` files on disk:
//!
//! ```text
//! jepo analyze  <dir|file> [--cache-dir D]
//!                                   suggestions for every class (Fig. 5);
//!                                   with a cache dir, unchanged files are
//!                                   served from the incremental cache
//! jepo optimize <dir|file> [--write] [--aggressive]
//!                                   apply refactorings; print or write back
//! jepo profile  <dir|file> [--main Class] [--mode instrumented|sampling|both]
//!               [--interval us]   per-method energy (Fig. 4): probe
//!                                   instrumentation, statistical sampling
//!                                   with calibrated overhead subtraction,
//!                                   or both side by side
//! jepo metrics  <dir> <Class...>    Table II metrics for entry classes
//! jepo table4   [instances] [folds] [--jobs N]
//!                                   the WEKA evaluation (N workers;
//!                                   0 = one per core; output is
//!                                   identical for every N)
//! jepo gen-corpus <dir> [--files N] [--seed S] [--rate R]
//!                                   write a deterministic generated corpus
//! jepo energy  <dir|file> [--top N] ranked static per-method energy
//!                                   estimates (summary cost × trip
//!                                   products, propagated up the call graph)
//! jepo diff-energy <dirA> <dirB> [--cache-dir D] [--fail-on-regression]
//!                                   analyze two revisions (B reuses A's
//!                                   analysis for unchanged files), report
//!                                   added/removed suggestions and the
//!                                   estimated energy-impact delta; exit 3
//!                                   on regression when gated
//! ```
//!
//! `analyze` and `diff-energy` run the interprocedural analyzer (whole
//! program call-graph summaries; cross-method rules), and their caches
//! are dependency-aware: editing only a callee re-analyzes its callers.
//!
//! Every subcommand also accepts the global telemetry flags
//! `--trace <out.json>` (Chrome trace-event export of the run) and
//! `--metrics <out.jsonl>` (metrics-registry dump, one JSON object per
//! line).

use jepo_core::{corpus, JepoOptimizer, JepoProfiler, ProfilingMode};
use jepo_jlang::JavaProject;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "jepo — Java Energy Profiler & Optimizer (IPPS 2020 reproduction)\n\n\
         usage:\n  \
         jepo analyze  <dir|file> [--cache-dir <dir>]\n  \
         jepo optimize <dir|file> [--write] [--aggressive]\n  \
         jepo profile  <dir|file> [--main <Class>] [--mode instrumented|sampling|both]\n                \
         [--interval <us>]  (sampling interval, default 100 µs)\n  \
         jepo metrics  <dir> <Class> [<Class>...]\n  \
         jepo table4   [instances] [folds] [--jobs <N>]\n  \
         jepo gen-corpus <dir> [--files <N>] [--seed <S>] [--rate <0..1>]\n  \
         jepo energy  <dir|file> [--top <N>]   ranked static per-method energy\n  \
         jepo diff-energy <dirA> <dirB> [--cache-dir <dir>] [--jobs <N>]\n                   \
         [--fail-on-regression]  (exit 3 on an energy regression)\n  \
         jepo serve    [--addr <host:port>] [--jobs <N>] [--queue <depth>]\n                \
         long-lived profiling daemon with a shared hot cache;\n                \
         a `shutdown` request drains the queue and exits 0\n  \
         jepo demo     (run the bundled mini-WEKA end to end)\n\n\
         incremental analysis:\n  \
         --cache-dir <dir>      persist per-file analysis results keyed by\n                         \
         content hash; unchanged files are never re-analyzed\n\n\
         telemetry (any subcommand):\n  \
         --trace <out.json>     write a Chrome trace-event file of the run\n  \
                                (load in about:tracing or ui.perfetto.dev)\n  \
         --metrics <out.jsonl>  write the metrics registry as JSON lines"
    );
    ExitCode::from(2)
}

/// Pop `flag <value>` out of `args` (any position). `Err` = flag present
/// but missing its value.
fn extract_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<PathBuf>, ()> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    args.remove(i);
    Ok(Some(PathBuf::from(args.remove(i))))
}

/// Export the run's telemetry after a successful subcommand.
fn write_telemetry(trace: Option<&Path>, metrics: Option<&Path>) -> Result<(), String> {
    if let Some(p) = trace {
        let json = jepo_trace::Tracer::global().export_chrome(false);
        std::fs::write(p, &json).map_err(|e| format!("{}: {e}", p.display()))?;
        eprintln!(
            "wrote Chrome trace to {} (load in about:tracing / ui.perfetto.dev)",
            p.display()
        );
    }
    if let Some(p) = metrics {
        let jsonl = jepo_trace::Registry::global().jsonl();
        std::fs::write(p, &jsonl).map_err(|e| format!("{}: {e}", p.display()))?;
        eprintln!("wrote metrics to {}", p.display());
    }
    Ok(())
}

/// Collect `.java` files under a path (file or directory, recursive).
fn collect_java_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if root.is_file() {
        out.push(root.to_path_buf());
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "java") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Load a project from disk, reporting parse errors per file.
fn load_project(root: &Path) -> Result<JavaProject, String> {
    let files = collect_java_files(root).map_err(|e| format!("{}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no .java files under {}", root.display()));
    }
    let mut project = JavaProject::new();
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .into_owned();
        let name = if rel.is_empty() {
            f.file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned()
        } else {
            rel
        };
        project.add_file(&name, &text).map_err(|e| e.to_string())?;
    }
    Ok(project)
}

/// File inside `--cache-dir` holding the persisted analysis cache.
const CACHE_FILE: &str = "analysis.jepocache";

/// Analyze a project, incrementally when a cache dir is given. Returns
/// the ranked suggestion rows plus `(hits, misses)` of the run.
fn analyze_with_cache(
    project: &JavaProject,
    cache_dir: Option<&Path>,
) -> Result<(Vec<jepo_analyzer::Suggestion>, u64, u64), String> {
    let analyzer = jepo_analyzer::Analyzer::interprocedural();
    let mut cache = match cache_dir {
        Some(dir) => {
            jepo_analyzer::AnalysisCache::load(&dir.join(CACHE_FILE), analyzer.fingerprint())
        }
        None => analyzer.new_cache(),
    };
    let mut suggestions = analyzer.analyze_project_incremental(project, &mut cache);
    jepo_analyzer::impact::rank(&mut suggestions);
    if let Some(dir) = cache_dir {
        let path = dir.join(CACHE_FILE);
        cache
            .save(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let stats = cache.stats();
    Ok((suggestions, stats.last_hits, stats.last_misses))
}

fn cmd_analyze(path: &Path, cache_dir: Option<&Path>) -> Result<(), String> {
    let project = load_project(path)?;
    let (suggestions, hits, misses) = analyze_with_cache(&project, cache_dir)?;
    if cache_dir.is_some() {
        eprintln!("cache: {hits} unchanged file(s) reused, {misses} analyzed");
    }
    // The daemon serves the same renderer's bytes (jepo-serve ops), so
    // warm served responses are identical to this output by construction.
    print!(
        "{}",
        jepo_serve::ops::analyze_render(&suggestions, project.len())
    );
    Ok(())
}

/// Ranked static per-method energy view: interprocedural summaries
/// ordered by estimated cost per invocation (highest first).
fn cmd_energy(path: &Path, top: usize) -> Result<(), String> {
    let project = load_project(path)?;
    print!("{}", jepo_serve::ops::energy_render(&project, top));
    Ok(())
}

fn cmd_gen_corpus(dir: &Path, files: usize, seed: u64, rate: f64) -> Result<(), String> {
    let cfg = jepo_analyzer::gen::GenConfig {
        files,
        seed,
        pattern_rate: rate,
        ..Default::default()
    };
    let n = jepo_analyzer::gen::write_corpus(dir, &cfg)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    println!(
        "Wrote {n} generated files under {} (seed {seed}, pattern rate {rate}).",
        dir.display()
    );
    Ok(())
}

/// Key identifying a suggestion across two revisions for the diff.
fn diff_key(s: &jepo_analyzer::Suggestion) -> (String, u32, jepo_analyzer::JavaComponent, String) {
    (s.file.clone(), s.line, s.component, s.matched.clone())
}

fn render_diff_rows(rows: &[jepo_analyzer::Suggestion], sign: char) -> String {
    let mut out = String::new();
    for s in rows {
        out.push_str(&format!(
            "  {sign} {:>10.1}  {}:{}  {}\n",
            s.impact,
            s.file,
            s.line,
            s.component.label()
        ));
    }
    out
}

/// Analyze two revisions of a corpus and report the suggestion /
/// energy-impact delta. Returns `true` if B regresses relative to A
/// (net estimated impact increased).
fn cmd_diff_energy(
    dir_a: &Path,
    dir_b: &Path,
    jobs: usize,
    cache_dir: Option<&Path>,
) -> Result<bool, String> {
    let project_a = load_project(dir_a)?;
    let project_b = load_project(dir_b)?;
    let analyzer = jepo_analyzer::Analyzer::interprocedural();
    let mut cache = match cache_dir {
        Some(dir) => {
            jepo_analyzer::AnalysisCache::load(&dir.join(CACHE_FILE), analyzer.fingerprint())
        }
        None => analyzer.new_cache(),
    };
    let mut sug_a = analyzer.analyze_project_incremental_jobs(&project_a, &mut cache, jobs);
    // Revision B reuses A's per-file results for every unchanged file —
    // the warm path is what makes this cheap enough for a CI gate.
    let mut sug_b = analyzer.analyze_project_incremental_jobs(&project_b, &mut cache, jobs);
    let stats = cache.stats();
    if let Some(dir) = cache_dir {
        let path = dir.join(CACHE_FILE);
        cache
            .save(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    jepo_analyzer::impact::rank(&mut sug_a);
    jepo_analyzer::impact::rank(&mut sug_b);

    let keys_a: std::collections::HashSet<_> = sug_a.iter().map(diff_key).collect();
    let keys_b: std::collections::HashSet<_> = sug_b.iter().map(diff_key).collect();
    // Ranked inputs keep added/removed in the deterministic
    // (impact desc, file, line, component) total order.
    let added: Vec<_> = sug_b
        .iter()
        .filter(|s| !keys_a.contains(&diff_key(s)))
        .cloned()
        .collect();
    let removed: Vec<_> = sug_a
        .iter()
        .filter(|s| !keys_b.contains(&diff_key(s)))
        .cloned()
        .collect();
    // `+ 0.0` folds the empty sum's -0.0 back to +0.0 for display.
    let added_impact: f64 = added.iter().map(|s| s.impact).sum::<f64>() + 0.0;
    let removed_impact: f64 = removed.iter().map(|s| s.impact).sum::<f64>() + 0.0;
    let delta = added_impact - removed_impact;

    println!("== jepo diff-energy ==");
    println!(
        "A: {}  ({} files, {} suggestions)",
        dir_a.display(),
        project_a.len(),
        sug_a.len()
    );
    println!(
        "B: {}  ({} files, {} suggestions)",
        dir_b.display(),
        project_b.len(),
        sug_b.len()
    );
    println!(
        "incremental: B reused {} unchanged file(s) from A, re-analyzed {}",
        stats.last_hits, stats.last_misses
    );
    if added.is_empty() && removed.is_empty() {
        println!("\nNo suggestion changes between revisions.");
        return Ok(false);
    }
    if !added.is_empty() {
        println!("\nadded suggestions (ranked by estimated impact):");
        print!("{}", render_diff_rows(&added, '+'));
    }
    if !removed.is_empty() {
        println!("\nremoved suggestions:");
        print!("{}", render_diff_rows(&removed, '-'));
    }
    println!(
        "\nestimated energy-impact delta: {delta:+.1} (added {added_impact:.1}, removed {removed_impact:.1})"
    );
    let regression = delta > 0.0;
    if regression {
        println!("REGRESSION: revision B is estimated to cost more energy than A.");
    } else {
        println!("No energy regression detected.");
    }
    Ok(regression)
}

fn cmd_optimize(path: &Path, write: bool, aggressive: bool) -> Result<(), String> {
    let mut project = load_project(path)?;
    let optimizer = JepoOptimizer { aggressive };
    let report = optimizer.apply(&mut project);
    println!("Applied {} changes:", report.total_changes);
    for (file, n) in report.per_file.iter().filter(|(_, n)| *n > 0) {
        println!("  {file}: {n}");
    }
    if write {
        let root = if path.is_file() {
            path.parent().unwrap_or(path)
        } else {
            path
        };
        for f in project.files() {
            let target = if path.is_file() {
                path.to_path_buf()
            } else {
                root.join(&f.name)
            };
            std::fs::write(&target, &f.text).map_err(|e| format!("{}: {e}", target.display()))?;
        }
        println!("Wrote refactored sources back to {}.", root.display());
    } else {
        println!("(dry run — pass --write to rewrite the sources)");
    }
    println!("{} suggestions remain.", report.remaining.len());
    Ok(())
}

fn cmd_profile(
    path: &Path,
    chosen_main: Option<String>,
    mode: ProfilingMode,
) -> Result<(), String> {
    let project = load_project(path)?;
    let mut profiler = JepoProfiler::new().with_mode(mode);
    profiler.chosen_main = chosen_main;
    let report = profiler.profile(&project).map_err(|e| e.to_string())?;
    print!("{}", jepo_serve::ops::profile_render(&report));
    // result.txt next to the project, as the plugin does (§VII).
    let root = if path.is_file() {
        path.parent().unwrap_or(path)
    } else {
        path
    };
    let result_path = root.join("result.txt");
    std::fs::write(&result_path, &report.result_txt)
        .map_err(|e| format!("{}: {e}", result_path.display()))?;
    println!("\nWrote {}.", result_path.display());
    if !report.stdout.is_empty() {
        println!("\nprogram output:\n{}", report.stdout.trim_end());
    }
    Ok(())
}

fn cmd_metrics(path: &Path, entries: &[String]) -> Result<(), String> {
    let project = load_project(path)?;
    let refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
    let metrics = jepo_analyzer::project_metrics(&project, &refs);
    if metrics.is_empty() {
        return Err("no matching entry classes".into());
    }
    print!("{}", jepo_core::report::table2(&metrics));
    Ok(())
}

fn cmd_table4(instances: usize, folds: usize, jobs: usize) -> Result<(), String> {
    print!("{}", jepo_serve::ops::table4_render(instances, folds, jobs));
    Ok(())
}

/// Boot the profiling daemon and block until a `shutdown` request
/// drains it. Telemetry paths are flushed by the server's drain, so a
/// graceful stop always persists them.
fn cmd_serve(
    rest: &[String],
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
) -> Result<(), String> {
    let flag_val = |flag: &str| -> Option<&String> {
        rest.iter()
            .position(|a| a == flag)
            .and_then(|i| rest.get(i + 1))
    };
    let addr = flag_val("--addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7457".to_string());
    let parse_or = |flag: &str, default: usize| -> Result<usize, String> {
        match flag_val(flag) {
            Some(v) => v.parse().map_err(|_| format!("bad {flag}: {v}")),
            None => Ok(default),
        }
    };
    let config = jepo_serve::ServerConfig {
        addr,
        workers: parse_or("--jobs", 0)?,
        queue_depth: parse_or("--queue", 32)?,
        trace_out,
        metrics_out,
    };
    let handle = jepo_serve::serve(config).map_err(|e| e.to_string())?;
    println!(
        "jepo serve listening on {} ({} workers)",
        handle.addr(),
        handle.workers()
    );
    handle.join();
    println!("jepo serve: drained and stopped.");
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    println!("== Optimizer over the bundled mini-WEKA ==\n");
    let project = corpus::shared_corpus();
    let suggestions = JepoOptimizer::new().suggestions(project);
    println!(
        "{} suggestions across {} classes.",
        suggestions.len(),
        project.class_count()
    );
    println!("\n== Profiler over the runnable subset ==\n");
    let report = JepoProfiler::new()
        .profile(&corpus::runnable_project())
        .map_err(|e| e.to_string())?;
    print!("{}", report.view());
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Telemetry flags are global: strip them before positional parsing.
    let Ok(trace_out) = extract_flag_value(&mut args, "--trace") else {
        return usage();
    };
    let Ok(metrics_out) = extract_flag_value(&mut args, "--metrics") else {
        return usage();
    };
    if trace_out.is_some() {
        jepo_trace::Tracer::global().enable();
    }
    if metrics_out.is_some() {
        jepo_trace::Registry::global().enable();
    }
    // --cache-dir is shared by analyze and diff-energy.
    let Ok(cache_dir) = extract_flag_value(&mut args, "--cache-dir") else {
        return usage();
    };
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    // diff-energy signals a regression through a dedicated exit code.
    let mut regression_exit = false;
    let result = match cmd.as_str() {
        "analyze" => match rest.first() {
            Some(p) => cmd_analyze(Path::new(p), cache_dir.as_deref()),
            None => return usage(),
        },
        "energy" => match rest.first() {
            Some(p) if !p.starts_with("--") => {
                let top = match rest.iter().position(|a| a == "--top") {
                    Some(i) => match rest.get(i + 1).and_then(|s| s.parse().ok()) {
                        Some(n) => n,
                        None => return usage(),
                    },
                    None => 20,
                };
                cmd_energy(Path::new(p), top)
            }
            _ => return usage(),
        },
        "gen-corpus" => match rest.first() {
            Some(p) => {
                let num = |flag: &str, default: f64| -> Option<f64> {
                    match rest.iter().position(|a| a == flag) {
                        Some(i) => rest.get(i + 1).and_then(|s| s.parse().ok()),
                        None => Some(default),
                    }
                };
                let (Some(files), Some(seed), Some(rate)) = (
                    num("--files", 1000.0),
                    num("--seed", 42.0),
                    num("--rate", 0.35),
                ) else {
                    return usage();
                };
                cmd_gen_corpus(Path::new(p), files as usize, seed as u64, rate)
            }
            None => return usage(),
        },
        "diff-energy" => match (rest.first(), rest.get(1)) {
            (Some(a), Some(b)) if !a.starts_with("--") && !b.starts_with("--") => {
                let jobs = match rest.iter().position(|x| x == "--jobs") {
                    Some(i) => match rest.get(i + 1).and_then(|s| s.parse().ok()) {
                        Some(n) => n,
                        None => return usage(),
                    },
                    None => 0,
                };
                let fail_on_regression = rest.iter().any(|x| x == "--fail-on-regression");
                cmd_diff_energy(Path::new(a), Path::new(b), jobs, cache_dir.as_deref()).map(
                    |regressed| {
                        regression_exit = regressed && fail_on_regression;
                    },
                )
            }
            _ => return usage(),
        },
        "optimize" => match rest.first() {
            Some(p) => cmd_optimize(
                Path::new(p),
                rest.iter().any(|a| a == "--write"),
                rest.iter().any(|a| a == "--aggressive"),
            ),
            None => return usage(),
        },
        "profile" => match rest.first() {
            Some(p) => {
                let chosen = rest
                    .iter()
                    .position(|a| a == "--main")
                    .and_then(|i| rest.get(i + 1))
                    .cloned();
                let interval_us = match rest.iter().position(|a| a == "--interval") {
                    Some(i) => match rest.get(i + 1).and_then(|s| s.parse().ok()) {
                        Some(us) => us,
                        None => return usage(),
                    },
                    None => 100u64,
                };
                let mode = match rest
                    .iter()
                    .position(|a| a == "--mode")
                    .and_then(|i| rest.get(i + 1))
                    .map(|s| s.as_str())
                {
                    None | Some("instrumented") => ProfilingMode::Instrumented,
                    Some("sampling") => ProfilingMode::Sampling { interval_us },
                    Some("both") => ProfilingMode::Both { interval_us },
                    Some(_) => return usage(),
                };
                cmd_profile(Path::new(p), chosen, mode)
            }
            None => return usage(),
        },
        "metrics" => match rest.split_first() {
            Some((p, entries)) if !entries.is_empty() => cmd_metrics(Path::new(p), entries),
            _ => return usage(),
        },
        "table4" => {
            let jobs = match rest.iter().position(|a| a == "--jobs") {
                Some(i) => match rest.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage(),
                },
                None => 1,
            };
            let positional: Vec<&String> = {
                let jobs_at = rest.iter().position(|a| a == "--jobs");
                rest.iter()
                    .enumerate()
                    .filter(|(i, _)| jobs_at.is_none_or(|j| *i != j && *i != j + 1))
                    .map(|(_, a)| a)
                    .collect()
            };
            let instances = positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(2_000);
            let folds = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
            cmd_table4(instances, folds, jobs)
        }
        "serve" => {
            // The server flushes telemetry itself during the drain;
            // taking the paths keeps the generic exporter below idle.
            let r = cmd_serve(rest, trace_out.clone(), metrics_out.clone());
            return match r {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "demo" => cmd_demo(),
        _ => return usage(),
    };
    match result.and_then(|()| write_telemetry(trace_out.as_deref(), metrics_out.as_deref())) {
        Ok(()) if regression_exit => ExitCode::from(3),
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
