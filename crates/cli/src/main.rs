//! `jepo` — the command-line surface of the reproduction.
//!
//! The paper ships JEPO as an Eclipse plugin; this binary exposes the
//! same two flows (profiler, optimizer) plus the evaluation harness for
//! projects of `.java` files on disk:
//!
//! ```text
//! jepo analyze  <dir|file>          suggestions for every class (Fig. 5)
//! jepo optimize <dir|file> [--write] [--aggressive]
//!                                   apply refactorings; print or write back
//! jepo profile  <dir|file> [--main Class]
//!                                   instrument + run + per-method energy (Fig. 4)
//! jepo metrics  <dir> <Class...>    Table II metrics for entry classes
//! jepo table4   [instances] [folds] [--jobs N]
//!                                   the WEKA evaluation (N workers;
//!                                   0 = one per core; output is
//!                                   identical for every N)
//! ```
//!
//! Every subcommand also accepts the global telemetry flags
//! `--trace <out.json>` (Chrome trace-event export of the run) and
//! `--metrics <out.jsonl>` (metrics-registry dump, one JSON object per
//! line).

use jepo_core::{corpus, JepoOptimizer, JepoProfiler, WekaExperiment};
use jepo_jlang::JavaProject;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "jepo — Java Energy Profiler & Optimizer (IPPS 2020 reproduction)\n\n\
         usage:\n  \
         jepo analyze  <dir|file>\n  \
         jepo optimize <dir|file> [--write] [--aggressive]\n  \
         jepo profile  <dir|file> [--main <Class>]\n  \
         jepo metrics  <dir> <Class> [<Class>...]\n  \
         jepo table4   [instances] [folds] [--jobs <N>]\n  \
         jepo demo     (run the bundled mini-WEKA end to end)\n\n\
         telemetry (any subcommand):\n  \
         --trace <out.json>     write a Chrome trace-event file of the run\n  \
                                (load in about:tracing or ui.perfetto.dev)\n  \
         --metrics <out.jsonl>  write the metrics registry as JSON lines"
    );
    ExitCode::from(2)
}

/// Pop `flag <value>` out of `args` (any position). `Err` = flag present
/// but missing its value.
fn extract_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<PathBuf>, ()> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    args.remove(i);
    Ok(Some(PathBuf::from(args.remove(i))))
}

/// Export the run's telemetry after a successful subcommand.
fn write_telemetry(trace: Option<&Path>, metrics: Option<&Path>) -> Result<(), String> {
    if let Some(p) = trace {
        let json = jepo_trace::Tracer::global().export_chrome(false);
        std::fs::write(p, &json).map_err(|e| format!("{}: {e}", p.display()))?;
        eprintln!(
            "wrote Chrome trace to {} (load in about:tracing / ui.perfetto.dev)",
            p.display()
        );
    }
    if let Some(p) = metrics {
        let jsonl = jepo_trace::Registry::global().jsonl();
        std::fs::write(p, &jsonl).map_err(|e| format!("{}: {e}", p.display()))?;
        eprintln!("wrote metrics to {}", p.display());
    }
    Ok(())
}

/// Collect `.java` files under a path (file or directory, recursive).
fn collect_java_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if root.is_file() {
        out.push(root.to_path_buf());
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "java") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Load a project from disk, reporting parse errors per file.
fn load_project(root: &Path) -> Result<JavaProject, String> {
    let files = collect_java_files(root).map_err(|e| format!("{}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no .java files under {}", root.display()));
    }
    let mut project = JavaProject::new();
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .into_owned();
        let name = if rel.is_empty() {
            f.file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned()
        } else {
            rel
        };
        project.add_file(&name, &text).map_err(|e| e.to_string())?;
    }
    Ok(project)
}

fn cmd_analyze(path: &Path) -> Result<(), String> {
    let project = load_project(path)?;
    let suggestions = JepoOptimizer::new().suggestions(&project);
    if suggestions.is_empty() {
        println!("No suggestions — the project is energy-clean.");
        return Ok(());
    }
    print!("{}", jepo_core::views::optimizer_view(&suggestions));
    println!(
        "\n{} suggestions across {} files.",
        suggestions.len(),
        project.len()
    );
    Ok(())
}

fn cmd_optimize(path: &Path, write: bool, aggressive: bool) -> Result<(), String> {
    let mut project = load_project(path)?;
    let optimizer = JepoOptimizer { aggressive };
    let report = optimizer.apply(&mut project);
    println!("Applied {} changes:", report.total_changes);
    for (file, n) in report.per_file.iter().filter(|(_, n)| *n > 0) {
        println!("  {file}: {n}");
    }
    if write {
        let root = if path.is_file() {
            path.parent().unwrap_or(path)
        } else {
            path
        };
        for f in project.files() {
            let target = if path.is_file() {
                path.to_path_buf()
            } else {
                root.join(&f.name)
            };
            std::fs::write(&target, &f.text).map_err(|e| format!("{}: {e}", target.display()))?;
        }
        println!("Wrote refactored sources back to {}.", root.display());
    } else {
        println!("(dry run — pass --write to rewrite the sources)");
    }
    println!("{} suggestions remain.", report.remaining.len());
    Ok(())
}

fn cmd_profile(path: &Path, chosen_main: Option<String>) -> Result<(), String> {
    let project = load_project(path)?;
    let mut profiler = JepoProfiler::new();
    profiler.chosen_main = chosen_main;
    let report = profiler.profile(&project).map_err(|e| e.to_string())?;
    println!(
        "main class {} | {} probes injected | total {:.3} mJ / {:.3} ms\n",
        report.main_class,
        report.probes_injected,
        report.energy.package_j * 1e3,
        report.energy.seconds * 1e3
    );
    print!("{}", report.view());
    // result.txt next to the project, as the plugin does (§VII).
    let root = if path.is_file() {
        path.parent().unwrap_or(path)
    } else {
        path
    };
    let result_path = root.join("result.txt");
    std::fs::write(&result_path, &report.result_txt)
        .map_err(|e| format!("{}: {e}", result_path.display()))?;
    println!("\nWrote {}.", result_path.display());
    if !report.stdout.is_empty() {
        println!("\nprogram output:\n{}", report.stdout.trim_end());
    }
    Ok(())
}

fn cmd_metrics(path: &Path, entries: &[String]) -> Result<(), String> {
    let project = load_project(path)?;
    let refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
    let metrics = jepo_analyzer::project_metrics(&project, &refs);
    if metrics.is_empty() {
        return Err("no matching entry classes".into());
    }
    print!("{}", jepo_core::report::table2(&metrics));
    Ok(())
}

fn cmd_table4(instances: usize, folds: usize, jobs: usize) -> Result<(), String> {
    let exp = WekaExperiment {
        instances,
        folds,
        ..Default::default()
    };
    let results = exp.run_all_jobs(jobs);
    print!("{}", jepo_core::report::table4(&results));
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    println!("== Optimizer over the bundled mini-WEKA ==\n");
    let project = corpus::shared_corpus();
    let suggestions = JepoOptimizer::new().suggestions(project);
    println!(
        "{} suggestions across {} classes.",
        suggestions.len(),
        project.class_count()
    );
    println!("\n== Profiler over the runnable subset ==\n");
    let report = JepoProfiler::new()
        .profile(&corpus::runnable_project())
        .map_err(|e| e.to_string())?;
    print!("{}", report.view());
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Telemetry flags are global: strip them before positional parsing.
    let Ok(trace_out) = extract_flag_value(&mut args, "--trace") else {
        return usage();
    };
    let Ok(metrics_out) = extract_flag_value(&mut args, "--metrics") else {
        return usage();
    };
    if trace_out.is_some() {
        jepo_trace::Tracer::global().enable();
    }
    if metrics_out.is_some() {
        jepo_trace::Registry::global().enable();
    }
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "analyze" => match rest.first() {
            Some(p) => cmd_analyze(Path::new(p)),
            None => return usage(),
        },
        "optimize" => match rest.first() {
            Some(p) => cmd_optimize(
                Path::new(p),
                rest.iter().any(|a| a == "--write"),
                rest.iter().any(|a| a == "--aggressive"),
            ),
            None => return usage(),
        },
        "profile" => match rest.first() {
            Some(p) => {
                let chosen = rest
                    .iter()
                    .position(|a| a == "--main")
                    .and_then(|i| rest.get(i + 1))
                    .cloned();
                cmd_profile(Path::new(p), chosen)
            }
            None => return usage(),
        },
        "metrics" => match rest.split_first() {
            Some((p, entries)) if !entries.is_empty() => cmd_metrics(Path::new(p), entries),
            _ => return usage(),
        },
        "table4" => {
            let jobs = match rest.iter().position(|a| a == "--jobs") {
                Some(i) => match rest.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage(),
                },
                None => 1,
            };
            let positional: Vec<&String> = {
                let jobs_at = rest.iter().position(|a| a == "--jobs");
                rest.iter()
                    .enumerate()
                    .filter(|(i, _)| jobs_at.is_none_or(|j| *i != j && *i != j + 1))
                    .map(|(_, a)| a)
                    .collect()
            };
            let instances = positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(2_000);
            let folds = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
            cmd_table4(instances, folds, jobs)
        }
        "demo" => cmd_demo(),
        _ => return usage(),
    };
    match result.and_then(|()| write_telemetry(trace_out.as_deref(), metrics_out.as_deref())) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
