//! Property tests hardening the serve codec: arbitrary requests
//! round-trip exactly, and truncated / oversized / garbage frames
//! decode to structured errors — never a panic, which is what keeps a
//! malformed client from taking the daemon down.

use jepo_serve::codec::{
    json_escape, json_unescape, read_frame, write_frame, CodecError, Event, Request,
};
use proptest::prelude::*;

fn field_text() -> impl Strategy<Value = String> {
    // Names and bodies with the characters that stress the framing:
    // newlines, spaces, quotes, backslashes, digits (length-like
    // tokens), and multi-byte UTF-8.
    "[a-zA-Z0-9 \\\\\"\n\théμ→.{}/;=+-]{0,40}"
}

fn request() -> impl Strategy<Value = Request> {
    (
        "[a-z][a-z0-9-]{0,10}",
        proptest::collection::vec((field_text(), field_text()), 0..4),
        proptest::collection::vec((field_text(), field_text()), 0..4),
    )
        .prop_map(|(verb, params, files)| Request {
            verb,
            params,
            files,
        })
}

proptest! {
    #[test]
    fn request_encode_decode_round_trips(req in request()) {
        let decoded = Request::decode(&req.encode()).expect("canonical encoding decodes");
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn frame_write_read_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let back = read_frame(&mut &buf[..]).expect("frame reads back");
        prop_assert_eq!(back, payload);
    }

    /// Arbitrary byte soup never panics the request decoder — it either
    /// happens to parse or returns a structured error.
    #[test]
    fn garbage_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
    }

    /// Truncating a valid encoding anywhere yields an error (or, for
    /// the empty prefix cut at a field boundary, never a panic).
    #[test]
    fn truncated_requests_never_panic(req in request(), cut in any::<u16>()) {
        let full = req.encode();
        let cut = (cut as usize) % (full.len() + 1);
        let _ = Request::decode(&full[..cut]);
    }

    /// Flipping one byte of a valid encoding never panics the decoder.
    #[test]
    fn corrupted_requests_never_panic(req in request(), at in any::<u16>(), to in any::<u8>()) {
        let mut bytes = req.encode();
        let at = (at as usize) % bytes.len();
        bytes[at] = to;
        let _ = Request::decode(&bytes);
    }

    /// Truncated frames surface as Truncated/Eof, never a panic or hang.
    #[test]
    fn truncated_frames_are_errors(payload in proptest::collection::vec(any::<u8>(), 1..256),
                                   cut in any::<u16>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = (cut as usize) % buf.len(); // strictly shorter
        match read_frame(&mut &buf[..cut]) {
            Err(CodecError::Eof) => prop_assert_eq!(cut, 0),
            Err(CodecError::Truncated) => {}
            other => panic!("truncated frame must error, got {other:?}"),
        }
    }

    #[test]
    fn json_escape_round_trips(s in field_text()) {
        prop_assert_eq!(json_unescape(&json_escape(&s)), Some(s));
    }

    /// Chunked bodies reassemble to the original for any body and any
    /// cache tag the server uses.
    #[test]
    fn body_events_reassemble(body in field_text(), warm in any::<bool>()) {
        let cache = if warm { "warm" } else { "cold" };
        let events = jepo_serve::codec::body_events(&body, cache);
        let mut rebuilt = String::new();
        for ev in &events {
            match Event::decode(&ev.encode()).expect("event round-trips") {
                Event::Chunk(c) => rebuilt.push_str(&c),
                Event::Ok { cache: c, bytes } => {
                    prop_assert_eq!(c, cache);
                    prop_assert_eq!(bytes, body.len());
                }
                Event::Error { .. } => panic!("no error events in a body stream"),
            }
        }
        prop_assert_eq!(rebuilt, body);
    }
}

/// An oversized length prefix is rejected before any allocation.
#[test]
fn oversized_frames_are_rejected() {
    for len in [
        jepo_serve::MAX_FRAME + 1,
        u32::MAX,
        jepo_serve::MAX_FRAME + 1024 * 1024,
    ] {
        let bytes = len.to_be_bytes();
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(CodecError::Oversized(n)) if n == len
        ));
    }
}
