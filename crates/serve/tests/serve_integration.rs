//! End-to-end daemon tests: cache correctness under concurrency,
//! graceful drain, admission control, and malformed-input survival.

use jepo_serve::codec::Request;
use jepo_serve::{client, HotCache, ServerConfig};
use std::net::TcpStream;
use std::time::Duration;

fn small_corpus(tag: u64) -> Vec<(String, String)> {
    vec![
        (
            "Main.java".to_string(),
            format!(
                "class Main {{ public static void main(String[] args) {{ \
                 int s = 0; \
                 for (int i = 0; i < 12; i = i + 1) {{ s = s + i * {tag}; }} \
                 System.out.println(s); }} }}"
            ),
        ),
        (
            "Helper.java".to_string(),
            "class Helper { static int join(String a, String b) { \
             String s = \"\"; for (int i = 0; i < 3; i = i + 1) { s = s + a + b; } \
             return s.length(); } }"
                .to_string(),
        ),
    ]
}

fn boot(queue_depth: usize) -> jepo_serve::ServerHandle {
    jepo_serve::serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth,
        ..Default::default()
    })
    .expect("bind test daemon")
}

fn shutdown_and_join(addr: &str, handle: jepo_serve::ServerHandle) {
    let resp = client::request(addr, &Request::new("shutdown")).expect("shutdown responds");
    assert!(resp.is_ok(), "{:?}", resp.error);
    handle.join();
}

/// Satellite: warm served responses are byte-identical to cold CLI
/// output for analyze/energy/table4 across concurrent clients 1, 2, 4.
/// The cold reference is `ops::execute` on a fresh cache — exactly the
/// strings the CLI prints (it calls the same renderers).
#[test]
fn warm_responses_match_cold_cli_bytes_under_concurrency() {
    let catalog: Vec<Request> = {
        let mut v = Vec::new();
        let mut r = Request::new("analyze");
        r.files = small_corpus(3);
        v.push(r);
        let mut r = Request::new("energy");
        r.params.push(("top".into(), "8".into()));
        r.files = small_corpus(3);
        v.push(r);
        let mut r = Request::new("table4");
        r.params.push(("instances".into(), "40".into()));
        r.params.push(("folds".into(), "2".into()));
        v.push(r);
        v
    };
    // Cold CLI-equivalent bytes, computed without the daemon.
    let reference: Vec<String> = {
        let fresh = HotCache::new();
        catalog
            .iter()
            .map(|r| {
                jepo_serve::ops::execute(r, &fresh)
                    .expect("reference run")
                    .0
            })
            .collect()
    };

    let handle = boot(32);
    let addr = handle.addr().to_string();
    // Prime the daemon (cold pass), then hammer it warm.
    for (req, want) in catalog.iter().zip(&reference) {
        let resp = client::request(&addr, req).expect("cold request");
        assert!(resp.is_ok(), "{:?}", resp.error);
        assert_eq!(&resp.body, want, "cold served bytes differ from CLI bytes");
    }
    for clients in [1usize, 2, 4] {
        let results: Vec<Vec<(String, String)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = &addr;
                    let catalog = &catalog;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for n in 0..catalog.len() {
                            let req = &catalog[(c + n) % catalog.len()];
                            let resp = client::request(addr, req).expect("warm request");
                            assert!(resp.is_ok(), "{:?}", resp.error);
                            got.push((req.verb.clone(), resp.body));
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for per_client in results {
            for (verb, body) in per_client {
                let want = catalog
                    .iter()
                    .position(|r| r.verb == verb)
                    .map(|i| &reference[i])
                    .unwrap();
                assert_eq!(
                    &body, want,
                    "clients={clients}: warm {verb} bytes diverged from cold CLI output"
                );
            }
        }
    }
    shutdown_and_join(&addr, handle);
}

/// Satellite: a `shutdown` request drains the bounded queue — every
/// request accepted before the drain completes normally; none are
/// dropped mid-flight.
#[test]
fn graceful_shutdown_drops_no_inflight_request() {
    let handle = boot(32);
    let addr = handle.addr().to_string();
    let slow_clients = 3usize;
    let (results, shutdown_resp) = std::thread::scope(|scope| {
        let slow: Vec<_> = (0..slow_clients)
            .map(|_| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut req = Request::new("ping");
                    req.params.push(("sleep_ms".into(), "250".into()));
                    client::request(addr, &req)
                })
            })
            .collect();
        // Let the slow pings get accepted, then ask for the drain.
        std::thread::sleep(Duration::from_millis(100));
        let shutdown = client::request(&addr, &Request::new("shutdown"));
        (
            slow.into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>(),
            shutdown,
        )
    });
    for r in results {
        let resp = r.expect("in-flight ping survives the drain");
        assert!(resp.is_ok(), "{:?}", resp.error);
        assert_eq!(resp.body, "pong\n");
    }
    assert!(shutdown_resp.expect("shutdown answered").is_ok());
    handle.join();
    // The daemon is gone: new connections are refused.
    assert!(TcpStream::connect(&addr).is_err());
}

/// Satellite: admission control — when the bounded queue is full the
/// daemon answers with a structured `busy` error instead of queueing
/// without bound (and the queued work still completes).
#[test]
fn full_queue_rejects_with_structured_busy() {
    // One worker slot (clamped to ≥1 core) plus a queue depth of 1.
    let handle = jepo_serve::serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        ..Default::default()
    })
    .expect("bind test daemon");
    let addr = handle.addr().to_string();

    std::thread::scope(|scope| {
        // Occupy the worker, then the single queue slot.
        let occupants: Vec<_> = (0..2)
            .map(|_| {
                let addr = &addr;
                let t = scope.spawn(move || {
                    let mut req = Request::new("ping");
                    req.params.push(("sleep_ms".into(), "700".into()));
                    client::request(addr, &req)
                });
                // Stagger so the first ping is running (not queued)
                // before the second arrives.
                std::thread::sleep(Duration::from_millis(200));
                t
            })
            .collect();
        // Worker busy + queue full: this one must bounce immediately.
        let resp = client::request(&addr, &Request::new("ping")).expect("rejection is a response");
        let (code, _msg) = resp.error.expect("expected a structured rejection");
        assert_eq!(code, "busy");
        for t in occupants {
            let resp = t.join().unwrap().expect("accepted pings complete");
            assert!(resp.is_ok(), "{:?}", resp.error);
        }
    });
    shutdown_and_join(&addr, handle);
}

/// Satellite: malformed input — garbage payloads, oversized prefixes,
/// truncated frames — produces structured errors and the daemon keeps
/// serving afterwards.
#[test]
fn malformed_frames_never_kill_the_daemon() {
    use std::io::Write;
    let handle = boot(16);
    let addr = handle.addr().to_string();

    // Garbage payload inside a well-formed frame.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let resp = client::raw_request(&mut stream, b"\xff\xfeudp flood?\x00").unwrap();
    assert_eq!(
        resp.error.as_ref().map(|(c, _)| c.as_str()),
        Some("bad-request")
    );

    // Valid framing, valid UTF-8, nonsense request grammar.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let resp = client::raw_request(&mut stream, b"GET / HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(
        resp.error.as_ref().map(|(c, _)| c.as_str()),
        Some("bad-request")
    );

    // Oversized length prefix: rejected before allocation.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(&(jepo_serve::MAX_FRAME + 1).to_be_bytes())
        .unwrap();
    let frame = jepo_serve::codec::read_frame(&mut stream).unwrap();
    let line = std::str::from_utf8(&frame).unwrap();
    assert!(line.contains("bad-request"), "{line}");

    // Truncated frame: declare 100 bytes, send 3, close the write half.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(b"abc").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let frame = jepo_serve::codec::read_frame(&mut stream).unwrap();
    assert!(std::str::from_utf8(&frame).unwrap().contains("bad-request"));

    // After all of that the daemon still serves real work.
    let resp = client::request(&addr, &Request::new("ping")).expect("daemon alive");
    assert!(resp.is_ok(), "{:?}", resp.error);
    assert_eq!(resp.body, "pong\n");

    // And the stats verb reports the malformed count.
    let resp = client::request(&addr, &Request::new("stats")).expect("stats");
    assert!(resp.is_ok());
    assert!(resp.body.contains("\"malformed\":4"), "{}", resp.body);

    shutdown_and_join(&addr, handle);
}
