//! Minimal blocking client for the `jepo serve` protocol — used by the
//! CLI is-alive checks, the load generator and the integration tests.

use crate::codec::{self, CodecError, Event, Request};
use std::io::Write;
use std::net::TcpStream;

/// A fully-read response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Reassembled body (empty on error responses).
    pub body: String,
    /// `"warm"` or `"cold"` (ok responses only).
    pub cache: String,
    /// Error code when the request failed (`busy`, `bad-request`, ...).
    pub error: Option<(String, String)>,
}

impl Response {
    /// Did the daemon answer with an ok event?
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Send one request and read the event stream to completion.
pub fn request(addr: &str, req: &Request) -> Result<Response, CodecError> {
    let mut stream = TcpStream::connect(addr).map_err(CodecError::Io)?;
    stream.set_nodelay(true).ok();
    raw_request(&mut stream, &req.encode())
}

/// Send raw payload bytes as one frame and read the response — the
/// hardening tests use this to deliver deliberately malformed payloads.
pub fn raw_request(stream: &mut TcpStream, payload: &[u8]) -> Result<Response, CodecError> {
    codec::write_frame(stream, payload).map_err(CodecError::Io)?;
    stream.flush().map_err(CodecError::Io)?;
    let mut body = String::new();
    loop {
        let frame = codec::read_frame(stream)?;
        let line = std::str::from_utf8(&frame)
            .map_err(|_| CodecError::Malformed("non-UTF-8 event frame".into()))?;
        match Event::decode(line)? {
            Event::Chunk(data) => body.push_str(&data),
            Event::Ok { cache, bytes } => {
                if bytes != body.len() {
                    return Err(CodecError::Malformed(format!(
                        "body length mismatch: done says {bytes}, got {}",
                        body.len()
                    )));
                }
                return Ok(Response {
                    body,
                    cache,
                    error: None,
                });
            }
            Event::Error { code, message } => {
                return Ok(Response {
                    body: String::new(),
                    cache: String::new(),
                    error: Some((code, message)),
                })
            }
        }
    }
}
