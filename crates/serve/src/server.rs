//! The `jepo serve` daemon: a std-only TCP server with admission
//! control, a bounded job queue over `jepo-pool`, per-request
//! `jepo-trace` spans and a graceful drain.
//!
//! Connection model: one request per connection. The accept loop is
//! the admission controller — every connection is `try_submit`ted to
//! the bounded [`jepo_pool::TaskPool`]; when the queue is full the
//! client gets a structured `busy` error immediately instead of
//! unbounded queueing. A `shutdown` request stops admission, drains
//! every accepted request to completion, flushes telemetry exporters,
//! and lets [`ServerHandle::join`] return — no request is ever dropped
//! mid-flight.

use crate::cache::HotCache;
use crate::codec::{self, CodecError, Event, Request};
use crate::ops::{self, OpError};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads; 0 = `JEPO_JOBS`/core count, clamped to cores.
    pub workers: usize,
    /// Bounded queue depth on top of the workers.
    pub queue_depth: usize,
    /// Write a Chrome trace here on shutdown.
    pub trace_out: Option<std::path::PathBuf>,
    /// Write the metrics registry here (JSONL) on shutdown.
    pub metrics_out: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 32,
            trace_out: None,
            metrics_out: None,
        }
    }
}

/// Live request/latency counters, shared by workers and the `stats`
/// verb.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests fully served (ok responses).
    pub served: AtomicU64,
    /// Structured error responses (bad request / internal).
    pub errored: AtomicU64,
    /// Connections rejected at admission (`busy`/`shutting-down`).
    pub rejected: AtomicU64,
    /// Malformed frames / codec failures answered with `bad-request`.
    pub malformed: AtomicU64,
}

impl ServerStats {
    fn snapshot_json(&self, cache: &HotCache, workers: usize) -> String {
        let (p_h, p_m) = cache.parse_stats.get();
        let (pp_h, pp_m) = cache.prepared_stats.get();
        let (m_h, m_m) = cache.memo_stats.get();
        format!(
            concat!(
                "{{\"served\":{},\"errored\":{},\"rejected\":{},\"malformed\":{},",
                "\"workers\":{},",
                "\"parse_cache\":{{\"hits\":{},\"misses\":{}}},",
                "\"prepared_cache\":{{\"hits\":{},\"misses\":{}}},",
                "\"response_memo\":{{\"hits\":{},\"misses\":{}}}}}\n"
            ),
            self.served.load(Ordering::Relaxed),
            self.errored.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.malformed.load(Ordering::Relaxed),
            workers,
            p_h,
            p_m,
            pp_h,
            pp_m,
            m_h,
            m_m,
        )
    }
}

/// A running daemon. Dropping the handle does not stop it; send a
/// `shutdown` request (or use [`ServerHandle::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    workers: usize,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (real port even when configured with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Worker threads actually running (post-clamp).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Ask the daemon to stop admitting work (same effect as a
    /// `shutdown` request).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the daemon to drain and exit.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Effective worker count for a request: the table4-bench clamp shape —
/// never oversubscribe physical cores, warn once on stderr.
pub fn clamp_workers(requested: usize) -> (usize, usize, usize) {
    let requested = jepo_pool::effective_jobs(requested);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective = requested.min(cores);
    if effective < requested {
        eprintln!(
            "jepo serve: clamping {requested} workers to {cores} available core(s) \
             to avoid oversubscription"
        );
    }
    (requested, effective, cores)
}

/// Bind and start the daemon. Returns once the listener is live.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let (_requested, workers, _cores) = clamp_workers(config.workers);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let cache = Arc::new(HotCache::new());
    let stats = Arc::new(ServerStats::default());

    let accept_stop = stop.clone();
    let accept_thread = std::thread::Builder::new()
        .name("jepo-serve-accept".into())
        .spawn(move || {
            accept_loop(listener, config, workers, accept_stop, cache, stats);
        })?;

    Ok(ServerHandle {
        addr,
        workers,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    workers: usize,
    stop: Arc<AtomicBool>,
    cache: Arc<HotCache>,
    stats: Arc<ServerStats>,
) {
    let pool = jepo_pool::TaskPool::new(workers, config.queue_depth);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                // The stream lives in a shared slot so the accept
                // thread can take it back and answer with a structured
                // rejection when the bounded queue refuses the job.
                let slot = Arc::new(std::sync::Mutex::new(Some(stream)));
                let worker_slot = slot.clone();
                let cache = cache.clone();
                let worker_stats = stats.clone();
                let worker_stop = stop.clone();
                let n_workers = pool.worker_count();
                let submitted = pool.try_submit(move || {
                    if let Some(stream) = worker_slot.lock().unwrap().take() {
                        handle_connection(stream, &cache, &worker_stats, &worker_stop, n_workers);
                    }
                });
                if let Err(e) = submitted {
                    if let Some(mut stream) = slot.lock().unwrap().take() {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        jepo_trace::Registry::global()
                            .counter("serve.rejected")
                            .incr();
                        let (code, msg) = match e {
                            jepo_pool::SubmitError::Full => {
                                ("busy", "job queue is full; retry later")
                            }
                            jepo_pool::SubmitError::ShuttingDown => {
                                ("shutting-down", "daemon is draining; not accepting work")
                            }
                        };
                        respond_error(&mut stream, code, msg);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    // Drain: every accepted job runs to completion before we return.
    pool.shutdown_drain();
    flush_telemetry(&config);
}

/// Flush trace/metrics exporters on shutdown.
fn flush_telemetry(config: &ServerConfig) {
    if let Some(p) = &config.trace_out {
        let json = jepo_trace::Tracer::global().export_chrome(false);
        if let Err(e) = std::fs::write(p, &json) {
            eprintln!("jepo serve: trace export failed: {}: {e}", p.display());
        }
    }
    if let Some(p) = &config.metrics_out {
        let jsonl = jepo_trace::Registry::global().jsonl();
        if let Err(e) = std::fs::write(p, &jsonl) {
            eprintln!("jepo serve: metrics export failed: {}: {e}", p.display());
        }
    }
}

/// Serve one connection: read a frame, decode, execute, stream events.
fn handle_connection(
    mut stream: TcpStream,
    cache: &HotCache,
    stats: &ServerStats,
    stop: &AtomicBool,
    workers: usize,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let payload = match codec::read_frame(&mut stream) {
        Ok(p) => p,
        Err(CodecError::Eof) => return,
        Err(e) => {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, "bad-request", &e.to_string());
            return;
        }
    };
    let req = match Request::decode(&payload) {
        Ok(r) => r,
        Err(e) => {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, "bad-request", &e.to_string());
            return;
        }
    };
    let _span = jepo_trace::span(&format!("serve/{}", req.verb));
    let counter = jepo_trace::Registry::global().counter(&format!("serve.requests.{}", req.verb));
    counter.incr();
    // Per-request latency histogram (µs buckets, powers of ~4). Timing
    // feeds telemetry only, never a response body.
    let t_start = std::time::Instant::now();
    let observe_latency = |verb: &str| {
        jepo_trace::Registry::global()
            .histogram(
                &format!("serve.latency_us.{verb}"),
                &[100, 400, 1_600, 6_400, 25_600, 102_400, 409_600, 1_638_400],
            )
            .observe(t_start.elapsed().as_micros() as u64);
    };
    match req.verb.as_str() {
        "shutdown" => {
            stop.store(true, Ordering::SeqCst);
            stats.served.fetch_add(1, Ordering::Relaxed);
            respond_body(&mut stream, "shutting down\n", "cold");
        }
        "stats" => {
            stats.served.fetch_add(1, Ordering::Relaxed);
            let body = stats.snapshot_json(cache, workers);
            respond_body(&mut stream, &body, "cold");
        }
        _ => {
            match ops::execute(&req, cache) {
                Ok((body, warm)) => {
                    stats.served.fetch_add(1, Ordering::Relaxed);
                    jepo_trace::Registry::global()
                        .counter(if warm {
                            "serve.cache.warm"
                        } else {
                            "serve.cache.cold"
                        })
                        .incr();
                    respond_body(&mut stream, &body, if warm { "warm" } else { "cold" });
                }
                Err(OpError::BadRequest(m)) => {
                    stats.errored.fetch_add(1, Ordering::Relaxed);
                    respond_error(&mut stream, "bad-request", &m);
                }
                Err(OpError::Internal(m)) => {
                    stats.errored.fetch_add(1, Ordering::Relaxed);
                    respond_error(&mut stream, "internal", &m);
                }
            }
            observe_latency(&req.verb);
        }
    }
}

fn respond_body(stream: &mut TcpStream, body: &str, cache: &str) {
    for ev in codec::body_events(body, cache) {
        if codec::write_frame(stream, ev.encode().as_bytes()).is_err() {
            return;
        }
    }
    let _ = stream.flush();
}

fn respond_error(stream: &mut TcpStream, code: &str, message: &str) {
    let ev = Event::Error {
        code: code.to_string(),
        message: message.to_string(),
    };
    let _ = codec::write_frame(stream, ev.encode().as_bytes());
    let _ = stream.flush();
}
