//! The operations behind both the CLI and the daemon.
//!
//! Byte-identity between `jepo serve` responses and cold CLI stdout is
//! guaranteed *by construction*: the CLI prints exactly what these
//! renderers return, and the server streams exactly the same strings.
//! All inputs are deterministic (the repo-wide contract), so warm
//! cache hits replay the identical bytes.

use crate::cache::{ContentKey, HotCache};
use crate::codec::Request;
use jepo_core::{JepoProfiler, ProfileReport, ProfilingMode, WekaExperiment};
use jepo_jlang::JavaProject;

/// Structured operation failure, mapped onto error events by the
/// server.
#[derive(Debug)]
pub enum OpError {
    /// The request itself is unusable (unknown verb, bad parameter,
    /// unparsable corpus).
    BadRequest(String),
    /// The operation failed while running (e.g. the profiled program
    /// trapped).
    Internal(String),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::BadRequest(m) => write!(f, "bad request: {m}"),
            OpError::Internal(m) => write!(f, "{m}"),
        }
    }
}

/// Render the `analyze` report exactly as `jepo analyze` prints it.
pub fn analyze_render(suggestions: &[jepo_analyzer::Suggestion], files: usize) -> String {
    if suggestions.is_empty() {
        return "No suggestions — the project is energy-clean.\n".to_string();
    }
    format!(
        "{}\n{} suggestions across {} files.\n",
        jepo_core::views::optimizer_view(suggestions),
        suggestions.len(),
        files
    )
}

/// Render the `energy` ranking exactly as `jepo energy` prints it.
pub fn energy_render(project: &JavaProject, top: usize) -> String {
    let facts = jepo_analyzer::ProgramFacts::build(project);
    let ranking = facts.energy_ranking();
    if ranking.is_empty() {
        return "No methods found.\n".to_string();
    }
    let total: f64 = ranking.iter().map(|m| m.energy).sum();
    let mut out = String::new();
    out.push_str("== static per-method energy estimates ==\n");
    out.push_str(&format!(
        "{:>12}  {:>6}  {:<5}  method (file:line)\n",
        "energy", "share", "pure"
    ));
    for m in ranking.iter().take(top) {
        let share = if total > 0.0 {
            m.energy / total * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:>12.1}  {:>5.1}%  {:<5}  {} ({}:{})\n",
            m.energy,
            share,
            if m.pure { "yes" } else { "no" },
            m.method,
            m.file,
            m.line
        ));
    }
    if ranking.len() > top {
        out.push_str(&format!(
            "  ... {} more (pass --top N to widen)\n",
            ranking.len() - top
        ));
    }
    out.push_str(&format!(
        "\n{} methods, estimated total {:.1} (unitless; summary cost x trip products).\n",
        ranking.len(),
        total
    ));
    out
}

/// Run the Table 4 evaluation and render it exactly as `jepo table4`
/// prints it. Output is identical for every worker count.
pub fn table4_render(instances: usize, folds: usize, jobs: usize) -> String {
    let exp = WekaExperiment {
        instances,
        folds,
        ..Default::default()
    };
    jepo_core::report::table4(&exp.run_all_jobs(jobs))
}

/// The profile header + view + sampling summary, exactly the leading
/// portion of `jepo profile` stdout (before the `result.txt` write
/// notice, which is CLI-only).
pub fn profile_render(report: &ProfileReport) -> String {
    let mut out = format!(
        "main class {} | {} probes injected | total {:.3} mJ / {:.3} ms\n\n",
        report.main_class,
        report.probes_injected,
        report.energy.package_j * 1e3,
        report.energy.seconds * 1e3
    );
    out.push_str(&report.view());
    if let Some(s) = &report.sampled {
        out.push_str(&format!(
            "\n{} samples ({} dropped) @ {} µs | raw {:.3} mJ | profiler cost {:.3} mJ | calibrated {:.3} mJ\n",
            s.samples,
            s.dropped,
            s.interval_us,
            s.raw_total_j * 1e3,
            s.calibration_j * 1e3,
            s.calibrated_total_j * 1e3
        ));
    }
    out
}

/// The full served profile body: the shared render plus the program's
/// own stdout (the daemon never writes `result.txt` to disk).
fn profile_body(report: &ProfileReport) -> String {
    let mut out = profile_render(report);
    if !report.stdout.is_empty() {
        out.push_str(&format!(
            "\nprogram output:\n{}\n",
            report.stdout.trim_end()
        ));
    }
    out
}

/// Parse a profiling mode from request parameters.
fn profile_mode(req: &Request) -> Result<ProfilingMode, OpError> {
    let interval_us = match req.param("interval") {
        Some(v) => v
            .parse()
            .map_err(|_| OpError::BadRequest(format!("bad interval: {v}")))?,
        None => 100u64,
    };
    match req.param("mode") {
        None | Some("instrumented") => Ok(ProfilingMode::Instrumented),
        Some("sampling") => Ok(ProfilingMode::Sampling { interval_us }),
        Some("both") => Ok(ProfilingMode::Both { interval_us }),
        Some(other) => Err(OpError::BadRequest(format!("unknown mode: {other}"))),
    }
}

fn usize_param(req: &Request, key: &str, default: usize) -> Result<usize, OpError> {
    match req.param(key) {
        Some(v) => v
            .parse()
            .map_err(|_| OpError::BadRequest(format!("bad {key}: {v}"))),
        None => Ok(default),
    }
}

/// Execute one request against the hot cache. Returns the response
/// body and whether it came out of the response memo (`warm`).
///
/// The `shutdown`/`stats` control verbs are handled by the server, not
/// here.
pub fn execute(req: &Request, cache: &HotCache) -> Result<(String, bool), OpError> {
    // Full-response memo first: identical request bytes replay the
    // identical response. `ping` is excluded (it can sleep on purpose).
    let memo_key = ContentKey::of(&req.encode());
    let memoizable = req.verb != "ping";
    if memoizable {
        if let Some(body) = cache.memo_get(memo_key) {
            return Ok((body.as_ref().clone(), true));
        }
    }
    let body = execute_cold(req, cache)?;
    if memoizable {
        cache.memo_put(memo_key, &body);
    }
    Ok((body, false))
}

/// The non-memoized path: build the project through the parse cache
/// and run the verb.
fn execute_cold(req: &Request, cache: &HotCache) -> Result<String, OpError> {
    match req.verb.as_str() {
        "analyze" => {
            let project = project_from(req, cache)?;
            let suggestions = cache.analyze(&project);
            Ok(analyze_render(&suggestions, project.len()))
        }
        "energy" => {
            let top = usize_param(req, "top", 20)?;
            let project = project_from(req, cache)?;
            Ok(energy_render(&project, top))
        }
        "table4" => {
            let instances = usize_param(req, "instances", 2_000)?;
            let folds = usize_param(req, "folds", 10)?;
            // One worker: request-level parallelism comes from the
            // server's pool, and the output is N-independent anyway.
            Ok(table4_render(instances, folds, 1))
        }
        "profile" => {
            let mode = profile_mode(req)?;
            let project = project_from(req, cache)?;
            let mut profiler = JepoProfiler::new().with_mode(mode);
            profiler.chosen_main = req.param("main").map(str::to_string);
            let key = ContentKey::of_files(&req.files);
            let prepared = cache.prepared(key, || {
                profiler.prepare(&project).map_err(|e| e.to_string())
            });
            let prepared = prepared.map_err(OpError::Internal)?;
            let report = profiler
                .profile_prepared(&project, Some(&prepared))
                .map_err(|e| OpError::Internal(e.to_string()))?;
            Ok(profile_body(&report))
        }
        "ping" => {
            if let Some(ms) = req.param("sleep_ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| OpError::BadRequest(format!("bad sleep_ms: {ms}")))?;
                std::thread::sleep(std::time::Duration::from_millis(ms.min(10_000)));
            }
            Ok("pong\n".to_string())
        }
        other => Err(OpError::BadRequest(format!("unknown verb: {other}"))),
    }
}

fn project_from(req: &Request, cache: &HotCache) -> Result<JavaProject, OpError> {
    if req.files.is_empty() {
        return Err(OpError::BadRequest(format!(
            "verb `{}` needs at least one file",
            req.verb
        )));
    }
    cache.project(&req.files).map_err(OpError::BadRequest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(String, String)> {
        vec![
            (
                "Main.java".to_string(),
                "class Main { public static void main(String[] args) { int s = 0; \
                 for (int i = 0; i < 10; i = i + 1) { s = s + i; } System.out.println(s); } }"
                    .to_string(),
            ),
            (
                "Util.java".to_string(),
                "class Util { static int twice(int x) { return x + x; } }".to_string(),
            ),
        ]
    }

    #[test]
    fn second_identical_request_is_warm_and_identical() {
        let cache = HotCache::new();
        for verb in ["analyze", "energy", "profile"] {
            let mut req = Request::new(verb);
            req.files = corpus();
            let (cold, warm_flag) = execute(&req, &cache).unwrap();
            assert!(!warm_flag, "{verb}: first request must be cold");
            let (warm, warm_flag) = execute(&req, &cache).unwrap();
            assert!(warm_flag, "{verb}: repeat must be warm");
            assert_eq!(cold, warm, "{verb}: warm body must be byte-identical");
        }
    }

    #[test]
    fn table4_runs_without_files() {
        let cache = HotCache::new();
        let mut req = Request::new("table4");
        req.params.push(("instances".into(), "40".into()));
        req.params.push(("folds".into(), "2".into()));
        let (body, _) = execute(&req, &cache).unwrap();
        assert!(body.contains("TABLE IV"), "{body}");
    }

    #[test]
    fn bad_verbs_and_corpora_are_structured_errors() {
        let cache = HotCache::new();
        let req = Request::new("frobnicate");
        assert!(matches!(execute(&req, &cache), Err(OpError::BadRequest(_))));
        let mut req = Request::new("analyze");
        req.files = vec![("Broken.java".into(), "class {{{{".into())];
        assert!(matches!(execute(&req, &cache), Err(OpError::BadRequest(_))));
        let mut req = Request::new("profile");
        req.files = vec![("A.java".into(), "class A { void f() { } }".into())];
        // No main class: an internal (run-time) error, still structured.
        assert!(execute(&req, &cache).is_err());
    }
}
