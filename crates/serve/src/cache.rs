//! The daemon's shared hot cache.
//!
//! Four layers, all keyed by content so identical bytes are never
//! re-processed, and all shared across worker threads:
//!
//! 1. **Parse cache** — `(file name, text)` content hash → parsed
//!    [`SourceFile`] (AST included). Warm requests assemble a
//!    [`JavaProject`] without running the parser.
//! 2. **Analysis cache** — the incremental per-file analyzer cache
//!    (PR 8), shared across requests so any file seen before, in any
//!    corpus, is an analyzer cache hit.
//! 3. **Prepared-program cache** — corpus content hash →
//!    [`PreparedProgram`] (compiled, probe-injected, decoded and
//!    IR-lowered forms). Warm profile requests skip straight to
//!    execution.
//! 4. **Response memo** — canonical request bytes → full response
//!    body. A repeat of an identical request is served from memory;
//!    this is what the `"cache":"warm"` flag on the done event means.
//!
//! Everything cached is immutable once inserted (`Arc`s are handed
//! out), so readers never see partial state; correctness is proven by
//! the warm-equals-cold byte-identity tests.

use jepo_core::PreparedProgram;
use jepo_jlang::{JavaProject, SourceFile};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a, the repo's standard content hash.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// 128-bit content key (two independently-seeded FNV-1a passes) —
/// collision odds are negligible at cache scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentKey(u64, u64);

impl ContentKey {
    /// Hash one byte string.
    pub fn of(bytes: &[u8]) -> ContentKey {
        ContentKey(fnv1a(bytes, 0), fnv1a(bytes, 0x9e3779b97f4a7c15))
    }

    /// Hash one named file (length-prefixed so name/body bytes cannot
    /// alias).
    pub fn of_file(name: &str, body: &str) -> ContentKey {
        let mut buf = Vec::with_capacity(name.len() + body.len() + 16);
        push_file(&mut buf, name, body);
        ContentKey::of(&buf)
    }

    /// Hash a sequence of named byte strings (order-sensitive,
    /// length-prefixed so concatenation cannot alias).
    pub fn of_files(files: &[(String, String)]) -> ContentKey {
        let mut buf = Vec::new();
        for (name, body) in files {
            push_file(&mut buf, name, body);
        }
        ContentKey::of(&buf)
    }
}

fn push_file(buf: &mut Vec<u8>, name: &str, body: &str) {
    buf.extend_from_slice(format!("{} {}\n", name.len(), body.len()).as_bytes());
    buf.extend_from_slice(name.as_bytes());
    buf.extend_from_slice(body.as_bytes());
}

/// Hit/miss counters for one cache layer.
#[derive(Debug, Default)]
pub struct LayerStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LayerStats {
    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(hits, misses)` so far.
    pub fn get(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// The shared hot cache. One per server; `Arc`-shared by every worker.
pub struct HotCache {
    parse: Mutex<HashMap<ContentKey, Arc<SourceFile>>>,
    /// The interprocedural analyzer plus its incremental cache. The
    /// analyzer is stateless; the cache accumulates per-file results
    /// across every request the daemon has served.
    analysis: Mutex<(jepo_analyzer::Analyzer, jepo_analyzer::AnalysisCache)>,
    prepared: Mutex<HashMap<ContentKey, Arc<PreparedProgram>>>,
    memo: Mutex<HashMap<ContentKey, Arc<String>>>,
    /// Per-layer hit/miss counters: parse, prepared, memo.
    pub parse_stats: LayerStats,
    pub prepared_stats: LayerStats,
    pub memo_stats: LayerStats,
}

impl Default for HotCache {
    fn default() -> Self {
        HotCache::new()
    }
}

impl HotCache {
    /// An empty cache around a fresh interprocedural analyzer.
    pub fn new() -> HotCache {
        let analyzer = jepo_analyzer::Analyzer::interprocedural();
        let cache = analyzer.new_cache();
        HotCache {
            parse: Mutex::new(HashMap::new()),
            analysis: Mutex::new((analyzer, cache)),
            prepared: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            parse_stats: LayerStats::default(),
            prepared_stats: LayerStats::default(),
            memo_stats: LayerStats::default(),
        }
    }

    /// Assemble a project from `(name, body)` pairs, parsing only the
    /// files this cache has never seen.
    pub fn project(&self, files: &[(String, String)]) -> Result<JavaProject, String> {
        let mut project = JavaProject::new();
        for (name, body) in files {
            let key = ContentKey::of_file(name, body);
            let cached = self.parse.lock().unwrap().get(&key).cloned();
            self.parse_stats.record(cached.is_some());
            match cached {
                Some(file) => project.files_mut().push(file.as_ref().clone()),
                None => {
                    project
                        .add_file(name, body)
                        .map_err(|e| format!("{name}: {e}"))?;
                    let parsed = project.files().last().expect("just added").clone();
                    self.parse.lock().unwrap().insert(key, Arc::new(parsed));
                }
            }
        }
        Ok(project)
    }

    /// Run the shared incremental analyzer over a project. Returns the
    /// ranked suggestions. Per-file results persist across requests.
    pub fn analyze(&self, project: &JavaProject) -> Vec<jepo_analyzer::Suggestion> {
        let mut guard = self.analysis.lock().unwrap();
        let (analyzer, cache) = &mut *guard;
        let mut suggestions = analyzer.analyze_project_incremental(project, cache);
        jepo_analyzer::impact::rank(&mut suggestions);
        suggestions
    }

    /// Fetch or build the shared compiled forms of a corpus for
    /// profiling.
    pub fn prepared(
        &self,
        key: ContentKey,
        build: impl FnOnce() -> Result<PreparedProgram, String>,
    ) -> Result<Arc<PreparedProgram>, String> {
        let cached = self.prepared.lock().unwrap().get(&key).cloned();
        self.prepared_stats.record(cached.is_some());
        if let Some(p) = cached {
            return Ok(p);
        }
        let built = Arc::new(build()?);
        // Racing builders both insert identical (deterministic) forms;
        // last write wins and either value is correct.
        self.prepared.lock().unwrap().insert(key, built.clone());
        Ok(built)
    }

    /// Look up a memoized full response for canonical request bytes.
    pub fn memo_get(&self, key: ContentKey) -> Option<Arc<String>> {
        let hit = self.memo.lock().unwrap().get(&key).cloned();
        self.memo_stats.record(hit.is_some());
        hit
    }

    /// Memoize a response body.
    pub fn memo_put(&self, key: ContentKey, body: &str) {
        self.memo
            .lock()
            .unwrap()
            .insert(key, Arc::new(body.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_key_distinguishes_file_splits() {
        // Same concatenated bytes, different file boundaries.
        let a = ContentKey::of_files(&[("ab".into(), "c".into())]);
        let b = ContentKey::of_files(&[("a".into(), "bc".into())]);
        assert_ne!(a, b);
        let c = ContentKey::of_files(&[("ab".into(), "c".into())]);
        assert_eq!(a, c);
    }

    #[test]
    fn project_parse_cache_hits_on_repeat() {
        let cache = HotCache::new();
        let files = vec![
            ("A.java".to_string(), "class A { void f() { } }".to_string()),
            ("B.java".to_string(), "class B { void g() { } }".to_string()),
        ];
        let p1 = cache.project(&files).unwrap();
        assert_eq!(cache.parse_stats.get(), (0, 2));
        let p2 = cache.project(&files).unwrap();
        assert_eq!(cache.parse_stats.get(), (2, 2));
        assert_eq!(p1.len(), p2.len());
        // The cached project analyzes identically to the fresh one.
        assert_eq!(
            format!("{:?}", cache.analyze(&p1)),
            format!("{:?}", cache.analyze(&p2))
        );
    }

    #[test]
    fn memo_round_trips() {
        let cache = HotCache::new();
        let key = ContentKey::of(b"request-bytes");
        assert!(cache.memo_get(key).is_none());
        cache.memo_put(key, "the body");
        assert_eq!(cache.memo_get(key).unwrap().as_str(), "the body");
        assert_eq!(cache.memo_stats.get(), (1, 1));
    }
}
