//! Wire format of the `jepo serve` protocol.
//!
//! Transport: length-prefixed frames over TCP — a big-endian `u32`
//! length followed by that many payload bytes. Frames are capped at
//! [`MAX_FRAME`]; oversized, truncated or garbage frames decode to a
//! structured [`CodecError`], never a panic (the daemon answers them
//! with an error event and stays up).
//!
//! A client sends exactly one request frame per connection. The request
//! payload is a line-oriented text form with length-prefixed fields so
//! arbitrary file bodies round-trip exactly:
//!
//! ```text
//! jepo1 <verb>\n
//! p <key-len> <value-len>\n<key><value>\n      (repeated; parameters)
//! f <name-len> <body-len>\n<name><body>\n      (repeated; corpus files)
//! end\n
//! ```
//!
//! The server streams back JSONL events, one event per frame:
//!
//! ```text
//! {"event":"chunk","data":"<json-escaped body bytes>"}      (repeated)
//! {"event":"done","status":"ok","cache":"warm","bytes":123}
//! {"event":"done","status":"error","code":"busy","message":"..."}
//! ```

use std::io::{Read, Write};

/// Hard cap on a frame payload: 64 MiB.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Protocol magic of request payloads.
pub const MAGIC: &str = "jepo1";

/// Body bytes per `chunk` event when streaming a response.
pub const CHUNK_SIZE: usize = 32 * 1024;

/// Everything that can go wrong decoding a frame or request. Malformed
/// input from the network maps here — never into a panic.
#[derive(Debug)]
pub enum CodecError {
    /// The peer closed the stream cleanly before a frame started.
    Eof,
    /// The stream ended inside a length prefix or payload.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// The payload is not a well-formed request (reason).
    Malformed(String),
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Eof => write!(f, "connection closed"),
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            CodecError::Malformed(why) => write!(f, "malformed request: {why}"),
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> CodecError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(e)
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Read one length-prefixed frame, enforcing the size cap. A clean EOF
/// before any length byte is [`CodecError::Eof`]; an EOF mid-frame is
/// [`CodecError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, CodecError> {
    let mut len = [0u8; 4];
    // First byte by hand so a clean close is distinguishable.
    match r.read(&mut len[..1]) {
        Ok(0) => return Err(CodecError::Eof),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut len[1..])?;
    let n = u32::from_be_bytes(len);
    if n > MAX_FRAME {
        return Err(CodecError::Oversized(n));
    }
    let mut payload = vec![0u8; n as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// One request: a verb plus ordered parameters and corpus files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Request {
    /// What to do: `analyze`, `energy`, `profile`, `table4`, `ping`,
    /// `stats`, `shutdown`.
    pub verb: String,
    /// Key/value parameters (e.g. `top`, `mode`, `sleep_ms`).
    pub params: Vec<(String, String)>,
    /// Corpus files shipped inline as `(name, body)`.
    pub files: Vec<(String, String)>,
}

impl Request {
    /// A bare request with no parameters or files.
    pub fn new(verb: &str) -> Request {
        Request {
            verb: verb.to_string(),
            ..Default::default()
        }
    }

    /// Look a parameter up.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Canonical payload bytes. Decoding this yields an equal request
    /// as long as every field stays under the frame cap.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.verb.as_bytes());
        out.push(b'\n');
        for (k, v) in &self.params {
            out.extend_from_slice(format!("p {} {}\n", k.len(), v.len()).as_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(v.as_bytes());
            out.push(b'\n');
        }
        for (name, body) in &self.files {
            out.extend_from_slice(format!("f {} {}\n", name.len(), body.len()).as_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(body.as_bytes());
            out.push(b'\n');
        }
        out.extend_from_slice(b"end\n");
        out
    }

    /// Strict parse of a request payload. Every deviation — wrong
    /// magic, bad lengths, non-UTF-8 text, missing terminator, trailing
    /// bytes — is a [`CodecError::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<Request, CodecError> {
        let mut pos = 0usize;
        let header = take_line(payload, &mut pos)?;
        let verb = match header.split_once(' ') {
            Some((MAGIC, verb)) if !verb.is_empty() && !verb.contains(' ') => verb.to_string(),
            _ => return Err(bad("bad magic/verb header")),
        };
        let mut req = Request {
            verb,
            ..Default::default()
        };
        loop {
            let line = take_line(payload, &mut pos)?.to_string();
            if line == "end" {
                break;
            }
            let mut parts = line.split(' ');
            let kind = parts.next().unwrap_or("").to_string();
            let a = parse_len(parts.next())?;
            let b = parse_len(parts.next())?;
            if parts.next().is_some() {
                return Err(bad("trailing tokens on field line"));
            }
            let first = std::str::from_utf8(take_bytes(payload, &mut pos, a)?)
                .map_err(|_| bad("non-UTF-8 field"))?
                .to_string();
            let second = std::str::from_utf8(take_bytes(payload, &mut pos, b)?)
                .map_err(|_| bad("non-UTF-8 field"))?
                .to_string();
            if take_bytes(payload, &mut pos, 1)? != b"\n" {
                return Err(bad("missing field terminator"));
            }
            match kind.as_str() {
                "p" => req.params.push((first, second)),
                "f" => req.files.push((first, second)),
                _ => return Err(bad("unknown field kind")),
            }
        }
        if pos != payload.len() {
            return Err(bad("trailing bytes after end"));
        }
        Ok(req)
    }
}

fn bad(why: &str) -> CodecError {
    CodecError::Malformed(why.to_string())
}

/// Consume one `\n`-terminated UTF-8 line starting at `pos`.
fn take_line<'a>(payload: &'a [u8], pos: &mut usize) -> Result<&'a str, CodecError> {
    let rest = &payload[*pos..];
    let nl = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| bad("unterminated line"))?;
    let line = std::str::from_utf8(&rest[..nl]).map_err(|_| bad("non-UTF-8 header line"))?;
    *pos += nl + 1;
    Ok(line)
}

/// Consume exactly `n` raw bytes starting at `pos`.
fn take_bytes<'a>(payload: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= payload.len())
        .ok_or_else(|| bad("field length overruns payload"))?;
    let bytes = &payload[*pos..end];
    *pos = end;
    Ok(bytes)
}

/// Parse a declared field length, bounded by the frame cap.
fn parse_len(s: Option<&str>) -> Result<usize, CodecError> {
    s.and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n <= MAX_FRAME as usize)
        .ok_or_else(|| bad("bad field length"))
}

/// A response event, streamed one per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A slice of the response body.
    Chunk(String),
    /// Terminal event: success. `cache` is `"warm"` or `"cold"`,
    /// `bytes` the total body length.
    Ok { cache: String, bytes: usize },
    /// Terminal event: failure, with a machine-readable code
    /// (`bad-request`, `busy`, `shutting-down`, `internal`).
    Error { code: String, message: String },
}

impl Event {
    /// The JSONL wire form (no trailing newline; one event per frame).
    pub fn encode(&self) -> String {
        match self {
            Event::Chunk(data) => {
                format!(r#"{{"event":"chunk","data":"{}"}}"#, json_escape(data))
            }
            Event::Ok { cache, bytes } => {
                format!(r#"{{"event":"done","status":"ok","cache":"{cache}","bytes":{bytes}}}"#)
            }
            Event::Error { code, message } => format!(
                r#"{{"event":"done","status":"error","code":"{code}","message":"{}"}}"#,
                json_escape(message)
            ),
        }
    }

    /// Parse the exact shapes [`Event::encode`] emits.
    pub fn decode(line: &str) -> Result<Event, CodecError> {
        let bad = || CodecError::Malformed(format!("unrecognized event: {line}"));
        if let Some(rest) = line.strip_prefix(r#"{"event":"chunk","data":""#) {
            let data = rest.strip_suffix(r#""}"#).ok_or_else(bad)?;
            return Ok(Event::Chunk(json_unescape(data).ok_or_else(bad)?));
        }
        if let Some(rest) = line.strip_prefix(r#"{"event":"done","status":"ok","cache":""#) {
            let (cache, rest) = rest.split_once(r#"","bytes":"#).ok_or_else(bad)?;
            let bytes = rest
                .strip_suffix('}')
                .and_then(|n| n.parse().ok())
                .ok_or_else(bad)?;
            return Ok(Event::Ok {
                cache: cache.to_string(),
                bytes,
            });
        }
        if let Some(rest) = line.strip_prefix(r#"{"event":"done","status":"error","code":""#) {
            let (code, rest) = rest.split_once(r#"","message":""#).ok_or_else(bad)?;
            let message = rest.strip_suffix(r#""}"#).ok_or_else(bad)?;
            return Ok(Event::Error {
                code: code.to_string(),
                message: json_unescape(message).ok_or_else(bad)?,
            });
        }
        Err(bad())
    }
}

/// Minimal JSON string escaping (RFC 8259: quote, backslash, control
/// characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`]. `None` on an invalid escape.
pub fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Split a response body into `chunk` events followed by the `ok`
/// terminal event — the server-side streaming shape.
pub fn body_events(body: &str, cache: &str) -> Vec<Event> {
    let mut events = Vec::new();
    let bytes = body.as_bytes();
    let mut start = 0;
    while start < bytes.len() {
        // Cut on a char boundary at most CHUNK_SIZE bytes out.
        let mut end = (start + CHUNK_SIZE).min(bytes.len());
        while !body.is_char_boundary(end) {
            end -= 1;
        }
        events.push(Event::Chunk(body[start..end].to_string()));
        start = end;
    }
    events.push(Event::Ok {
        cache: cache.to_string(),
        bytes: bytes.len(),
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            verb: "analyze".into(),
            params: vec![("top".into(), "5".into())],
            files: vec![
                ("A.java".into(), "class A { }\n".into()),
                (
                    "weird name.java".into(),
                    "body with\nnewlines\nand \"quotes\"".into(),
                ),
            ],
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn empty_fields_round_trip() {
        let req = Request {
            verb: "ping".into(),
            params: vec![("".into(), "".into())],
            files: vec![("".into(), "".into())],
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn garbage_is_malformed_not_panic() {
        for garbage in [
            &b""[..],
            b"jepo1",
            b"jepo1 \n",
            b"http1 analyze\nend\n",
            b"jepo1 analyze\n",
            b"jepo1 analyze\np 3 1\nab\n",
            b"jepo1 analyze\np 9999999 1\nx\nend\n",
            b"jepo1 analyze\nq 1 1\nab\nend\n",
            b"jepo1 analyze\nend\ntrailing",
            b"jepo1 analyze\np x y\nend\n",
            b"\xff\xfe\x00",
        ] {
            assert!(matches!(
                Request::decode(garbage),
                Err(CodecError::Malformed(_))
            ));
        }
    }

    #[test]
    fn frames_round_trip_and_enforce_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(CodecError::Eof)));

        // Oversized prefix rejected before allocation.
        let huge = (MAX_FRAME + 1).to_be_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(CodecError::Oversized(_))
        ));

        // Truncation inside the prefix and inside the payload.
        assert!(matches!(
            read_frame(&mut &[0u8, 0][..]),
            Err(CodecError::Truncated)
        ));
        let mut cut = Vec::new();
        write_frame(&mut cut, b"hello").unwrap();
        cut.truncate(cut.len() - 2);
        assert!(matches!(
            read_frame(&mut &cut[..]),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn events_round_trip() {
        for ev in [
            Event::Chunk("plain".into()),
            Event::Chunk("escape \"this\"\nand\tthat \\ \u{1}".into()),
            Event::Ok {
                cache: "warm".into(),
                bytes: 123,
            },
            Event::Error {
                code: "busy".into(),
                message: "queue full\n(drop me)".into(),
            },
        ] {
            assert_eq!(Event::decode(&ev.encode()).unwrap(), ev);
        }
        assert!(Event::decode("{\"event\":\"nope\"}").is_err());
    }

    #[test]
    fn body_events_reassemble() {
        let body = "x".repeat(CHUNK_SIZE * 2 + 17);
        let events = body_events(&body, "cold");
        assert_eq!(events.len(), 4);
        let mut rebuilt = String::new();
        for ev in &events {
            if let Event::Chunk(c) = ev {
                rebuilt.push_str(c);
            }
        }
        assert_eq!(rebuilt, body);
        assert_eq!(
            events.last().unwrap(),
            &Event::Ok {
                cache: "cold".into(),
                bytes: body.len()
            }
        );
    }
}
