//! `jepo-serve` — profiling as a service.
//!
//! The paper's tool runs as an IDE plugin; production energy gates
//! (CI loops, review bots) instead call a long-lived daemon whose cost
//! per request is dominated by the *work*, not by re-parsing and
//! re-compiling the same corpus on every invocation. This crate is
//! that daemon plus its protocol:
//!
//! - [`codec`] — hardened length-prefixed framing and the
//!   request/JSONL-event codec. Malformed input yields structured
//!   errors, never panics.
//! - [`ops`] — the operations (`analyze`, `energy`, `profile`,
//!   `table4`) rendered byte-identically to the CLI, which calls the
//!   same functions.
//! - [`cache`] — the shared hot cache: parsed ASTs, the incremental
//!   analyzer cache, prepared (compiled/decoded/IR) programs, and a
//!   full-response memo, all keyed by content hash.
//! - [`server`] — the `std::net` daemon: bounded queue over
//!   `jepo-pool`, admission control, per-request spans, graceful
//!   drain on `shutdown`.
//! - [`client`] — a small blocking client for tests, the CLI and the
//!   load generator.

pub mod cache;
pub mod client;
pub mod codec;
pub mod ops;
pub mod server;

pub use cache::{ContentKey, HotCache};
pub use client::{request, Response};
pub use codec::{CodecError, Event, Request, MAX_FRAME};
pub use ops::OpError;
pub use server::{clamp_workers, serve, ServerConfig, ServerHandle};
