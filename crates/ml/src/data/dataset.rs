//! Dense dataset storage.

use super::attribute::{Attribute, AttributeKind};
use crate::MlError;
use serde::{Deserialize, Serialize};

/// A dataset: schema + dense instance rows. Nominal values are stored as
/// label indices; missing values as `NaN`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Relation name (ARFF `@relation`).
    pub relation: String,
    /// Attribute schema, class attribute included.
    pub attributes: Vec<Attribute>,
    /// Index of the class attribute.
    pub class_index: usize,
    /// Row-major instance values.
    pub instances: Vec<Vec<f64>>,
}

impl Dataset {
    /// Empty dataset with a schema; class is the last attribute.
    pub fn new(relation: &str, attributes: Vec<Attribute>) -> Dataset {
        let class_index = attributes.len().saturating_sub(1);
        Dataset {
            relation: relation.to_string(),
            attributes,
            class_index,
            instances: Vec::new(),
        }
    }

    /// Add an instance (must match the schema length).
    pub fn push(&mut self, row: Vec<f64>) -> Result<(), MlError> {
        if row.len() != self.attributes.len() {
            return Err(MlError::Data(format!(
                "row has {} values, schema has {}",
                row.len(),
                self.attributes.len()
            )));
        }
        self.instances.push(row);
        Ok(())
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Number of attributes (class included).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of class labels.
    pub fn num_classes(&self) -> usize {
        self.attributes[self.class_index].cardinality().max(1)
    }

    /// Class value of instance `i`.
    pub fn class_of(&self, i: usize) -> f64 {
        self.instances[i][self.class_index]
    }

    /// Attribute indices excluding the class.
    pub fn feature_indices(&self) -> Vec<usize> {
        (0..self.attributes.len())
            .filter(|&i| i != self.class_index)
            .collect()
    }

    /// Class distribution (counts per label).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes()];
        for row in &self.instances {
            let c = row[self.class_index] as usize;
            if c < counts.len() {
                counts[c] += 1;
            }
        }
        counts
    }

    /// Majority class index.
    pub fn majority_class(&self) -> f64 {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i as f64)
            .unwrap_or(0.0)
    }

    /// Sub-dataset from row indices (copies rows).
    pub fn subset(&self, idxs: &[usize]) -> Dataset {
        Dataset {
            relation: self.relation.clone(),
            attributes: self.attributes.clone(),
            class_index: self.class_index,
            instances: idxs.iter().map(|&i| self.instances[i].clone()).collect(),
        }
    }

    /// Split rows into `(first, second)` by a predicate on the row index.
    pub fn partition(&self, pred: impl Fn(usize) -> bool) -> (Dataset, Dataset) {
        let (a, b): (Vec<usize>, Vec<usize>) = (0..self.len()).partition(|&i| pred(i));
        (self.subset(&a), self.subset(&b))
    }

    /// One-hot encode nominal features and standardize numerics:
    /// the NominalToBinary + Normalize filter pipeline WEKA's linear
    /// models apply. Returns `(feature rows, labels, dimension)`.
    pub fn to_numeric(&self) -> (Vec<Vec<f64>>, Vec<f64>, usize) {
        // Layout: numeric attrs → 1 column (standardized); nominal attrs
        // → one column per label.
        let feats = self.feature_indices();
        let mut dim = 0usize;
        let mut offsets = Vec::with_capacity(feats.len());
        for &f in &feats {
            offsets.push(dim);
            dim += match &self.attributes[f].kind {
                AttributeKind::Numeric => 1,
                AttributeKind::Nominal(l) => l.len(),
            };
        }
        // Standardization stats for numeric columns.
        let mut means = vec![0.0; feats.len()];
        let mut stds = vec![1.0; feats.len()];
        for (k, &f) in feats.iter().enumerate() {
            if self.attributes[f].is_numeric() && !self.is_empty() {
                let n = self.len() as f64;
                let mean = self.instances.iter().map(|r| r[f]).sum::<f64>() / n;
                let var = self
                    .instances
                    .iter()
                    .map(|r| (r[f] - mean).powi(2))
                    .sum::<f64>()
                    / n;
                means[k] = mean;
                stds[k] = var.sqrt().max(1e-12);
            }
        }
        let mut rows = Vec::with_capacity(self.len());
        let mut labels = Vec::with_capacity(self.len());
        for r in &self.instances {
            let mut x = vec![0.0; dim];
            for (k, &f) in feats.iter().enumerate() {
                match &self.attributes[f].kind {
                    AttributeKind::Numeric => x[offsets[k]] = (r[f] - means[k]) / stds[k],
                    AttributeKind::Nominal(l) => {
                        let v = r[f] as usize;
                        if v < l.len() {
                            x[offsets[k] + v] = 1.0;
                        }
                    }
                }
            }
            rows.push(x);
            labels.push(r[self.class_index]);
        }
        (rows, labels, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(
            "toy",
            vec![
                Attribute::numeric("x"),
                Attribute::nominal("color", &["r", "g", "b"]),
                Attribute::binary("y"),
            ],
        );
        d.push(vec![1.0, 0.0, 0.0]).unwrap();
        d.push(vec![2.0, 1.0, 1.0]).unwrap();
        d.push(vec![3.0, 2.0, 1.0]).unwrap();
        d
    }

    #[test]
    fn schema_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.class_index, 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.feature_indices(), vec![0, 1]);
        assert_eq!(d.class_counts(), vec![1, 2]);
        assert_eq!(d.majority_class(), 1.0);
    }

    #[test]
    fn push_validates_arity() {
        let mut d = toy();
        assert!(d.push(vec![1.0]).is_err());
    }

    #[test]
    fn subset_and_partition() {
        let d = toy();
        let s = d.subset(&[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.class_of(1), 1.0);
        let (a, b) = d.partition(|i| i == 1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn to_numeric_one_hot_and_standardize() {
        let d = toy();
        let (rows, labels, dim) = d.to_numeric();
        assert_eq!(dim, 1 + 3);
        assert_eq!(rows.len(), 3);
        assert_eq!(labels, vec![0.0, 1.0, 1.0]);
        // One-hot: exactly one of the 3 color slots set per row.
        for r in &rows {
            let hot: f64 = r[1..4].iter().sum();
            assert!((hot - 1.0).abs() < 1e-12);
        }
        // Standardized numeric column has mean ~0.
        let mean: f64 = rows.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-9);
    }
}
