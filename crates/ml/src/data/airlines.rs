//! Deterministic generator reproducing the MOA airlines dataset schema
//! (Table III).
//!
//! The original file (539,383 instances, 8 attributes) predicts whether
//! a flight will be delayed. It is not redistributable here, so this
//! generator produces the same schema — Airline (18 values), Flight
//! (numeric), Airport From / Airport To (293 values), Day Of Week
//! (nominal), Time (numeric), Length (numeric), Delay (binary) — with a
//! planted, learnable delay model: per-airline bias, rush-hour and
//! weekday effects, congested-airport effects, and noise. Accuracy of a
//! good classifier on this data lands in the 60–70% band, as on the
//! real airlines data.

use super::attribute::Attribute;
use super::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct airlines in the original data.
pub const NUM_AIRLINES: usize = 18;
/// Number of distinct airports in the original data.
pub const NUM_AIRPORTS: usize = 293;
/// Instance count of the original file.
pub const FULL_SIZE: usize = 539_383;
/// The subset size the paper evaluates (heap-limited): "We reduce the
/// number of instances to 10,000".
pub const PAPER_SIZE: usize = 10_000;

/// Deterministic airlines-data generator.
pub struct AirlinesGenerator {
    rng: StdRng,
    airline_bias: Vec<f64>,
    airport_congestion: Vec<f64>,
}

impl AirlinesGenerator {
    /// Create with a seed (same seed → identical dataset).
    pub fn new(seed: u64) -> AirlinesGenerator {
        let mut rng = StdRng::seed_from_u64(seed);
        let airline_bias = (0..NUM_AIRLINES)
            .map(|_| rng.gen_range(-0.8..0.8))
            .collect();
        let airport_congestion = (0..NUM_AIRPORTS)
            .map(|_| rng.gen_range(0.0..1.0f64).powi(2))
            .collect();
        AirlinesGenerator {
            rng,
            airline_bias,
            airport_congestion,
        }
    }

    /// The Table III schema.
    pub fn schema() -> Vec<Attribute> {
        let airlines: Vec<String> = (0..NUM_AIRLINES).map(|i| format!("AL{i:02}")).collect();
        let airports: Vec<String> = (0..NUM_AIRPORTS).map(|i| format!("AP{i:03}")).collect();
        let days = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
        vec![
            Attribute::nominal(
                "Airline",
                &airlines.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            ),
            Attribute::numeric("Flight"),
            Attribute::nominal(
                "Airport From",
                &airports.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            ),
            Attribute::nominal(
                "Airport To",
                &airports.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            ),
            Attribute::nominal("Day Of Week", &days),
            Attribute::numeric("Time"),
            Attribute::numeric("Length"),
            Attribute::binary("Delay"),
        ]
    }

    /// Generate `n` instances.
    pub fn generate(&mut self, n: usize) -> Dataset {
        let mut d = Dataset::new("airlines", Self::schema());
        for _ in 0..n {
            let airline = self.rng.gen_range(0..NUM_AIRLINES);
            let flight = self.rng.gen_range(1.0..7500.0f64).floor();
            let from = self.rng.gen_range(0..NUM_AIRPORTS);
            let mut to = self.rng.gen_range(0..NUM_AIRPORTS);
            if to == from {
                to = (to + 1) % NUM_AIRPORTS;
            }
            let day = self.rng.gen_range(0..7);
            // Departure time in minutes from midnight, bimodal around
            // morning and evening banks.
            let time = if self.rng.gen_bool(0.5) {
                self.rng.gen_range(330.0..720.0)
            } else {
                self.rng.gen_range(720.0..1380.0)
            };
            let length = self.rng.gen_range(25.0..680.0f64).floor();
            // Planted delay logit.
            let rush = if (450.0..600.0).contains(&time) || (990.0..1170.0).contains(&time) {
                0.55
            } else {
                -0.25
            };
            let weekday = if day <= 4 { 0.18 } else { -0.35 };
            let logit = -0.4
                + self.airline_bias[airline]
                + rush
                + weekday
                + 1.1 * self.airport_congestion[from]
                + 0.7 * self.airport_congestion[to]
                + 0.0006 * (length - 300.0);
            let p = 1.0 / (1.0 + (-logit).exp());
            let delay = if self.rng.gen_bool(p.clamp(0.02, 0.98)) {
                1.0
            } else {
                0.0
            };
            d.push(vec![
                airline as f64,
                flight,
                from as f64,
                to as f64,
                day as f64,
                time,
                length,
                delay,
            ])
            .expect("schema arity");
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table3() {
        let schema = AirlinesGenerator::schema();
        assert_eq!(schema.len(), 8);
        let names: Vec<&str> = schema.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Airline",
                "Flight",
                "Airport From",
                "Airport To",
                "Day Of Week",
                "Time",
                "Length",
                "Delay"
            ]
        );
        let types: Vec<&str> = schema.iter().map(|a| a.type_name()).collect();
        assert_eq!(
            types,
            vec![
                "Nominal", "Numeric", "Nominal", "Nominal", "Nominal", "Numeric", "Numeric",
                "Binary"
            ]
        );
        assert_eq!(schema[0].cardinality(), NUM_AIRLINES);
        assert_eq!(schema[2].cardinality(), NUM_AIRPORTS);
        // "4 nominal, 3 numeric and one binary attribute".
        let nominal = types.iter().filter(|t| **t == "Nominal").count();
        let numeric = types.iter().filter(|t| **t == "Numeric").count();
        let binary = types.iter().filter(|t| **t == "Binary").count();
        assert_eq!((nominal, numeric, binary), (4, 3, 1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AirlinesGenerator::new(42).generate(200);
        let b = AirlinesGenerator::new(42).generate(200);
        assert_eq!(a.instances, b.instances);
        let c = AirlinesGenerator::new(43).generate(200);
        assert_ne!(a.instances, c.instances);
    }

    #[test]
    fn values_respect_schema_ranges() {
        let d = AirlinesGenerator::new(1).generate(500);
        for row in &d.instances {
            assert!((0.0..NUM_AIRLINES as f64).contains(&row[0]));
            assert!((0.0..NUM_AIRPORTS as f64).contains(&row[2]));
            assert!((0.0..NUM_AIRPORTS as f64).contains(&row[3]));
            assert!((0.0..7.0).contains(&row[4]));
            assert!((0.0..1440.0).contains(&row[5]));
            assert!(row[6] > 0.0);
            assert!(row[7] == 0.0 || row[7] == 1.0);
            assert_ne!(row[2], row[3], "no self-loops");
        }
    }

    #[test]
    fn both_classes_present_and_roughly_balanced() {
        let d = AirlinesGenerator::new(5).generate(2000);
        let counts = d.class_counts();
        assert!(counts[0] > 400 && counts[1] > 400, "{counts:?}");
    }

    #[test]
    fn signal_is_learnable() {
        // Rush-hour flights must be delayed more often than off-peak:
        // the planted structure a classifier will pick up.
        let d = AirlinesGenerator::new(9).generate(4000);
        let (mut rush_delay, mut rush_n, mut off_delay, mut off_n) = (0.0, 0.0, 0.0, 0.0);
        for r in &d.instances {
            let rush = (450.0..600.0).contains(&r[5]) || (990.0..1170.0).contains(&r[5]);
            if rush {
                rush_delay += r[7];
                rush_n += 1.0;
            } else {
                off_delay += r[7];
                off_n += 1.0;
            }
        }
        assert!(rush_delay / rush_n > off_delay / off_n + 0.08);
    }
}
