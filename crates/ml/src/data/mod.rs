//! Datasets, attributes, ARFF I/O, and the airlines generator.

pub mod airlines;
pub mod arff;
pub mod attribute;
pub mod dataset;

pub use attribute::{Attribute, AttributeKind};
pub use dataset::Dataset;
