//! ARFF (Attribute-Relation File Format) reading and writing — WEKA's
//! native dataset format; the MOA airlines data ships as ARFF.

use super::attribute::{Attribute, AttributeKind};
use super::dataset::Dataset;
use crate::MlError;

/// Parse an ARFF document.
pub fn parse(text: &str) -> Result<Dataset, MlError> {
    let mut relation = String::from("unnamed");
    let mut attributes: Vec<Attribute> = Vec::new();
    let mut in_data = false;
    let mut instances: Vec<Vec<f64>> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        if !in_data {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("@relation") {
                relation = line[9..]
                    .trim()
                    .trim_matches('\'')
                    .trim_matches('"')
                    .to_string();
            } else if lower.starts_with("@attribute") {
                attributes.push(parse_attribute(line, lineno + 1)?);
            } else if lower.starts_with("@data") {
                if attributes.is_empty() {
                    return Err(MlError::Data("@data before any @attribute".into()));
                }
                in_data = true;
            } else {
                return Err(MlError::Data(format!(
                    "line {}: unknown directive",
                    lineno + 1
                )));
            }
        } else {
            let mut row = Vec::with_capacity(attributes.len());
            for (i, field) in line.split(',').enumerate() {
                let field = field.trim().trim_matches('\'').trim_matches('"');
                if i >= attributes.len() {
                    return Err(MlError::Data(format!(
                        "line {}: too many fields",
                        lineno + 1
                    )));
                }
                let v = if field == "?" {
                    f64::NAN
                } else {
                    match &attributes[i].kind {
                        AttributeKind::Numeric => field.parse::<f64>().map_err(|e| {
                            MlError::Data(format!(
                                "line {}: bad numeric `{field}`: {e}",
                                lineno + 1
                            ))
                        })?,
                        AttributeKind::Nominal(_) => {
                            attributes[i].index_of(field).ok_or_else(|| {
                                MlError::Data(format!(
                                    "line {}: unknown label `{field}` for {}",
                                    lineno + 1,
                                    attributes[i].name
                                ))
                            })? as f64
                        }
                    }
                };
                row.push(v);
            }
            if row.len() != attributes.len() {
                return Err(MlError::Data(format!(
                    "line {}: {} fields, expected {}",
                    lineno + 1,
                    row.len(),
                    attributes.len()
                )));
            }
            instances.push(row);
        }
    }
    let class_index = attributes.len().saturating_sub(1);
    Ok(Dataset {
        relation,
        attributes,
        class_index,
        instances,
    })
}

fn parse_attribute(line: &str, lineno: usize) -> Result<Attribute, MlError> {
    let rest = line[10..].trim();
    // Name may be quoted (contains spaces).
    let (name, tail) = if let Some(stripped) = rest.strip_prefix('\'') {
        let end = stripped
            .find('\'')
            .ok_or_else(|| MlError::Data(format!("line {lineno}: unterminated attribute name")))?;
        (stripped[..end].to_string(), stripped[end + 1..].trim())
    } else {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or("").to_string();
        (name, parts.next().unwrap_or("").trim())
    };
    if name.is_empty() {
        return Err(MlError::Data(format!(
            "line {lineno}: missing attribute name"
        )));
    }
    let kind = if tail.starts_with('{') {
        let inner = tail
            .trim_start_matches('{')
            .trim_end_matches('}')
            .split(',')
            .map(|s| s.trim().trim_matches('\'').trim_matches('"').to_string())
            .collect::<Vec<_>>();
        if inner.iter().any(|s| s.is_empty()) {
            return Err(MlError::Data(format!("line {lineno}: empty nominal label")));
        }
        AttributeKind::Nominal(inner)
    } else {
        match tail.to_ascii_lowercase().as_str() {
            "numeric" | "real" | "integer" => AttributeKind::Numeric,
            other => {
                return Err(MlError::Data(format!(
                    "line {lineno}: unsupported attribute type `{other}`"
                )))
            }
        }
    };
    Ok(Attribute { name, kind })
}

/// Serialize a dataset to ARFF.
pub fn write(d: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(&format!("@relation '{}'\n\n", d.relation));
    for a in &d.attributes {
        match &a.kind {
            AttributeKind::Numeric => out.push_str(&format!("@attribute '{}' numeric\n", a.name)),
            AttributeKind::Nominal(labels) => {
                out.push_str(&format!(
                    "@attribute '{}' {{{}}}\n",
                    a.name,
                    labels.join(",")
                ));
            }
        }
    }
    out.push_str("\n@data\n");
    for row in &d.instances {
        let fields: Vec<String> = row
            .iter()
            .zip(&d.attributes)
            .map(|(v, a)| {
                if v.is_nan() {
                    "?".to_string()
                } else {
                    match &a.kind {
                        AttributeKind::Numeric => format!("{v}"),
                        AttributeKind::Nominal(_) => a.label(*v).unwrap_or("?").to_string(),
                    }
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
% airlines sample
@relation 'airlines'
@attribute 'Airline' {AA,UA,DL}
@attribute 'Flight' numeric
@attribute 'Delay' {0,1}

@data
AA,120,0
UA,88,1
DL,?,0
";

    #[test]
    fn parses_relation_attributes_and_data() {
        let d = parse(SAMPLE).unwrap();
        assert_eq!(d.relation, "airlines");
        assert_eq!(d.num_attributes(), 3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.instances[0], vec![0.0, 120.0, 0.0]);
        assert_eq!(d.instances[1][0], 1.0);
        assert!(d.instances[2][1].is_nan());
        assert_eq!(d.class_index, 2);
    }

    #[test]
    fn roundtrip() {
        let d = parse(SAMPLE).unwrap();
        let text = write(&d);
        let d2 = parse(&text).unwrap();
        assert_eq!(d.relation, d2.relation);
        assert_eq!(d.attributes, d2.attributes);
        assert_eq!(d.len(), d2.len());
        assert_eq!(d.instances[0], d2.instances[0]);
        assert!(d2.instances[2][1].is_nan());
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(parse("@data\n1,2").is_err());
        assert!(parse("@relation r\n@attribute a wibble\n@data\n").is_err());
        assert!(parse("@relation r\n@attribute a numeric\n@data\nxyz").is_err());
        assert!(parse("@relation r\n@attribute a {x,y}\n@data\nz").is_err());
        assert!(parse("@relation r\n@attribute a numeric\n@data\n1,2,3").is_err());
    }

    #[test]
    fn quoted_names_with_spaces() {
        let d = parse(
            "@relation r\n@attribute 'Airport From' {A,B}\n@attribute 'Delay' {0,1}\n@data\nA,1\n",
        )
        .unwrap();
        assert_eq!(d.attributes[0].name, "Airport From");
    }
}
