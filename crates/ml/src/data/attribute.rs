//! Attribute schema — the "Type" column of Table III.

use serde::{Deserialize, Serialize};

/// Kind of an attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Real-valued.
    Numeric,
    /// Categorical with a fixed label set; values are stored as the
    /// label index.
    Nominal(Vec<String>),
}

/// A named attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (e.g. `"Airport From"`).
    pub name: String,
    /// Kind.
    pub kind: AttributeKind,
}

impl Attribute {
    /// A numeric attribute.
    pub fn numeric(name: &str) -> Attribute {
        Attribute {
            name: name.to_string(),
            kind: AttributeKind::Numeric,
        }
    }

    /// A nominal attribute with the given labels.
    pub fn nominal(name: &str, labels: &[&str]) -> Attribute {
        Attribute {
            name: name.to_string(),
            kind: AttributeKind::Nominal(labels.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// A binary attribute (`{0, 1}` nominal — Table III's "Binary").
    pub fn binary(name: &str) -> Attribute {
        Attribute::nominal(name, &["0", "1"])
    }

    /// Whether numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self.kind, AttributeKind::Numeric)
    }

    /// Number of nominal labels (0 for numeric).
    pub fn cardinality(&self) -> usize {
        match &self.kind {
            AttributeKind::Numeric => 0,
            AttributeKind::Nominal(l) => l.len(),
        }
    }

    /// Label for a stored value (nominal only).
    pub fn label(&self, value: f64) -> Option<&str> {
        match &self.kind {
            AttributeKind::Nominal(l) => l.get(value as usize).map(|s| s.as_str()),
            AttributeKind::Numeric => None,
        }
    }

    /// Index of a label.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        match &self.kind {
            AttributeKind::Nominal(l) => l.iter().position(|s| s == label),
            AttributeKind::Numeric => None,
        }
    }

    /// Type name as Table III prints it.
    pub fn type_name(&self) -> &'static str {
        match &self.kind {
            AttributeKind::Numeric => "Numeric",
            AttributeKind::Nominal(l) if l.len() == 2 && l[0] == "0" && l[1] == "1" => "Binary",
            AttributeKind::Nominal(_) => "Nominal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_cardinality() {
        let n = Attribute::numeric("Flight");
        assert!(n.is_numeric());
        assert_eq!(n.cardinality(), 0);
        let a = Attribute::nominal("Airline", &["AA", "UA"]);
        assert_eq!(a.cardinality(), 2);
        assert_eq!(a.label(1.0), Some("UA"));
        assert_eq!(a.index_of("AA"), Some(0));
        assert_eq!(a.index_of("ZZ"), None);
    }

    #[test]
    fn type_names_match_table3() {
        assert_eq!(Attribute::numeric("Time").type_name(), "Numeric");
        assert_eq!(
            Attribute::nominal("Airline", &["a", "b", "c"]).type_name(),
            "Nominal"
        );
        assert_eq!(Attribute::binary("Delay").type_name(), "Binary");
    }
}
