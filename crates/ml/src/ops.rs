//! The efficiency-profile kernel — the controlled analogue of applying
//! JEPO's suggestions to WEKA.
//!
//! Every classifier routes its hot loops through a [`Kernel`]. The
//! kernel does two things per primitive:
//!
//! 1. **counts operations** — into a thread-local [`jepo_rapl::Scoreboard`]
//!    flushed in bulk to a shared striped [`jepo_rapl::OpCounter`] — with
//!    the category the active [`EfficiencyProfile`] implies (e.g. a
//!    multiply counts `DoubleMul` under the baseline profile and
//!    `FloatMul` under the optimized one; an attribute-matrix scan
//!    counts cache misses under column order), and
//! 2. **computes the value** with matching numerics: the optimized
//!    profile rounds through `f32`, which is what produces the genuine
//!    accuracy drops of Table IV when the paper demotes `double` to
//!    `float`.
//!
//! The experiment harness converts the counts to joules/seconds with the
//! calibrated cost/latency models and reports them to the simulated RAPL
//! device, closing the loop to Table IV.

use jepo_rapl::{OpCategory, OpCounter, Scoreboard};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Floating-point width the code computes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// `double` everywhere — WEKA as shipped.
    F64,
    /// `float` after JEPO's primitive-type suggestion (precision loss).
    F32,
}

/// Traversal order of the instance/attribute matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Instance-major scans of attribute-major work: strided, cache-hostile.
    ColMajor,
    /// Scans match storage order: sequential, cache-friendly.
    RowMajor,
}

/// The set of code-level choices JEPO's suggestions flip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyProfile {
    /// Float width (Table I: primitive data types).
    pub precision: Precision,
    /// Matrix traversal order (Table I: array traversal).
    pub layout: Layout,
    /// `System.arraycopy` vs manual loops (Table I: arrays copy).
    pub bulk_copy: bool,
    /// `StringBuilder.append` vs `+` for model reports (Table I:
    /// string concatenation).
    pub builder_strings: bool,
    /// Shared mutable ("static") counters touched in hot loops vs local
    /// accumulation (Table I: static keyword).
    pub static_counters: bool,
    /// `%` hashing vs bitmask (Table I: arithmetic operators).
    pub modulus_hash: bool,
    /// `compareTo` vs `equals` for label comparisons (Table I: string
    /// comparison).
    pub compare_to: bool,
    /// Ternary-operator-style selects vs branches (Table I: ternary).
    pub ternary_selects: bool,
}

impl EfficiencyProfile {
    /// WEKA as shipped — before JEPO's suggestions.
    pub fn baseline() -> EfficiencyProfile {
        EfficiencyProfile {
            precision: Precision::F64,
            layout: Layout::ColMajor,
            bulk_copy: false,
            builder_strings: false,
            static_counters: true,
            modulus_hash: true,
            compare_to: true,
            ternary_selects: true,
        }
    }

    /// WEKA after applying every JEPO suggestion.
    pub fn optimized() -> EfficiencyProfile {
        EfficiencyProfile {
            precision: Precision::F32,
            layout: Layout::RowMajor,
            bulk_copy: true,
            builder_strings: true,
            static_counters: false,
            modulus_hash: false,
            compare_to: false,
            ternary_selects: false,
        }
    }

    /// Optimized except one dimension kept at baseline — for the
    /// ablation bench ("which suggestion buys what").
    pub fn optimized_except(dim: &str) -> EfficiencyProfile {
        let mut p = EfficiencyProfile::optimized();
        let b = EfficiencyProfile::baseline();
        match dim {
            "precision" => p.precision = b.precision,
            "layout" => p.layout = b.layout,
            "bulk_copy" => p.bulk_copy = b.bulk_copy,
            "builder_strings" => p.builder_strings = b.builder_strings,
            "static_counters" => p.static_counters = b.static_counters,
            "modulus_hash" => p.modulus_hash = b.modulus_hash,
            "compare_to" => p.compare_to = b.compare_to,
            "ternary_selects" => p.ternary_selects = b.ternary_selects,
            _ => panic!("unknown ablation dimension `{dim}`"),
        }
        p
    }

    /// Names accepted by [`EfficiencyProfile::optimized_except`].
    pub const DIMENSIONS: [&'static str; 8] = [
        "precision",
        "layout",
        "bulk_copy",
        "builder_strings",
        "static_counters",
        "modulus_hash",
        "compare_to",
        "ternary_selects",
    ];
}

/// Counted numeric kernel shared by all classifiers.
///
/// Accounting is two-tier: every hot-path method bumps a **local
/// scoreboard** (a plain non-atomic [`Scoreboard`] cell array), and the
/// accumulated block flushes in bulk into the kernel's stripe of the
/// shared striped [`OpCounter`] — on [`Kernel::flush`], on every
/// [`Kernel::snapshot`]/[`Kernel::take_snapshot`], and on `Drop`. A
/// `clone` starts a fresh scoreboard on its own stripe slot, so clones
/// handed to worker threads never contend on a cache line; because every
/// tier is a sum of `u64` increments, totals are exact for any clone
/// count, flush order, or thread schedule.
///
/// The scoreboard makes `Kernel` deliberately `!Sync` (a scoreboard
/// belongs to one thread); it stays `Send`, so the pattern is "clone,
/// move the clone into the worker, let its drop flush".
pub struct Kernel {
    profile: EfficiencyProfile,
    counter: Arc<OpCounter>,
    slot: usize,
    board: Scoreboard,
}

impl Clone for Kernel {
    fn clone(&self) -> Kernel {
        Kernel {
            profile: self.profile,
            counter: self.counter.clone(),
            slot: self.counter.assign_slot(),
            board: Scoreboard::new(),
        }
    }
}

impl Drop for Kernel {
    /// Unflushed scoreboard counts are never lost: the kernel flushes
    /// them to the shared counter when it goes out of scope.
    fn drop(&mut self) {
        self.flush();
    }
}

impl Kernel {
    /// Kernel with a fresh counter.
    pub fn new(profile: EfficiencyProfile) -> Kernel {
        Kernel::with_counter(profile, Arc::new(OpCounter::new()))
    }

    /// Kernel sharing an existing counter (the experiment harness owns it).
    pub fn with_counter(profile: EfficiencyProfile, counter: Arc<OpCounter>) -> Kernel {
        let slot = counter.assign_slot();
        Kernel {
            profile,
            counter,
            slot,
            board: Scoreboard::new(),
        }
    }

    /// The active profile.
    pub fn profile(&self) -> EfficiencyProfile {
        self.profile
    }

    /// The shared counter.
    ///
    /// Reading it directly sees only *flushed* counts; use
    /// [`Kernel::snapshot`] (or drop the clones first) when local
    /// scoreboards may still hold work.
    pub fn counter(&self) -> Arc<OpCounter> {
        self.counter.clone()
    }

    /// Flush this kernel's local scoreboard into its stripe of the
    /// shared counter. Clones flush themselves (on their own drop or
    /// explicit `flush`); counts never transfer between scoreboards.
    pub fn flush(&self) {
        self.counter.add_slab(self.slot, &self.board.drain());
    }

    /// Flush, then snapshot the shared counter.
    pub fn snapshot(&self) -> jepo_rapl::OpSnapshot {
        self.flush();
        self.counter.snapshot()
    }

    /// Flush, then drain the shared counter (snapshot + reset).
    pub fn take_snapshot(&self) -> jepo_rapl::OpSnapshot {
        self.flush();
        self.counter.take()
    }

    /// Charge `n` operations of an explicit category (neutral overhead
    /// classifiers account outside the arithmetic helpers).
    #[inline]
    pub fn charge(&self, cat: OpCategory, n: u64) {
        self.board.bump_n(cat, n);
    }

    /// A no-cost kernel for tests that don't care about energy.
    pub fn silent() -> Kernel {
        Kernel::new(EfficiencyProfile::optimized())
    }

    // --- precision -------------------------------------------------------

    /// The RNG seed a classifier actually uses. The paper's `long` →
    /// `int` demotion truncates WEKA's `Random(long seed)` to 32 bits,
    /// which re-seeds the stream — the mechanism behind Random Tree's
    /// 0.48-point and SMO's 0.17-point accuracy drops in Table IV
    /// (a *different* random model, not a worse algorithm).
    pub fn effective_seed(&self, seed: u64) -> u64 {
        match self.profile.precision {
            Precision::F64 => seed,
            Precision::F32 => (seed as u32) as u64 ^ 0x9E37_79B9,
        }
    }

    /// Round through the active float width (identity under F64).
    #[inline]
    pub fn quantize(&self, x: f64) -> f64 {
        match self.profile.precision {
            Precision::F64 => x,
            Precision::F32 => x as f32 as f64,
        }
    }

    #[inline]
    fn alu(&self) -> OpCategory {
        match self.profile.precision {
            Precision::F64 => OpCategory::DoubleAlu,
            Precision::F32 => OpCategory::FloatAlu,
        }
    }

    #[inline]
    fn mul_cat(&self) -> OpCategory {
        match self.profile.precision {
            Precision::F64 => OpCategory::DoubleMul,
            Precision::F32 => OpCategory::FloatMul,
        }
    }

    #[inline]
    fn div_cat(&self) -> OpCategory {
        match self.profile.precision {
            Precision::F64 => OpCategory::DoubleDiv,
            Precision::F32 => OpCategory::FloatDiv,
        }
    }

    // --- arithmetic --------------------------------------------------------

    /// Counted add.
    #[inline]
    pub fn add(&self, a: f64, b: f64) -> f64 {
        self.board.bump(self.alu());
        self.quantize(a + b)
    }

    /// Counted subtract.
    #[inline]
    pub fn sub(&self, a: f64, b: f64) -> f64 {
        self.board.bump(self.alu());
        self.quantize(a - b)
    }

    /// Counted multiply.
    #[inline]
    pub fn mul(&self, a: f64, b: f64) -> f64 {
        self.board.bump(self.mul_cat());
        self.quantize(a * b)
    }

    /// Counted divide.
    #[inline]
    pub fn div(&self, a: f64, b: f64) -> f64 {
        self.board.bump(self.div_cat());
        self.quantize(a / b)
    }

    /// Counted natural log (transcendental ≈ divide cost). Follows the
    /// active precision like [`Kernel::div`]: the `double`→`float`
    /// demotion reaches `Math.log` call sites too.
    #[inline]
    pub fn ln(&self, a: f64) -> f64 {
        self.board.bump(self.div_cat());
        self.quantize(a.ln())
    }

    /// Counted exp (precision-following, as [`Kernel::ln`]).
    #[inline]
    pub fn exp(&self, a: f64) -> f64 {
        self.board.bump(self.div_cat());
        self.quantize(a.exp())
    }

    /// Profile-neutral per-element overhead of any vector loop: bounds
    /// checks, index arithmetic, loop control — the JVM work JEPO's
    /// suggestions cannot touch. This is what keeps the Table IV
    /// improvements in the paper's single-digit range instead of the
    /// raw per-op ratios.
    #[inline]
    fn charge_elem_overhead(&self, n: u64) {
        self.board.bump_n(OpCategory::ArrayIndex, 2 * n);
        self.board.bump_n(OpCategory::Branch, n);
        self.board.bump_n(OpCategory::IntAlu, 2 * n);
    }

    /// Profile-*independent* floating work (library routines JEPO's
    /// rewrites never touched, e.g. WEKA Logistic's optimizer core).
    pub fn raw_flops(&self, adds: u64, muls: u64) {
        self.board.bump_n(OpCategory::DoubleAlu, adds);
        self.board.bump_n(OpCategory::DoubleMul, muls);
        self.board.bump_n(OpCategory::Load, adds + muls);
        self.charge_elem_overhead((adds + muls) / 2);
    }

    /// Neutral cost of sorting `n` values (split search pre-sorting):
    /// `n log2 n` compare/move pairs.
    pub fn charge_sort(&self, n: usize) {
        if n < 2 {
            return;
        }
        let work = (n as f64 * (n as f64).log2()) as u64;
        self.board.bump_n(OpCategory::IntAlu, work);
        self.board.bump_n(OpCategory::Load, work);
        self.board.bump_n(OpCategory::Store, work / 2);
        self.board.bump_n(OpCategory::Branch, work);
    }

    /// Counted dot product.
    pub fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len() as u64;
        self.charge_elem_overhead(n);
        self.board.bump_n(self.mul_cat(), n);
        self.board.bump_n(self.alu(), n);
        self.board.bump_n(OpCategory::Load, 2 * n);
        let mut s = 0.0;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        self.quantize(s)
    }

    /// Counted squared Euclidean distance.
    pub fn squared_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len() as u64;
        self.charge_elem_overhead(n);
        self.board.bump_n(self.mul_cat(), n);
        self.board.bump_n(self.alu(), 2 * n);
        self.board.bump_n(OpCategory::Load, 2 * n);
        let mut s = 0.0;
        for (x, y) in a.iter().zip(b) {
            let d = x - y;
            s += d * d;
        }
        self.quantize(s)
    }

    /// Counted `y += alpha * x`.
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len() as u64;
        self.charge_elem_overhead(n);
        self.board.bump_n(self.mul_cat(), n);
        self.board.bump_n(self.alu(), n);
        self.board.bump_n(OpCategory::Load, n);
        self.board.bump_n(OpCategory::Store, n);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = self.quantize(*yi + alpha * xi);
        }
    }

    // --- memory traffic -----------------------------------------------------

    /// Charge an attribute-wise scan of `rows × 1` values out of a
    /// row-major instance matrix with `row_bytes` bytes per row.
    ///
    /// Under [`Layout::ColMajor`] (WEKA's attribute-indexed inner loops
    /// over instance-major storage) each access strides a whole row:
    /// once the matrix exceeds L1 every access misses. Under
    /// [`Layout::RowMajor`] (restructured scan) accesses are sequential:
    /// one miss per cache line.
    pub fn charge_attribute_scan(&self, rows: usize, row_bytes: usize) {
        let rows_u = rows as u64;
        // Per-row neutral work: the `instance(i).value(attr)` call chain,
        // bounds checks and loop control — untouched by any suggestion.
        self.board.bump_n(OpCategory::ArrayIndex, rows_u);
        self.board.bump_n(OpCategory::Call, rows_u);
        self.board.bump_n(OpCategory::IntAlu, 2 * rows_u);
        match self.profile.layout {
            Layout::ColMajor => {
                let matrix_bytes = rows * row_bytes;
                if matrix_bytes > 32 * 1024 {
                    // Strided but constant-stride: the hardware
                    // prefetcher hides ~80% of the would-be misses.
                    self.board.bump_n(OpCategory::CacheMiss, rows_u / 5);
                    self.board.bump_n(OpCategory::Load, rows_u - rows_u / 5);
                } else {
                    // Fits in L1: one miss per line on first touch.
                    self.board.bump_n(OpCategory::CacheMiss, rows_u / 8);
                    self.board.bump_n(OpCategory::Load, rows_u - rows_u / 8);
                }
            }
            Layout::RowMajor => {
                let per_line = (64 / 8) as u64;
                self.board.bump_n(OpCategory::CacheMiss, rows_u / per_line);
                self.board
                    .bump_n(OpCategory::Load, rows_u - rows_u / per_line);
            }
        }
    }

    /// Charge a sequential pass over `n` values (always cache-friendly).
    pub fn charge_sequential_scan(&self, n: usize) {
        let n = n as u64;
        self.board.bump_n(OpCategory::Load, n);
        self.board.bump_n(OpCategory::CacheMiss, n / 8);
    }

    /// Copy a slice, counted as manual per-element copy or bulk
    /// `arraycopy` depending on the profile.
    pub fn copy(&self, src: &[f64], dst: &mut Vec<f64>) {
        dst.clear();
        dst.extend_from_slice(src);
        let n = src.len() as u64;
        if self.profile.bulk_copy {
            self.board.bump_n(OpCategory::ArrayCopyBulk, n);
        } else {
            self.board.bump_n(OpCategory::ArrayCopyElem, n);
            self.board.bump_n(OpCategory::ArrayIndex, 2 * n);
        }
    }

    // --- Table I incidentals --------------------------------------------------

    /// Touch the shared progress/statistics counters `n` times — static
    /// fields in baseline WEKA, locals after the static-keyword fix.
    #[inline]
    pub fn bump_counters(&self, n: u64) {
        if self.profile.static_counters {
            self.board.bump_n(OpCategory::StaticAccess, n);
        } else {
            self.board.bump_n(OpCategory::FieldAccess, n);
        }
    }

    /// Hash a value into `buckets` (power of two). `%` under the
    /// baseline profile, bitmask after the modulus suggestion.
    #[inline]
    pub fn hash_bucket(&self, h: u64, buckets: usize) -> usize {
        debug_assert!(buckets.is_power_of_two());
        if self.profile.modulus_hash {
            self.board.bump(OpCategory::Modulus);
            (h % buckets as u64) as usize
        } else {
            self.board.bump(OpCategory::IntAlu);
            (h & (buckets as u64 - 1)) as usize
        }
    }

    /// Compare two label strings for equality — `compareTo` in baseline
    /// WEKA, `equals` after the suggestion.
    #[inline]
    pub fn labels_equal(&self, a: &str, b: &str) -> bool {
        if self.profile.compare_to {
            self.board.bump(OpCategory::StringCompareTo);
            a.cmp(b) == std::cmp::Ordering::Equal
        } else {
            self.board.bump(OpCategory::StringEquals);
            a == b
        }
    }

    /// Numeric select: ternary-style under baseline, branch after the
    /// suggestion.
    #[inline]
    pub fn select(&self, cond: bool, a: f64, b: f64) -> f64 {
        if self.profile.ternary_selects {
            self.board.bump(OpCategory::Select);
        } else {
            self.board.bump(OpCategory::Branch);
        }
        if cond {
            a
        } else {
            b
        }
    }

    /// Build a model-report string from parts — `+` concatenation in
    /// baseline WEKA's `toString`/logging, `StringBuilder` after.
    pub fn build_report(&self, parts: &[&str]) -> String {
        if self.profile.builder_strings {
            self.board.bump_n(OpCategory::SbAppend, parts.len() as u64);
            let mut out = String::new();
            for p in parts {
                out.push_str(p);
            }
            out
        } else {
            self.board
                .bump_n(OpCategory::StringConcat, parts.len() as u64);
            let mut out = String::new();
            for p in parts {
                // Concatenation semantics: each `+` builds a fresh string.
                out = format!("{out}{p}");
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jepo_rapl::CostModel;

    fn joules(k: &Kernel) -> f64 {
        // `snapshot()` flushes the local scoreboard first.
        CostModel::paper_calibrated().joules_for(&k.snapshot())
    }

    #[test]
    fn baseline_and_optimized_differ_on_every_dimension() {
        let b = EfficiencyProfile::baseline();
        let o = EfficiencyProfile::optimized();
        assert_ne!(b.precision, o.precision);
        assert_ne!(b.layout, o.layout);
        assert_ne!(b.bulk_copy, o.bulk_copy);
        assert_ne!(b.builder_strings, o.builder_strings);
        assert_ne!(b.static_counters, o.static_counters);
        assert_ne!(b.modulus_hash, o.modulus_hash);
        assert_ne!(b.compare_to, o.compare_to);
        assert_ne!(b.ternary_selects, o.ternary_selects);
    }

    #[test]
    fn optimized_except_restores_one_dimension() {
        for dim in EfficiencyProfile::DIMENSIONS {
            let p = EfficiencyProfile::optimized_except(dim);
            assert_ne!(p, EfficiencyProfile::optimized(), "{dim} unchanged");
        }
    }

    #[test]
    #[should_panic(expected = "unknown ablation dimension")]
    fn unknown_dimension_panics() {
        EfficiencyProfile::optimized_except("wibble");
    }

    #[test]
    fn f32_quantization_loses_precision() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        let x = 0.1f64 + 1e-12;
        assert_eq!(base.quantize(x), x);
        assert_ne!(opt.quantize(x), x);
    }

    #[test]
    fn dot_product_value_is_correct() {
        let k = Kernel::silent();
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert!((k.dot(&a, &b) - 32.0).abs() < 1e-6);
        assert!((k.squared_distance(&a, &b) - 27.0).abs() < 1e-6);
    }

    #[test]
    fn baseline_scan_costs_more_energy_for_big_matrices() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        // 10,000 rows × 64 bytes ≫ L1. The prefetcher-aware model still
        // leaves the strided baseline measurably more expensive.
        base.charge_attribute_scan(10_000, 64);
        opt.charge_attribute_scan(10_000, 64);
        assert!(
            joules(&base) > joules(&opt) * 1.15,
            "{} vs {}",
            joules(&base),
            joules(&opt)
        );
    }

    #[test]
    fn small_matrix_scans_are_cheap_either_way() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        base.charge_attribute_scan(100, 64);
        opt.charge_attribute_scan(100, 64);
        assert!(joules(&base) < joules(&opt) * 3.0);
    }

    #[test]
    fn copy_strategy_changes_cost_not_result() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        let src = vec![1.0; 1000];
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        base.copy(&src, &mut d1);
        opt.copy(&src, &mut d2);
        assert_eq!(d1, d2);
        assert!(joules(&base) > joules(&opt) * 5.0);
    }

    #[test]
    fn static_counters_dominate_baseline_costs() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        base.bump_counters(1000);
        opt.bump_counters(1000);
        assert!(joules(&base) > joules(&opt) * 100.0);
    }

    #[test]
    fn hash_and_select_and_labels_work_identically() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        for h in [0u64, 7, 63, 64, 1000] {
            assert_eq!(base.hash_bucket(h, 64), opt.hash_bucket(h, 64));
        }
        assert_eq!(base.select(true, 1.0, 2.0), 1.0);
        assert_eq!(opt.select(false, 1.0, 2.0), 2.0);
        assert!(base.labels_equal("yes", "yes"));
        assert!(!opt.labels_equal("yes", "no"));
    }

    #[test]
    fn report_building_matches_but_costs_differ() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        let parts = ["J48 ", "pruned tree", ": 42 leaves"];
        assert_eq!(base.build_report(&parts), opt.build_report(&parts));
        assert!(joules(&base) > joules(&opt) * 2.0);
    }

    #[test]
    fn kernel_is_shareable_across_threads() {
        // Clones move into workers; each drop-flushes its scoreboard
        // into its own stripe, so the shared counter sees every op.
        let k = Kernel::new(EfficiencyProfile::optimized());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let k = k.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        k.add(1.0, 2.0);
                    }
                });
            }
        });
        let snap = k.counter().snapshot();
        assert_eq!(snap.get(OpCategory::FloatAlu), 4000);
    }

    #[test]
    fn dropping_an_unflushed_kernel_never_loses_counts() {
        let k = Kernel::new(EfficiencyProfile::baseline());
        let counter = k.counter();
        let clone = k.clone();
        clone.add(1.0, 2.0);
        clone.mul(2.0, 3.0);
        k.bump_counters(5);
        // Nothing flushed yet: the shared counter is still empty.
        assert_eq!(counter.snapshot().total_ops(), 0);
        drop(clone);
        assert_eq!(counter.snapshot().get(OpCategory::DoubleAlu), 1);
        assert_eq!(counter.snapshot().get(OpCategory::DoubleMul), 1);
        drop(k);
        assert_eq!(counter.snapshot().get(OpCategory::StaticAccess), 5);
    }

    #[test]
    fn snapshot_flushes_the_local_scoreboard() {
        let k = Kernel::new(EfficiencyProfile::baseline());
        k.add(1.0, 2.0);
        k.charge(OpCategory::Call, 3);
        // Direct counter read misses unflushed scoreboard work…
        assert_eq!(k.counter().snapshot().total_ops(), 0);
        // …but the kernel-level snapshot flushes first.
        let snap = k.snapshot();
        assert_eq!(snap.get(OpCategory::DoubleAlu), 1);
        assert_eq!(snap.get(OpCategory::Call), 3);
        // take_snapshot drains.
        assert_eq!(k.take_snapshot().total_ops(), 4);
        assert_eq!(k.snapshot().total_ops(), 0);
    }

    #[test]
    fn ln_and_exp_follow_the_precision_profile() {
        let base = Kernel::new(EfficiencyProfile::baseline());
        let opt = Kernel::new(EfficiencyProfile::optimized());
        base.ln(2.0);
        base.exp(1.0);
        opt.ln(2.0);
        opt.exp(1.0);
        let bs = base.snapshot();
        let os = opt.snapshot();
        assert_eq!(bs.get(OpCategory::DoubleDiv), 2);
        assert_eq!(bs.get(OpCategory::FloatDiv), 0);
        assert_eq!(os.get(OpCategory::FloatDiv), 2);
        assert_eq!(os.get(OpCategory::DoubleDiv), 0);
    }
}
