//! RandomForest — bagging over RandomTrees.
//!
//! "RandomForest uses bagging on ensemble of random trees" (§VIII).
//! Trees are built in parallel on the jepo-pool scoped worker pool
//! (the ensemble is embarrassingly parallel); each worker charges a
//! per-tree kernel whose local scoreboard flushes into its own stripe
//! of the shared counter, so concurrent accounting is lossless *and*
//! contention-free.

use super::random_tree::RandomTree;
use super::Classifier;
use crate::data::Dataset;
use crate::ops::Kernel;
use crate::MlError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bagged ensemble of random trees.
pub struct RandomForest {
    kernel: Kernel,
    seed: u64,
    /// Number of trees (WEKA `-I`, default 100).
    pub n_trees: usize,
    /// Build trees in parallel.
    pub parallel: bool,
    trees: Vec<RandomTree>,
}

impl RandomForest {
    /// Defaults.
    pub fn new(seed: u64) -> RandomForest {
        RandomForest::with_kernel(Kernel::silent(), seed)
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel, seed: u64) -> RandomForest {
        RandomForest {
            kernel,
            seed,
            n_trees: 30,
            parallel: true,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    fn bootstrap(&self, data: &Dataset, rng: &mut StdRng) -> Dataset {
        let n = data.len();
        let mut out = Dataset {
            relation: data.relation.clone(),
            attributes: data.attributes.clone(),
            class_index: data.class_index,
            instances: Vec::with_capacity(n),
        };
        let mut buf = Vec::new();
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            // The bagging copy: the hot allocation/copy path JEPO's
            // arrays-copy suggestion hits in WEKA's Bagging.
            self.kernel.copy(&data.instances[i], &mut buf);
            out.instances.push(buf.clone());
        }
        // Bagging's shared bookkeeping (out-of-bag bitmap, the static
        // progress counter the baseline code keeps) is touched per
        // resampling block, not per draw.
        self.kernel.bump_counters(n as u64 / 6);
        out
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        let samples: Vec<(Dataset, u64)> = {
            let mut rng = StdRng::seed_from_u64(self.seed);
            (0..self.n_trees)
                .map(|t| (self.bootstrap(data, &mut rng), self.seed ^ (t as u64) << 17))
                .collect()
        };
        // A scoreboard-carrying Kernel is !Sync, so workers cannot share
        // `&self.kernel`; each build constructs its own kernel around
        // the shared striped counter instead (counts are exact sums, so
        // the split changes nothing in the totals).
        let profile = self.kernel.profile();
        let counter = self.kernel.counter();
        let build = move |(sample, tree_seed): &(Dataset, u64)| -> Result<RandomTree, MlError> {
            let kernel = Kernel::with_counter(profile, counter.clone());
            let mut tree = RandomTree::with_kernel(kernel.clone(), *tree_seed);
            tree.fit(sample)?;
            let leaves = tree.leaves().to_string();
            let _ = kernel.build_report(&["RandomTree: ", &leaves, " leaves\n"]);
            Ok(tree)
        };
        self.trees = if self.parallel {
            jepo_pool::try_parallel_map(&samples, 0, |_, s| build(s))?
        } else {
            samples.iter().map(build).collect::<Result<Vec<_>, _>>()?
        };
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        // Average distributions (WEKA's probability voting).
        let mut votes: Vec<f64> = Vec::new();
        for t in &self.trees {
            let d = t.distribution(row);
            if votes.is_empty() {
                votes = d;
            } else {
                for (v, x) in votes.iter_mut().zip(d) {
                    *v += x;
                }
            }
        }
        super::tree_util::majority(&votes)
    }

    fn name(&self) -> &'static str {
        "Random Forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::eval::crossval::stratified_cross_validate;

    #[test]
    fn forest_beats_single_tree_on_noisy_data() {
        let data = AirlinesGenerator::new(13).generate(600);
        let forest_eval = stratified_cross_validate(&data, 4, 5, || {
            let mut f = RandomForest::new(1);
            f.n_trees = 15;
            f
        });
        let tree_eval = stratified_cross_validate(&data, 4, 5, || RandomTree::new(1));
        assert!(
            forest_eval.accuracy() + 0.02 >= tree_eval.accuracy(),
            "forest {:.3} vs tree {:.3}",
            forest_eval.accuracy(),
            tree_eval.accuracy()
        );
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let data = AirlinesGenerator::new(17).generate(300);
        let mut par = RandomForest::new(7);
        par.n_trees = 8;
        par.parallel = true;
        par.fit(&data).unwrap();
        let mut seq = RandomForest::new(7);
        seq.n_trees = 8;
        seq.parallel = false;
        seq.fit(&data).unwrap();
        for row in data.instances.iter().take(50) {
            assert_eq!(par.predict(row), seq.predict(row));
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let data = AirlinesGenerator::new(17).generate(120);
        let mut f = RandomForest::new(3);
        f.n_trees = 5;
        f.fit(&data).unwrap();
        assert_eq!(f.tree_count(), 5);
    }

    #[test]
    fn bagging_charges_copies_to_the_kernel() {
        use jepo_rapl::OpCategory;
        let kernel = Kernel::new(crate::EfficiencyProfile::baseline());
        let data = AirlinesGenerator::new(17).generate(100);
        let mut f = RandomForest::with_kernel(kernel.clone(), 3);
        f.n_trees = 3;
        f.fit(&data).unwrap();
        // Trees keep their kernels until the forest drops; drop it so
        // every scoreboard flushes before reading the shared counter.
        drop(f);
        let snap = kernel.snapshot();
        assert!(
            snap.get(OpCategory::ArrayCopyElem) >= 300,
            "manual copies counted"
        );
        assert!(snap.get(OpCategory::StaticAccess) > 0);
        assert!(snap.get(OpCategory::StringConcat) > 0);
    }
}
