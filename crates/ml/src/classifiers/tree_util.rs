//! Shared decision-tree machinery: entropy, split search, tree nodes.
//!
//! J48, RandomTree, RandomForest and REPTree all build on these
//! primitives; their differences (attribute subsets, split criteria,
//! pruning) live in their own modules, as in WEKA.

use crate::data::{AttributeKind, Dataset};
use crate::ops::Kernel;

/// A fitted tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Leaf with a class distribution.
    Leaf {
        /// Predicted class index.
        class: f64,
        /// Class counts seen during training (pruning statistics).
        dist: Vec<f64>,
    },
    /// Binary split on a numeric attribute (`<= threshold` goes left).
    Numeric {
        /// Attribute index.
        attr: usize,
        /// Split threshold.
        threshold: f64,
        /// `<=` branch.
        left: Box<Node>,
        /// `>` branch.
        right: Box<Node>,
        /// Training distribution (for pruning to a leaf).
        dist: Vec<f64>,
    },
    /// Multiway split on a nominal attribute (one child per label).
    Nominal {
        /// Attribute index.
        attr: usize,
        /// One child per label value.
        children: Vec<Node>,
        /// Fallback class for unseen/missing values.
        default: f64,
        /// Training distribution.
        dist: Vec<f64>,
    },
}

impl Node {
    /// Classify one row.
    pub fn classify(&self, row: &[f64]) -> f64 {
        match self {
            Node::Leaf { class, .. } => *class,
            Node::Numeric {
                attr,
                threshold,
                left,
                right,
                dist,
            } => {
                let v = row[*attr];
                if v.is_nan() {
                    return majority(dist);
                }
                if v <= *threshold {
                    left.classify(row)
                } else {
                    right.classify(row)
                }
            }
            Node::Nominal {
                attr,
                children,
                default,
                ..
            } => {
                let v = row[*attr];
                if v.is_nan() {
                    return *default;
                }
                match children.get(v as usize) {
                    Some(child) => child.classify(row),
                    None => *default,
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Numeric { left, right, .. } => left.leaves() + right.leaves(),
            Node::Nominal { children, .. } => children.iter().map(Node::leaves).sum(),
        }
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Numeric { left, right, .. } => 1 + left.depth().max(right.depth()),
            Node::Nominal { children, .. } => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
        }
    }

    /// The training class distribution stored at this node.
    pub fn dist(&self) -> &[f64] {
        match self {
            Node::Leaf { dist, .. } => dist,
            Node::Numeric { dist, .. } => dist,
            Node::Nominal { dist, .. } => dist,
        }
    }
}

/// Majority index of a distribution.
pub fn majority(dist: &[f64]) -> f64 {
    dist.iter()
        .enumerate()
        // `total_cmp`: a NaN count (poisoned weight) picks one class
        // deterministically instead of whichever the scan saw last.
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i as f64)
        .unwrap_or(0.0)
}

/// Class distribution of a dataset (float counts — C4.5 uses fractional
/// weights for missing values).
pub fn class_distribution(data: &Dataset) -> Vec<f64> {
    let mut dist = vec![0.0; data.num_classes()];
    for i in 0..data.len() {
        let c = data.class_of(i) as usize;
        if c < dist.len() {
            dist[c] += 1.0;
        }
    }
    dist
}

/// Shannon entropy of a count vector, in bits, through the kernel
/// (quantized so f32 profiles can flip near-tie split decisions).
pub fn entropy(counts: &[f64], kernel: &Kernel) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // The xlogx core is WEKA's `Utils` library code — identical on both
    // profiles; only the quantization (double → float demotion) shows,
    // which is exactly the accuracy-drop mechanism of Table IV.
    kernel.raw_flops(2 * counts.len() as u64, 2 * counts.len() as u64);
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = kernel.quantize(c / total);
            h -= p * (p.ln() / std::f64::consts::LN_2);
        }
    }
    kernel.quantize(h)
}

/// A candidate split found by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Attribute index.
    pub attr: usize,
    /// Numeric threshold (`None` for nominal multiway).
    pub threshold: Option<f64>,
    /// Information gain in bits.
    pub gain: f64,
    /// C4.5 gain ratio (gain / split info).
    pub gain_ratio: f64,
}

/// Evaluate the best split on one attribute. Charges an attribute scan
/// to the kernel — this is the loop JEPO's array-traversal finding
/// targets in WEKA.
pub fn evaluate_attribute(data: &Dataset, attr: usize, kernel: &Kernel) -> Option<Split> {
    let row_bytes = data.num_attributes() * 8;
    kernel.charge_attribute_scan(data.len(), row_bytes);
    let parent = entropy(&class_distribution(data), kernel);
    match &data.attributes[attr].kind {
        AttributeKind::Nominal(labels) => {
            let mut dists = vec![vec![0.0; data.num_classes()]; labels.len()];
            let mut counts = vec![0.0; labels.len()];
            for row in &data.instances {
                let v = row[attr];
                if v.is_nan() {
                    continue;
                }
                let v = v as usize;
                if v < labels.len() {
                    dists[v][row[data.class_index] as usize] += 1.0;
                    counts[v] += 1.0;
                }
            }
            let total: f64 = counts.iter().sum();
            if total <= 0.0 {
                return None;
            }
            let mut child_h = 0.0;
            let mut split_info = 0.0;
            for (d, &n) in dists.iter().zip(&counts) {
                if n > 0.0 {
                    let w = n / total;
                    child_h += w * entropy(d, kernel);
                    split_info -= w * (w.ln() / std::f64::consts::LN_2);
                }
            }
            let gain = kernel.quantize(parent - child_h);
            if gain <= 1e-10 {
                return None;
            }
            let gain_ratio = if split_info > 1e-10 {
                kernel.quantize(gain / split_info)
            } else {
                gain
            };
            Some(Split {
                attr,
                threshold: None,
                gain,
                gain_ratio,
            })
        }
        AttributeKind::Numeric => {
            // Sort values; test midpoints between class-changing values.
            let mut pairs: Vec<(f64, usize)> = data
                .instances
                .iter()
                .filter(|r| !r[attr].is_nan())
                .map(|r| (r[attr], r[data.class_index] as usize))
                .collect();
            if pairs.len() < 2 {
                return None;
            }
            kernel.charge_sort(pairs.len());
            // NaNs are filtered above; `total_cmp` keeps the sort a
            // total order regardless (and pins `-0.0 < 0.0`).
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let k = data.num_classes();
            let total_dist = {
                let mut d = vec![0.0; k];
                for &(_, c) in &pairs {
                    d[c] += 1.0;
                }
                d
            };
            let mut left = vec![0.0; k];
            let mut right = total_dist.clone();
            let n = pairs.len() as f64;
            let mut best: Option<(f64, f64, f64)> = None; // (threshold, gain, split_info)
            for w in 0..pairs.len() - 1 {
                let (v, c) = pairs[w];
                left[c] += 1.0;
                right[c] -= 1.0;
                let next_v = pairs[w + 1].0;
                if next_v <= v {
                    continue; // same value: not a valid cut point
                }
                let nl = (w + 1) as f64;
                let nr = n - nl;
                let child_h =
                    (nl / n) * entropy(&left, kernel) + (nr / n) * entropy(&right, kernel);
                let gain = kernel.quantize(parent - child_h);
                let wl = nl / n;
                let wr = nr / n;
                let split_info = -(wl * (wl.ln() / std::f64::consts::LN_2)
                    + wr * (wr.ln() / std::f64::consts::LN_2));
                let threshold = (v + next_v) / 2.0;
                if best.map(|(_, g, _)| gain > g).unwrap_or(gain > 1e-10) {
                    best = Some((threshold, gain, split_info));
                }
            }
            best.map(|(threshold, gain, split_info)| Split {
                attr,
                threshold: Some(threshold),
                gain,
                gain_ratio: if split_info > 1e-10 {
                    kernel.quantize(gain / split_info)
                } else {
                    gain
                },
            })
        }
    }
}

/// Partition a dataset by a split.
pub fn apply_split(data: &Dataset, split: &Split) -> Vec<Dataset> {
    match split.threshold {
        Some(t) => {
            let (le, gt) = data.partition(|i| {
                data.instances[i][split.attr] <= t || data.instances[i][split.attr].is_nan()
            });
            vec![le, gt]
        }
        None => {
            let labels = data.attributes[split.attr].cardinality();
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); labels];
            for i in 0..data.len() {
                let v = data.instances[i][split.attr];
                if !v.is_nan() && (v as usize) < labels {
                    groups[v as usize].push(i);
                }
            }
            groups.into_iter().map(|g| data.subset(&g)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Attribute;
    use crate::Kernel;

    fn xor_ish() -> Dataset {
        // x <= 5 → class 0; x > 5 → class 1 (clean numeric split at 5.5).
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x"),
                Attribute::nominal("c", &["a", "b"]),
                Attribute::binary("y"),
            ],
        );
        for i in 0..10 {
            let y = if i > 5 { 1.0 } else { 0.0 };
            d.push(vec![i as f64, (i % 2) as f64, y]).unwrap();
        }
        d
    }

    #[test]
    fn entropy_bounds() {
        let k = Kernel::silent();
        assert_eq!(entropy(&[10.0, 0.0], &k), 0.0);
        assert!((entropy(&[5.0, 5.0], &k) - 1.0).abs() < 1e-6);
        assert_eq!(entropy(&[], &k), 0.0);
        let h3 = entropy(&[1.0, 1.0, 1.0], &k);
        assert!((h3 - 3f64.log2()).abs() < 1e-6);
    }

    #[test]
    fn numeric_split_finds_clean_boundary() {
        let d = xor_ish();
        let s = evaluate_attribute(&d, 0, &Kernel::silent()).unwrap();
        assert_eq!(s.attr, 0);
        let t = s.threshold.unwrap();
        assert!(t > 5.0 && t < 7.0, "threshold {t}");
        assert!(s.gain > 0.9, "gain {}", s.gain);
    }

    #[test]
    fn uninformative_nominal_has_no_split() {
        let d = xor_ish();
        // attr 1 alternates with parity — uncorrelated with y>5 label…
        // actually parity vs >5: i=6,8 even-class1, i=7,9 odd-class1 → gain ~0.
        let s = evaluate_attribute(&d, 1, &Kernel::silent());
        if let Some(s) = s {
            assert!(s.gain < 0.1, "gain {}", s.gain);
        }
    }

    #[test]
    fn apply_split_partitions_consistently() {
        let d = xor_ish();
        let s = evaluate_attribute(&d, 0, &Kernel::silent()).unwrap();
        let parts = apply_split(&d, &s);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len() + parts[1].len(), d.len());
        // Left pure class 0, right pure class 1.
        assert!(parts[0].instances.iter().all(|r| r[2] == 0.0));
        assert!(parts[1].instances.iter().all(|r| r[2] == 1.0));
    }

    #[test]
    fn node_classify_and_stats() {
        let leaf0 = Node::Leaf {
            class: 0.0,
            dist: vec![3.0, 0.0],
        };
        let leaf1 = Node::Leaf {
            class: 1.0,
            dist: vec![0.0, 4.0],
        };
        let tree = Node::Numeric {
            attr: 0,
            threshold: 5.5,
            left: Box::new(leaf0),
            right: Box::new(leaf1),
            dist: vec![3.0, 4.0],
        };
        assert_eq!(tree.classify(&[2.0, 0.0, 0.0]), 0.0);
        assert_eq!(tree.classify(&[9.0, 0.0, 0.0]), 1.0);
        assert_eq!(
            tree.classify(&[f64::NAN, 0.0, 0.0]),
            1.0,
            "missing → majority"
        );
        assert_eq!(tree.leaves(), 2);
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn majority_handles_ties_and_empty() {
        assert_eq!(majority(&[1.0, 5.0, 2.0]), 1.0);
        assert_eq!(majority(&[]), 0.0);
    }

    #[test]
    fn majority_with_nan_count_is_deterministic() {
        // A poisoned (NaN) weight sorts above every finite count under
        // `total_cmp`, so the picked class is fixed by position, not by
        // scan order.
        assert_eq!(majority(&[1.0, f64::NAN, 2.0]), 1.0);
        assert_eq!(majority(&[f64::NAN, 5.0]), 0.0);
        assert_eq!(majority(&[5.0, f64::NAN]), 1.0);
    }

    #[test]
    fn split_winner_is_input_order_independent_with_nan_gain() {
        // The same selection expression the tree builders use: a NaN
        // gain (degenerate entropy arithmetic) must not make the
        // winning attribute depend on candidate scan order.
        let mk = |attr, gain| Split {
            attr,
            threshold: None,
            gain,
            gain_ratio: gain,
        };
        let splits = [mk(0, 0.3), mk(1, f64::NAN), mk(2, 0.7)];
        let fwd = splits
            .iter()
            .max_by(|a, b| a.gain.total_cmp(&b.gain))
            .unwrap()
            .attr;
        let rev = splits
            .iter()
            .rev()
            .max_by(|a, b| a.gain.total_cmp(&b.gain))
            .unwrap()
            .attr;
        assert_eq!(fwd, rev, "winner must not depend on scan order");
        assert_eq!(
            fwd, 1,
            "NaN sorts above all finite gains — surfaced, not hidden"
        );
    }
}
