//! J48 — WEKA's implementation of C4.5 (Quinlan).
//!
//! Gain-ratio split selection over all attributes, multiway nominal
//! splits, binary numeric splits, and C4.5's pessimistic-error pruning
//! (subtree replacement at confidence factor 0.25).

use super::tree_util::{apply_split, class_distribution, evaluate_attribute, majority, Node};
use super::Classifier;
use crate::data::Dataset;
use crate::ops::Kernel;
use crate::MlError;

/// C4.5 decision tree.
pub struct J48 {
    kernel: Kernel,
    /// Minimum instances per leaf (WEKA `-M`, default 2).
    pub min_instances: usize,
    /// Pruning confidence factor (WEKA `-C`, default 0.25).
    pub confidence: f64,
    /// Enable pruning (WEKA default on).
    pub prune: bool,
    root: Option<Node>,
}

impl J48 {
    /// Default configuration (WEKA defaults).
    pub fn new() -> J48 {
        J48::with_kernel(Kernel::silent())
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel) -> J48 {
        J48 {
            kernel,
            min_instances: 2,
            confidence: 0.25,
            prune: true,
            root: None,
        }
    }

    /// Leaves of the fitted tree (0 before fit).
    pub fn leaves(&self) -> usize {
        self.root.as_ref().map(Node::leaves).unwrap_or(0)
    }

    fn build(&self, data: &Dataset, depth: usize) -> Node {
        let dist = class_distribution(data);
        let n: f64 = dist.iter().sum();
        let pure = dist.iter().filter(|&&c| c > 0.0).count() <= 1;
        if pure || n <= self.min_instances as f64 || depth > 40 {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        }
        // Gain ratio over all attributes, with C4.5's guard: only
        // consider splits with at least average gain.
        let splits: Vec<_> = data
            .feature_indices()
            .into_iter()
            .filter_map(|a| evaluate_attribute(data, a, &self.kernel))
            .collect();
        if splits.is_empty() {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        }
        let avg_gain = splits.iter().map(|s| s.gain).sum::<f64>() / splits.len() as f64;
        let best = splits
            .iter()
            .filter(|s| s.gain >= avg_gain - 1e-12)
            // `total_cmp`: a NaN gain ratio (degenerate split-info)
            // must not make the winner depend on candidate order.
            .max_by(|a, b| a.gain_ratio.total_cmp(&b.gain_ratio));
        let Some(best) = best else {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        };
        let parts = apply_split(data, best);
        // Refuse degenerate splits.
        let nonempty = parts.iter().filter(|p| !p.is_empty()).count();
        if nonempty < 2 {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        }
        self.kernel.bump_counters(1);
        match best.threshold {
            Some(threshold) => Node::Numeric {
                attr: best.attr,
                threshold,
                left: Box::new(self.build(&parts[0], depth + 1)),
                right: Box::new(self.build(&parts[1], depth + 1)),
                dist,
            },
            None => {
                let default = majority(&dist);
                let children = parts
                    .iter()
                    .map(|p| {
                        if p.is_empty() {
                            Node::Leaf {
                                class: default,
                                dist: vec![0.0; data.num_classes()],
                            }
                        } else {
                            self.build(p, depth + 1)
                        }
                    })
                    .collect();
                Node::Nominal {
                    attr: best.attr,
                    children,
                    default,
                    dist,
                }
            }
        }
    }

    /// C4.5 pessimistic error estimate: observed errors plus a
    /// confidence-scaled continuity correction (the standard upper
    /// confidence bound approximation).
    fn pessimistic_errors(&self, dist: &[f64]) -> f64 {
        let n: f64 = dist.iter().sum();
        if n == 0.0 {
            return 0.0;
        }
        let errors = n - dist.iter().fold(0.0f64, |a, &b| a.max(b));
        // Normal-approximation upper bound with z from the confidence.
        let z = normal_quantile(1.0 - self.confidence);
        let f = errors / n;
        let bound = (f
            + z * z / (2.0 * n)
            + z * ((f / n - f * f / n + z * z / (4.0 * n * n)).max(0.0)).sqrt())
            / (1.0 + z * z / n);
        bound * n
    }

    /// Bottom-up subtree replacement: replace a subtree by a leaf when
    /// the leaf's pessimistic error is no worse.
    fn prune_node(&self, node: Node) -> Node {
        match node {
            Node::Numeric {
                attr,
                threshold,
                left,
                right,
                dist,
            } => {
                let left = self.prune_node(*left);
                let right = self.prune_node(*right);
                let subtree_err = self.subtree_errors(&left) + self.subtree_errors(&right);
                let leaf_err = self.pessimistic_errors(&dist);
                if leaf_err <= subtree_err + 0.1 {
                    Node::Leaf {
                        class: majority(&dist),
                        dist,
                    }
                } else {
                    Node::Numeric {
                        attr,
                        threshold,
                        left: Box::new(left),
                        right: Box::new(right),
                        dist,
                    }
                }
            }
            Node::Nominal {
                attr,
                children,
                default,
                dist,
            } => {
                let children: Vec<Node> =
                    children.into_iter().map(|c| self.prune_node(c)).collect();
                let subtree_err: f64 = children.iter().map(|c| self.subtree_errors(c)).sum();
                let leaf_err = self.pessimistic_errors(&dist);
                if leaf_err <= subtree_err + 0.1 {
                    Node::Leaf {
                        class: majority(&dist),
                        dist,
                    }
                } else {
                    Node::Nominal {
                        attr,
                        children,
                        default,
                        dist,
                    }
                }
            }
            leaf => leaf,
        }
    }

    fn subtree_errors(&self, node: &Node) -> f64 {
        match node {
            Node::Leaf { dist, .. } => self.pessimistic_errors(dist),
            Node::Numeric { left, right, .. } => {
                self.subtree_errors(left) + self.subtree_errors(right)
            }
            Node::Nominal { children, .. } => children.iter().map(|c| self.subtree_errors(c)).sum(),
        }
    }
}

/// Inverse standard-normal CDF (Acklam-style rational approximation,
/// good to ~1e-7 — ample for pruning bounds).
pub fn normal_quantile(p: f64) -> f64 {
    if p <= 0.0 {
        return -8.0;
    }
    if p >= 1.0 {
        return 8.0;
    }
    // Beasley–Springer–Moro.
    let a = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    let b = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    let c = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    let d = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    }
}

impl Default for J48 {
    fn default() -> Self {
        J48::new()
    }
}

impl Classifier for J48 {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        let tree = self.build(data, 0);
        let tree = if self.prune {
            self.prune_node(tree)
        } else {
            tree
        };
        // Model report (WEKA prints the tree; JEPO's string suggestions
        // target exactly this path).
        let leaves = tree.leaves().to_string();
        let _ = self
            .kernel
            .build_report(&["J48 pruned tree: ", &leaves, " leaves"]);
        self.root = Some(tree);
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.root.as_ref().map(|r| r.classify(row)).unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "J48"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    #[test]
    fn learns_a_clean_numeric_rule() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        for i in 0..60 {
            d.push(vec![i as f64, if i < 30 { 0.0 } else { 1.0 }])
                .unwrap();
        }
        let mut c = J48::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[3.0, 0.0]), 0.0);
        assert_eq!(c.predict(&[55.0, 0.0]), 1.0);
        assert!(
            c.leaves() <= 4,
            "clean rule should stay tiny: {}",
            c.leaves()
        );
    }

    #[test]
    fn learns_a_nominal_rule() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::nominal("k", &["a", "b", "c"]),
                Attribute::binary("y"),
            ],
        );
        for i in 0..90 {
            let k = (i % 3) as f64;
            let y = if k == 1.0 { 1.0 } else { 0.0 };
            d.push(vec![k, y]).unwrap();
        }
        let mut c = J48::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[0.0, 0.0]), 0.0);
        assert_eq!(c.predict(&[1.0, 0.0]), 1.0);
        assert_eq!(c.predict(&[2.0, 0.0]), 0.0);
    }

    #[test]
    fn pruning_shrinks_noisy_trees() {
        let data = AirlinesGenerator::new(21).generate(600);
        let mut pruned = J48::new();
        pruned.fit(&data).unwrap();
        let mut unpruned = J48::new();
        unpruned.prune = false;
        unpruned.fit(&data).unwrap();
        assert!(
            pruned.leaves() <= unpruned.leaves(),
            "pruned {} vs unpruned {}",
            pruned.leaves(),
            unpruned.leaves()
        );
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        assert!(J48::new().fit(&d).is_err());
    }

    #[test]
    fn normal_quantile_sane() {
        assert!((normal_quantile(0.5)).abs() < 1e-6);
        assert!((normal_quantile(0.75) - 0.6745).abs() < 1e-3);
        assert!(normal_quantile(0.975) > 1.9 && normal_quantile(0.975) < 2.0);
        assert!(normal_quantile(0.0) < -7.0 && normal_quantile(1.0) > 7.0);
    }

    #[test]
    fn missing_values_fall_back_to_majority() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        for i in 0..40 {
            d.push(vec![i as f64, if i < 10 { 0.0 } else { 1.0 }])
                .unwrap();
        }
        let mut c = J48::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[f64::NAN, 0.0]), 1.0, "majority is class 1");
    }
}
