//! IBk — k-nearest-neighbour classifier.
//!
//! "IBk implements a k-nearest-neighbour classifier" (§VIII, Aha's
//! instance-based learning). Distance is WEKA's mixed Euclidean:
//! min-max-normalized numerics, 0/1 mismatch on nominals; ties are
//! broken by the closer neighbour.

use super::Classifier;
use crate::data::{AttributeKind, Dataset};
use crate::ops::Kernel;
use crate::MlError;

/// k-NN with linear search (WEKA's default `LinearNNSearch`).
pub struct IBk {
    kernel: Kernel,
    /// Number of neighbours (WEKA `-K`, default 1; the paper's table
    /// lists IBk separately from KStar so we keep WEKA's default).
    pub k: usize,
    /// Distance-weighted voting (WEKA `-I`).
    pub distance_weighting: bool,
    train: Vec<(Vec<f64>, f64)>, // (normalized features, class)
    norms: Vec<(f64, f64)>,      // per-feature (min, range)
    feats: Vec<usize>,
    nominal: Vec<bool>,
    num_classes: usize,
}

impl IBk {
    /// Defaults (k=1).
    pub fn new() -> IBk {
        IBk::with_kernel(Kernel::silent())
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel) -> IBk {
        IBk {
            kernel,
            k: 3,
            distance_weighting: false,
            train: Vec::new(),
            norms: Vec::new(),
            feats: Vec::new(),
            nominal: Vec::new(),
            num_classes: 0,
        }
    }

    fn normalize(&self, row: &[f64]) -> Vec<f64> {
        self.feats
            .iter()
            .enumerate()
            .map(|(k, &f)| {
                let v = row.get(f).copied().unwrap_or(f64::NAN);
                if self.nominal[k] || v.is_nan() {
                    v
                } else {
                    let (min, range) = self.norms[k];
                    (v - min) / range
                }
            })
            .collect()
    }

    /// Mixed-type distance between normalized feature vectors.
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        // Per-neighbour neutral overhead: the search's heap bookkeeping
        // and `Instance` accessor calls.
        self.kernel.charge(jepo_rapl::OpCategory::Call, 4);
        self.kernel.charge(jepo_rapl::OpCategory::Load, 10);
        // Numeric dims go through the counted squared-distance; nominal
        // dims contribute 0/1 via counted label-style comparison.
        let mut d = 0.0;
        let mut num_a = Vec::with_capacity(a.len());
        let mut num_b = Vec::with_capacity(a.len());
        for k in 0..a.len() {
            if self.nominal[k] {
                let (x, y) = (a[k], b[k]);
                if x.is_nan() || y.is_nan() {
                    d += 1.0;
                } else {
                    d += self.kernel.select(x == y, 0.0, 1.0);
                }
            } else if a[k].is_nan() || b[k].is_nan() {
                d += 1.0;
            } else {
                num_a.push(a[k]);
                num_b.push(b[k]);
            }
        }
        d + self.kernel.squared_distance(&num_a, &num_b)
    }
}

impl Default for IBk {
    fn default() -> Self {
        IBk::new()
    }
}

impl Classifier for IBk {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        self.feats = data.feature_indices();
        self.nominal = self
            .feats
            .iter()
            .map(|&f| matches!(data.attributes[f].kind, AttributeKind::Nominal(_)))
            .collect();
        self.norms = self
            .feats
            .iter()
            .map(|&f| {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for r in &data.instances {
                    let v = r[f];
                    if !v.is_nan() {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                if !min.is_finite() {
                    (0.0, 1.0)
                } else {
                    (min, (max - min).max(1e-12))
                }
            })
            .collect();
        self.num_classes = data.num_classes();
        self.train = data
            .instances
            .iter()
            .map(|r| (self.normalize(r), r[data.class_index]))
            .collect();
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        if self.train.is_empty() {
            return 0.0;
        }
        let q = self.normalize(row);
        self.kernel.bump_counters(1);
        // Linear scan, keeping the k best.
        let mut best: Vec<(f64, f64)> = Vec::with_capacity(self.k + 1); // (dist, class)
        for (x, c) in &self.train {
            let d = self.distance(&q, x);
            let pos = best.partition_point(|&(bd, _)| bd < d);
            if pos < self.k {
                best.insert(pos, (d, *c));
                best.truncate(self.k);
            }
        }
        let mut votes = vec![0.0; self.num_classes];
        for &(d, c) in &best {
            let w = if self.distance_weighting {
                1.0 / (d + 1e-6)
            } else {
                1.0
            };
            votes[c as usize] += w;
        }
        super::tree_util::majority(&votes)
    }

    fn name(&self) -> &'static str {
        "IBk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Attribute;

    fn blobs() -> Dataset {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x"),
                Attribute::numeric("y"),
                Attribute::binary("c"),
            ],
        );
        for i in 0..30 {
            let j = (i % 6) as f64 * 0.1;
            d.push(vec![0.0 + j, 0.0 + j, 0.0]).unwrap();
            d.push(vec![5.0 + j, 5.0 + j, 1.0]).unwrap();
        }
        d
    }

    #[test]
    fn nearest_blob_wins() {
        let mut c = IBk::new();
        c.fit(&blobs()).unwrap();
        assert_eq!(c.predict(&[0.2, 0.1, 0.0]), 0.0);
        assert_eq!(c.predict(&[5.2, 5.3, 0.0]), 1.0);
    }

    #[test]
    fn k1_memorizes_training_data() {
        let d = blobs();
        let mut c = IBk::new();
        c.k = 1;
        c.fit(&d).unwrap();
        for r in &d.instances {
            assert_eq!(c.predict(r), r[2]);
        }
    }

    #[test]
    fn nominal_mismatch_contributes_distance() {
        let mut d = Dataset::new(
            "t",
            vec![Attribute::nominal("k", &["a", "b"]), Attribute::binary("y")],
        );
        for _ in 0..10 {
            d.push(vec![0.0, 0.0]).unwrap();
            d.push(vec![1.0, 1.0]).unwrap();
        }
        let mut c = IBk::new();
        c.k = 3;
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[0.0, 0.0]), 0.0);
        assert_eq!(c.predict(&[1.0, 0.0]), 1.0);
    }

    #[test]
    fn distance_weighting_prefers_close_votes() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        // Two far 1s, one near 0: k=3 unweighted votes 1, weighted votes 0.
        d.push(vec![0.0, 0.0]).unwrap();
        d.push(vec![10.0, 1.0]).unwrap();
        d.push(vec![10.1, 1.0]).unwrap();
        let mut unweighted = IBk::new();
        unweighted.k = 3;
        unweighted.fit(&d).unwrap();
        assert_eq!(unweighted.predict(&[0.5, 0.0]), 1.0);
        let mut weighted = IBk::new();
        weighted.k = 3;
        weighted.distance_weighting = true;
        weighted.fit(&d).unwrap();
        assert_eq!(weighted.predict(&[0.5, 0.0]), 0.0);
    }

    #[test]
    fn missing_values_are_max_distance() {
        let d = blobs();
        let mut c = IBk::new();
        c.fit(&d).unwrap();
        // NaN query still classifies (to something valid).
        let p = c.predict(&[f64::NAN, 0.0, 0.0]);
        assert!(p == 0.0 || p == 1.0);
    }
}
