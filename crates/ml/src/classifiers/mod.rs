//! The ten classifiers of Table II.
//!
//! Each is a from-scratch implementation of the algorithm the paper's
//! WEKA configuration uses, routed through the [`crate::ops::Kernel`] in
//! its hot loops so the baseline/optimized efficiency profiles produce
//! the Table IV energy gap.

pub mod ibk;
pub mod j48;
pub mod kstar;
pub mod logistic;
pub mod naive_bayes;
pub mod random_forest;
pub mod random_tree;
pub mod rep_tree;
pub mod sgd;
pub mod smo;
pub mod tree_util;

use crate::data::Dataset;
use crate::MlError;

/// A trainable classifier.
pub trait Classifier {
    /// Train on a dataset (class attribute at `data.class_index`).
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError>;
    /// Predict the class index for an instance row (class slot ignored).
    fn predict(&self, row: &[f64]) -> f64;
    /// WEKA-style display name.
    fn name(&self) -> &'static str;
}

impl Classifier for Box<dyn Classifier> {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        (**self).fit(data)
    }
    fn predict(&self, row: &[f64]) -> f64 {
        (**self).predict(row)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The paper's classifier list (Table II / Table IV row order).
pub const CLASSIFIER_NAMES: [&str; 10] = [
    "J48",
    "Random Tree",
    "Random Forest",
    "REP Tree",
    "Naive Bayes",
    "Logistic",
    "SMO",
    "SGD",
    "KStar",
    "IBk",
];

/// Construct classifier number `i` (Table row order) with a kernel and
/// seed. Returns a boxed trait object.
pub fn by_name(name: &str, kernel: crate::Kernel, seed: u64) -> Option<Box<dyn Classifier>> {
    Some(match name {
        "J48" => Box::new(j48::J48::with_kernel(kernel)),
        "Random Tree" => Box::new(random_tree::RandomTree::with_kernel(kernel, seed)),
        "Random Forest" => Box::new(random_forest::RandomForest::with_kernel(kernel, seed)),
        "REP Tree" => Box::new(rep_tree::RepTree::with_kernel(kernel, seed)),
        "Naive Bayes" => Box::new(naive_bayes::NaiveBayes::with_kernel(kernel)),
        "Logistic" => Box::new(logistic::Logistic::with_kernel(kernel)),
        "SMO" => Box::new(smo::Smo::with_kernel(kernel, seed)),
        "SGD" => Box::new(sgd::Sgd::with_kernel(kernel, seed)),
        "KStar" => Box::new(kstar::KStar::with_kernel(kernel)),
        "IBk" => Box::new(ibk::IBk::with_kernel(kernel)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;

    #[test]
    fn all_ten_names_construct() {
        for name in CLASSIFIER_NAMES {
            let c = by_name(name, Kernel::silent(), 1);
            assert!(c.is_some(), "{name}");
        }
        assert!(by_name("Zero R", Kernel::silent(), 1).is_none());
    }

    #[test]
    fn every_classifier_beats_chance_on_airlines() {
        // The integration-level smoke test: each of the ten must learn
        // the planted signal better than the majority baseline degrades.
        use crate::data::airlines::AirlinesGenerator;
        use crate::eval::crossval::stratified_cross_validate;
        let data = AirlinesGenerator::new(11).generate(400);
        let counts = data.class_counts();
        let majority = counts.iter().copied().max().unwrap() as f64 / data.len() as f64;
        for name in CLASSIFIER_NAMES {
            let eval = stratified_cross_validate(&data, 4, 7, || {
                ByNameWrapper(by_name(name, Kernel::silent(), 3).unwrap())
            });
            let acc = eval.accuracy();
            assert!(
                acc > 0.5 && acc > majority - 0.12,
                "{name}: accuracy {acc:.3} vs majority {majority:.3}"
            );
        }
    }

    struct ByNameWrapper(Box<dyn Classifier>);
    impl Classifier for ByNameWrapper {
        fn fit(&mut self, d: &crate::Dataset) -> Result<(), crate::MlError> {
            self.0.fit(d)
        }
        fn predict(&self, row: &[f64]) -> f64 {
            self.0.predict(row)
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }
}
