//! KStar — instance-based classifier with an entropic distance
//! (Cleary & Trigg, 1995).
//!
//! "KStar implements a nearest-neighbor classifier with generalized
//! distance function based on transformations" (§VIII). The probability
//! of transforming instance `a` into `b` decomposes per attribute:
//! numeric attributes use an exponential kernel whose scale blends
//! between nearest-neighbour and uniform behaviour; nominal attributes
//! use the blend-parameterized stay/change model. The class score is
//! the summed transformation probability over training instances.

use super::Classifier;
use crate::data::{AttributeKind, Dataset};
use crate::ops::Kernel;
use crate::MlError;

/// KStar classifier.
pub struct KStar {
    kernel: Kernel,
    /// Global blend in `(0, 1]` (WEKA `-B 20` → 0.20).
    pub blend: f64,
    train: Vec<(Vec<f64>, f64)>,
    feats: Vec<usize>,
    kinds: Vec<Option<usize>>, // None=numeric, Some(cardinality)
    scales: Vec<f64>,          // numeric: mean absolute deviation × blend factor
    num_classes: usize,
}

impl KStar {
    /// Defaults (blend 0.2).
    pub fn new() -> KStar {
        KStar::with_kernel(Kernel::silent())
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel) -> KStar {
        KStar {
            kernel,
            blend: 0.2,
            train: Vec::new(),
            feats: Vec::new(),
            kinds: Vec::new(),
            scales: Vec::new(),
            num_classes: 0,
        }
    }

    /// Per-attribute transformation probability P*(b|a).
    fn attr_prob(&self, k: usize, a: f64, b: f64) -> f64 {
        match self.kinds[k] {
            Some(card) => {
                // Nominal stay/change model: stay with prob 1-x0,
                // change to any specific other value with x0/(card-1).
                let x0 = self.blend.min(0.999);
                if a.is_nan() || b.is_nan() {
                    1.0 / card as f64
                } else if a == b {
                    1.0 - x0
                } else {
                    x0 / (card as f64 - 1.0).max(1.0)
                }
            }
            None => {
                if a.is_nan() || b.is_nan() {
                    return 0.5;
                }
                let s = self.scales[k];
                // Exponential transformation density.
                self.kernel.exp(-self.kernel.div((a - b).abs(), s))
            }
        }
    }
}

impl Default for KStar {
    fn default() -> Self {
        KStar::new()
    }
}

impl Classifier for KStar {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        self.feats = data.feature_indices();
        self.kinds = self
            .feats
            .iter()
            .map(|&f| match &data.attributes[f].kind {
                AttributeKind::Nominal(l) => Some(l.len()),
                AttributeKind::Numeric => None,
            })
            .collect();
        // Scale = blend-scaled mean absolute deviation (the blend
        // parameter interpolates sharp→uniform, per the paper's spirit).
        self.scales = self
            .feats
            .iter()
            .map(|&f| {
                let vals: Vec<f64> = data
                    .instances
                    .iter()
                    .map(|r| r[f])
                    .filter(|v| !v.is_nan())
                    .collect();
                if vals.is_empty() {
                    return 1.0;
                }
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                let mad = vals.iter().map(|v| (v - mean).abs()).sum::<f64>() / vals.len() as f64;
                (mad * self.blend / 0.2).max(1e-9)
            })
            .collect();
        self.num_classes = data.num_classes();
        self.train = data
            .instances
            .iter()
            .map(|r| {
                let x: Vec<f64> = self.feats.iter().map(|&f| r[f]).collect();
                (x, r[data.class_index])
            })
            .collect();
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        if self.train.is_empty() {
            return 0.0;
        }
        let q: Vec<f64> = self
            .feats
            .iter()
            .map(|&f| row.get(f).copied().unwrap_or(f64::NAN))
            .collect();
        let mut scores = vec![0.0f64; self.num_classes];
        self.kernel.bump_counters(1);
        for (x, c) in &self.train {
            // Neutral per-instance overhead (accessors, loop control).
            self.kernel.charge(jepo_rapl::OpCategory::Call, 2);
            self.kernel.charge(jepo_rapl::OpCategory::Load, 6);
            // Product of per-attribute transformation probabilities.
            let mut p = 1.0;
            for k in 0..q.len() {
                p = self.kernel.mul(p, self.attr_prob(k, q[k], x[k]));
                if p < 1e-300 {
                    break;
                }
            }
            scores[*c as usize] += p;
        }
        super::tree_util::majority(&scores)
    }

    fn name(&self) -> &'static str {
        "KStar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Attribute;

    #[test]
    fn classifies_separated_blobs() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        for i in 0..20 {
            d.push(vec![i as f64 * 0.1, 0.0]).unwrap();
            d.push(vec![8.0 + i as f64 * 0.1, 1.0]).unwrap();
        }
        let mut c = KStar::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[0.5, 0.0]), 0.0);
        assert_eq!(c.predict(&[8.5, 0.0]), 1.0);
    }

    #[test]
    fn nominal_transformation_prefers_matching_values() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::nominal("k", &["a", "b", "c"]),
                Attribute::binary("y"),
            ],
        );
        for _ in 0..20 {
            d.push(vec![0.0, 0.0]).unwrap();
            d.push(vec![1.0, 1.0]).unwrap();
            d.push(vec![2.0, 1.0]).unwrap();
        }
        let mut c = KStar::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[0.0, 0.0]), 0.0);
        assert_eq!(c.predict(&[1.0, 0.0]), 1.0);
    }

    #[test]
    fn blend_controls_smoothing() {
        // With blend→1 the nominal model is near-uniform: far instances
        // still contribute, so the majority class can win everywhere.
        let mut d = Dataset::new(
            "t",
            vec![Attribute::nominal("k", &["a", "b"]), Attribute::binary("y")],
        );
        for _ in 0..5 {
            d.push(vec![0.0, 0.0]).unwrap();
        }
        for _ in 0..15 {
            d.push(vec![1.0, 1.0]).unwrap();
        }
        let mut sharp = KStar::new();
        sharp.blend = 0.05;
        sharp.fit(&d).unwrap();
        assert_eq!(
            sharp.predict(&[0.0, 0.0]),
            0.0,
            "sharp blend respects the match"
        );
        let mut smooth = KStar::new();
        smooth.blend = 0.99;
        smooth.fit(&d).unwrap();
        assert_eq!(
            smooth.predict(&[0.0, 0.0]),
            1.0,
            "uniform blend follows the majority"
        );
    }

    #[test]
    fn attr_prob_is_a_probability() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x"),
                Attribute::nominal("k", &["a", "b"]),
                Attribute::binary("y"),
            ],
        );
        for i in 0..10 {
            d.push(vec![i as f64, (i % 2) as f64, (i % 2) as f64])
                .unwrap();
        }
        let mut c = KStar::new();
        c.fit(&d).unwrap();
        for (a, b) in [(0.0, 0.0), (1.0, 5.0), (f64::NAN, 2.0)] {
            let p = c.attr_prob(0, a, b);
            assert!((0.0..=1.0).contains(&p), "numeric P = {p}");
        }
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (f64::NAN, 1.0)] {
            let p = c.attr_prob(1, a, b);
            assert!((0.0..=1.0).contains(&p), "nominal P = {p}");
        }
    }
}
