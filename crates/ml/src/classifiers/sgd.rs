//! SGD — stochastic gradient descent with hinge loss.
//!
//! "SGD is a stochastic gradient descent learning model with various
//! loss functions" (§VIII). WEKA's default is hinge loss (a linear SVM).
//! Instance visitation order uses a hash shuffle (the `%`-heavy pattern
//! JEPO's arithmetic-operator suggestion targets in the baseline), and
//! per-update progress counters hit the static-keyword path.

use super::logistic::Encoder;
use super::Classifier;
use crate::data::Dataset;
use crate::ops::Kernel;
use crate::MlError;

/// Loss functions WEKA's SGD supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Hinge (SVM) — WEKA default.
    Hinge,
    /// Log loss (logistic).
    Log,
    /// Squared loss.
    Squared,
}

/// Linear model trained by SGD.
pub struct Sgd {
    kernel: Kernel,
    seed: u64,
    /// Loss function.
    pub loss: Loss,
    /// Learning rate (WEKA `-L`, default 0.01).
    pub learning_rate: f64,
    /// Ridge term (WEKA `-R`, default 1e-4).
    pub lambda: f64,
    /// Epochs (WEKA `-E`, default 500; scaled down for the small data).
    pub epochs: usize,
    weights: Vec<f64>,
    bias: f64,
    encoder: Option<Encoder>,
}

impl Sgd {
    /// Defaults (hinge loss).
    pub fn new(seed: u64) -> Sgd {
        Sgd::with_kernel(Kernel::silent(), seed)
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel, seed: u64) -> Sgd {
        Sgd {
            kernel,
            seed,
            loss: Loss::Hinge,
            learning_rate: 0.01,
            lambda: 1e-4,
            epochs: 40,
            weights: Vec::new(),
            bias: 0.0,
            encoder: None,
        }
    }
}

impl Classifier for Sgd {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        if data.num_classes() != 2 {
            return Err(MlError::Unsupported(
                "SGD here is binary (the airlines task)".into(),
            ));
        }
        let (rows, labels, dim) = data.to_numeric();
        let n = rows.len();
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        let buckets = n.next_power_of_two();
        let mut t = 0u64;
        for epoch in 0..self.epochs {
            for step in 0..n {
                // Hash-shuffled visitation: `%`-based in the baseline
                // profile, masked after the suggestion.
                let h = (step as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(epoch as u64)
                    .wrapping_add(self.seed);
                let mut i = self.kernel.hash_bucket(h, buckets);
                if i >= n {
                    i -= n; // buckets is next_power_of_two ≥ n
                    if i >= n {
                        i %= n;
                    }
                }
                let x = &rows[i];
                let y = if labels[i] == 1.0 { 1.0 } else { -1.0 };
                t += 1;
                self.kernel.bump_counters(1);
                let eta = self.learning_rate / (1.0 + self.lambda * self.learning_rate * t as f64);
                let z = self.kernel.dot(&self.weights, x) + self.bias;
                // Shrink (ridge).
                let shrink = 1.0 - eta * self.lambda;
                for w in self.weights.iter_mut() {
                    *w *= shrink;
                }
                let dloss = match self.loss {
                    Loss::Hinge => {
                        if y * z < 1.0 {
                            -y
                        } else {
                            0.0
                        }
                    }
                    Loss::Log => {
                        let e = self.kernel.exp(-(y * z).clamp(-30.0, 30.0));
                        -y * e / (1.0 + e)
                    }
                    Loss::Squared => z - y,
                };
                if dloss != 0.0 {
                    self.kernel.axpy(-eta * dloss, x, &mut self.weights);
                    self.bias -= eta * dloss;
                }
            }
        }
        self.encoder = Some(Encoder::fit(data));
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let Some(enc) = &self.encoder else {
            return 0.0;
        };
        let x = enc.encode(row);
        let z = self.kernel.dot(&self.weights, &x) + self.bias;
        if z > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "SGD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    #[test]
    fn separates_linear_data_with_hinge() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x1"),
                Attribute::numeric("x2"),
                Attribute::binary("y"),
            ],
        );
        for i in 0..300 {
            let x1 = ((i * 13) % 41) as f64 / 20.0 - 1.0;
            let x2 = ((i * 7) % 37) as f64 / 18.0 - 1.0;
            let y = if 2.0 * x1 - x2 > 0.2 { 1.0 } else { 0.0 };
            d.push(vec![x1, x2, y]).unwrap();
        }
        let mut c = Sgd::new(3);
        c.fit(&d).unwrap();
        let correct = d.instances.iter().filter(|r| c.predict(r) == r[2]).count();
        assert!(correct as f64 / 300.0 > 0.9, "{correct}/300");
    }

    #[test]
    fn log_and_squared_losses_also_learn() {
        let data = AirlinesGenerator::new(8).generate(500);
        for loss in [Loss::Log, Loss::Squared] {
            let mut c = Sgd::new(1);
            c.loss = loss;
            c.fit(&data).unwrap();
            let correct = data
                .instances
                .iter()
                .filter(|r| c.predict(r) == r[7])
                .count();
            assert!(
                correct as f64 / data.len() as f64 > 0.55,
                "{loss:?}: {correct}/{}",
                data.len()
            );
        }
    }

    #[test]
    fn multiclass_is_rejected() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x"),
                Attribute::nominal("y", &["a", "b", "c"]),
            ],
        );
        d.push(vec![1.0, 0.0]).unwrap();
        d.push(vec![2.0, 1.0]).unwrap();
        d.push(vec![3.0, 2.0]).unwrap();
        assert!(matches!(Sgd::new(0).fit(&d), Err(MlError::Unsupported(_))));
    }

    #[test]
    fn baseline_profile_counts_modulus_and_static() {
        use jepo_rapl::OpCategory;
        let kernel = Kernel::new(crate::EfficiencyProfile::baseline());
        let data = AirlinesGenerator::new(8).generate(100);
        let mut c = Sgd::with_kernel(kernel.clone(), 1);
        c.epochs = 2;
        c.fit(&data).unwrap();
        drop(c); // flush the classifier's scoreboard
        let snap = kernel.snapshot();
        assert!(snap.get(OpCategory::Modulus) >= 200);
        assert!(snap.get(OpCategory::StaticAccess) >= 200);
    }
}
