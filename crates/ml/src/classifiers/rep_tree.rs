//! REPTree — information-gain tree with reduced-error pruning.
//!
//! "REPTree uses information gain … for constructing decision or
//! regression tree. For pruning, reduced-error pruning method is used"
//! (§VIII): a third of the training data is held out, and any subtree
//! whose replacement by a leaf does not increase held-out error is
//! collapsed.

use super::tree_util::{apply_split, class_distribution, evaluate_attribute, majority, Node};
use super::Classifier;
use crate::data::Dataset;
use crate::ops::Kernel;
use crate::MlError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Reduced-error-pruned decision tree.
pub struct RepTree {
    kernel: Kernel,
    seed: u64,
    /// Fraction of training data held out for pruning (WEKA uses
    /// `numFolds`=3 → 1/3 held out).
    pub holdout_fraction: f64,
    /// Minimum instances per split.
    pub min_instances: usize,
    root: Option<Node>,
}

impl RepTree {
    /// Defaults.
    pub fn new(seed: u64) -> RepTree {
        RepTree::with_kernel(Kernel::silent(), seed)
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel, seed: u64) -> RepTree {
        RepTree {
            kernel,
            seed,
            holdout_fraction: 1.0 / 3.0,
            min_instances: 2,
            root: None,
        }
    }

    /// Leaves of the fitted tree.
    pub fn leaves(&self) -> usize {
        self.root.as_ref().map(Node::leaves).unwrap_or(0)
    }

    fn build(&self, data: &Dataset, depth: usize) -> Node {
        let dist = class_distribution(data);
        let n: f64 = dist.iter().sum();
        let pure = dist.iter().filter(|&&c| c > 0.0).count() <= 1;
        if pure || n <= self.min_instances as f64 || depth > 40 {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        }
        // Plain information gain (not gain ratio) — the REPTree criterion.
        let best = data
            .feature_indices()
            .into_iter()
            .filter_map(|a| evaluate_attribute(data, a, &self.kernel))
            // `total_cmp`: NaN-safe, order-independent winner.
            .max_by(|a, b| a.gain.total_cmp(&b.gain));
        let Some(best) = best else {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        };
        let parts = apply_split(data, &best);
        if parts.iter().filter(|p| !p.is_empty()).count() < 2 {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        }
        match best.threshold {
            Some(threshold) => Node::Numeric {
                attr: best.attr,
                threshold,
                left: Box::new(self.build(&parts[0], depth + 1)),
                right: Box::new(self.build(&parts[1], depth + 1)),
                dist,
            },
            None => {
                let default = majority(&dist);
                let children = parts
                    .iter()
                    .map(|p| {
                        if p.is_empty() {
                            Node::Leaf {
                                class: default,
                                dist: vec![0.0; data.num_classes()],
                            }
                        } else {
                            self.build(p, depth + 1)
                        }
                    })
                    .collect();
                Node::Nominal {
                    attr: best.attr,
                    children,
                    default,
                    dist,
                }
            }
        }
    }

    /// Errors a node makes on a prune set.
    fn errors_on(node: &Node, prune: &Dataset) -> usize {
        prune
            .instances
            .iter()
            .filter(|r| node.classify(r) != r[prune.class_index])
            .count()
    }

    /// Bottom-up reduced-error pruning against the held-out set.
    fn rep_prune(&self, node: Node, prune: &Dataset) -> Node {
        if prune.is_empty() {
            return node;
        }
        let node = match node {
            Node::Numeric {
                attr,
                threshold,
                left,
                right,
                dist,
            } => {
                let (le, gt) = prune.partition(|i| {
                    prune.instances[i][attr] <= threshold || prune.instances[i][attr].is_nan()
                });
                Node::Numeric {
                    attr,
                    threshold,
                    left: Box::new(self.rep_prune(*left, &le)),
                    right: Box::new(self.rep_prune(*right, &gt)),
                    dist,
                }
            }
            Node::Nominal {
                attr,
                children,
                default,
                dist,
            } => {
                let pruned: Vec<Node> = children
                    .into_iter()
                    .enumerate()
                    .map(|(v, child)| {
                        let subset: Vec<usize> = (0..prune.len())
                            .filter(|&i| prune.instances[i][attr] as usize == v)
                            .collect();
                        self.rep_prune(child, &prune.subset(&subset))
                    })
                    .collect();
                Node::Nominal {
                    attr,
                    children: pruned,
                    default,
                    dist,
                }
            }
            leaf => leaf,
        };
        // Replace by a leaf when the leaf is no worse on the prune set.
        if !matches!(node, Node::Leaf { .. }) {
            let dist = node.dist().to_vec();
            let leaf = Node::Leaf {
                class: majority(&dist),
                dist: dist.clone(),
            };
            if Self::errors_on(&leaf, prune) <= Self::errors_on(&node, prune) {
                self.kernel.bump_counters(1);
                return leaf;
            }
        }
        node
    }
}

impl Classifier for RepTree {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        let holdout = ((data.len() as f64) * self.holdout_fraction) as usize;
        let (prune_idx, grow_idx) = idx.split_at(holdout.min(data.len().saturating_sub(2)));
        let grow = data.subset(grow_idx);
        let prune = data.subset(prune_idx);
        if grow.is_empty() {
            return Err(MlError::Train("holdout leaves no growing data".into()));
        }
        let tree = self.build(&grow, 0);
        self.root = Some(self.rep_prune(tree, &prune));
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.root.as_ref().map(|r| r.classify(row)).unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "REP Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    #[test]
    fn learns_clean_rule() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        for i in 0..90 {
            d.push(vec![i as f64, if i < 45 { 0.0 } else { 1.0 }])
                .unwrap();
        }
        let mut c = RepTree::new(1);
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[10.0, 0.0]), 0.0);
        assert_eq!(c.predict(&[80.0, 0.0]), 1.0);
    }

    #[test]
    fn pruning_controls_size_on_noise() {
        // Pure-noise labels: reduced-error pruning should collapse the
        // overfit tree far below its unpruned size. Compare against the
        // unpruned tree instead of a magic leaf count so the assertion
        // holds for any grow/prune shuffle the seed produces.
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        let mut state = 12345u64;
        for i in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 33) & 1) as f64;
            d.push(vec![i as f64, y]).unwrap();
        }
        let mut unpruned = RepTree::new(1);
        unpruned.holdout_fraction = 0.0;
        unpruned.fit(&d).unwrap();
        let mut c = RepTree::new(1);
        c.fit(&d).unwrap();
        assert!(
            c.leaves() * 2 < unpruned.leaves(),
            "noise tree should prune hard: {} of {} leaves",
            c.leaves(),
            unpruned.leaves()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = AirlinesGenerator::new(5).generate(300);
        let mut a = RepTree::new(9);
        let mut b = RepTree::new(9);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        for row in data.instances.iter().take(30) {
            assert_eq!(a.predict(row), b.predict(row));
        }
    }
}
