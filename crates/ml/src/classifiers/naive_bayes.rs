//! Naive Bayes — Gaussian numerics, Laplace-smoothed nominals.
//!
//! "Naive Bayes is a probabilistic classifier which is based on Bayes
//! theorem" (§VIII); this matches WEKA's default configuration
//! (normal-distribution estimator for numeric attributes).

use super::Classifier;
use crate::data::{AttributeKind, Dataset};
use crate::ops::Kernel;
use crate::MlError;

#[derive(Debug, Clone)]
enum AttrModel {
    /// Per-class (mean, std).
    Gaussian(Vec<(f64, f64)>),
    /// Per-class per-label smoothed probabilities.
    Categorical(Vec<Vec<f64>>),
}

/// Gaussian/categorical naive Bayes.
pub struct NaiveBayes {
    kernel: Kernel,
    priors: Vec<f64>,
    models: Vec<(usize, AttrModel)>,
}

impl NaiveBayes {
    /// Default configuration.
    pub fn new() -> NaiveBayes {
        NaiveBayes::with_kernel(Kernel::silent())
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel) -> NaiveBayes {
        NaiveBayes {
            kernel,
            priors: Vec::new(),
            models: Vec::new(),
        }
    }
}

impl Default for NaiveBayes {
    fn default() -> Self {
        NaiveBayes::new()
    }
}

impl Classifier for NaiveBayes {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        let k = data.num_classes();
        let n = data.len() as f64;
        // Priors with Laplace smoothing.
        let counts = data.class_counts();
        self.priors = counts
            .iter()
            .map(|&c| (c as f64 + 1.0) / (n + k as f64))
            .collect();
        self.models.clear();
        for attr in data.feature_indices() {
            // NB's estimator pass is instance-major (sequential) in
            // WEKA, so the traversal-order suggestion barely touches it.
            self.kernel.charge_sequential_scan(data.len());
            let model = match &data.attributes[attr].kind {
                AttributeKind::Numeric => {
                    let mut sums = vec![0.0; k];
                    let mut sqs = vec![0.0; k];
                    let mut ns = vec![0.0; k];
                    for row in &data.instances {
                        let v = row[attr];
                        if v.is_nan() {
                            continue;
                        }
                        let c = row[data.class_index] as usize;
                        sums[c] = self.kernel.add(sums[c], v);
                        sqs[c] = self.kernel.add(sqs[c], self.kernel.mul(v, v));
                        ns[c] += 1.0;
                    }
                    let stats = (0..k)
                        .map(|c| {
                            if ns[c] < 2.0 {
                                (0.0, 1.0)
                            } else {
                                let mean = sums[c] / ns[c];
                                let var = (sqs[c] / ns[c] - mean * mean).max(1e-6);
                                (self.kernel.quantize(mean), self.kernel.quantize(var.sqrt()))
                            }
                        })
                        .collect();
                    AttrModel::Gaussian(stats)
                }
                AttributeKind::Nominal(labels) => {
                    let m = labels.len();
                    let mut table = vec![vec![1.0; m]; k]; // Laplace
                    for row in &data.instances {
                        let v = row[attr];
                        if v.is_nan() {
                            continue;
                        }
                        let c = row[data.class_index] as usize;
                        let v = v as usize;
                        if v < m {
                            table[c][v] += 1.0;
                        }
                    }
                    for probs in table.iter_mut() {
                        let total: f64 = probs.iter().sum();
                        for p in probs.iter_mut() {
                            *p = self.kernel.quantize(*p / total);
                        }
                    }
                    AttrModel::Categorical(table)
                }
            };
            self.models.push((attr, model));
        }
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        if self.priors.is_empty() {
            return 0.0;
        }
        let mut best = (0usize, f64::NEG_INFINITY);
        for (c, &prior) in self.priors.iter().enumerate() {
            let mut logp = prior.ln();
            for (attr, model) in &self.models {
                let v = row[*attr];
                if v.is_nan() {
                    continue;
                }
                match model {
                    AttrModel::Gaussian(stats) => {
                        let (mean, std) = stats[c];
                        let z = self.kernel.div(self.kernel.sub(v, mean), std);
                        // log N(v; mean, std) up to a shared constant.
                        logp -= 0.5 * z * z + std.ln();
                    }
                    AttrModel::Categorical(table) => {
                        let p = table[c].get(v as usize).copied().unwrap_or(1e-9);
                        logp += self.kernel.ln(p.max(1e-12));
                    }
                }
            }
            if logp > best.1 {
                best = (c, logp);
            }
        }
        best.0 as f64
    }

    fn name(&self) -> &'static str {
        "Naive Bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Attribute;

    #[test]
    fn separable_gaussians_classify_correctly() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        // Class 0 around 0, class 1 around 10.
        for i in 0..40 {
            d.push(vec![(i % 5) as f64 - 2.0, 0.0]).unwrap();
            d.push(vec![10.0 + (i % 5) as f64 - 2.0, 1.0]).unwrap();
        }
        let mut c = NaiveBayes::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[0.5, 0.0]), 0.0);
        assert_eq!(c.predict(&[9.5, 0.0]), 1.0);
    }

    #[test]
    fn nominal_likelihoods_work() {
        let mut d = Dataset::new(
            "t",
            vec![Attribute::nominal("k", &["a", "b"]), Attribute::binary("y")],
        );
        for _ in 0..30 {
            d.push(vec![0.0, 0.0]).unwrap();
            d.push(vec![1.0, 1.0]).unwrap();
        }
        // A little crosstalk.
        d.push(vec![0.0, 1.0]).unwrap();
        let mut c = NaiveBayes::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[0.0, 0.0]), 0.0);
        assert_eq!(c.predict(&[1.0, 0.0]), 1.0);
    }

    #[test]
    fn missing_values_are_skipped() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        for i in 0..20 {
            d.push(vec![i as f64, if i < 10 { 0.0 } else { 1.0 }])
                .unwrap();
        }
        d.push(vec![f64::NAN, 0.0]).unwrap();
        let mut c = NaiveBayes::new();
        c.fit(&d).unwrap();
        // Prediction with a missing value falls back to priors.
        let p = c.predict(&[f64::NAN, 0.0]);
        assert!(p == 0.0 || p == 1.0);
    }

    #[test]
    fn priors_break_ties() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        // 3:1 class imbalance, uninformative attribute.
        for _ in 0..30 {
            d.push(vec![1.0, 0.0]).unwrap();
        }
        for _ in 0..10 {
            d.push(vec![1.0, 1.0]).unwrap();
        }
        let mut c = NaiveBayes::new();
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&[1.0, 0.0]), 0.0);
    }
}
