//! Logistic — multinomial ridge logistic regression.
//!
//! "Logistic builds a multinomial logistic regression that uses a ridge
//! estimator to guard against overfitting by penalizing large
//! coefficients based on [le Cessie & van Houwelingen 1992]" (§VIII).
//! Features go through the NominalToBinary + standardize pipeline
//! ([`Dataset::to_numeric`]); optimization is batch gradient descent
//! with backtracking on divergence — adequate for the convex objective.

use super::Classifier;
use crate::data::Dataset;
use crate::ops::Kernel;
use crate::MlError;

/// Ridge logistic regression (one-vs-rest for >2 classes).
pub struct Logistic {
    kernel: Kernel,
    /// Ridge penalty (WEKA `-R`, default 1e-8; we default higher for the
    /// high-cardinality one-hot airports).
    pub ridge: f64,
    /// Gradient-descent iterations.
    pub max_iter: usize,
    /// Per-class weight vectors (bias last).
    weights: Vec<Vec<f64>>,
    num_classes: usize,
    encoder: Option<Encoder>,
}

impl Logistic {
    /// Default configuration.
    pub fn new() -> Logistic {
        Logistic::with_kernel(Kernel::silent())
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel) -> Logistic {
        Logistic {
            kernel,
            ridge: 1e-4,
            max_iter: 150,
            weights: Vec::new(),
            num_classes: 0,
            encoder: None,
        }
    }

    fn sigmoid(&self, z: f64) -> f64 {
        self.kernel.raw_flops(2, 1);
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }

    /// Profile-independent dot: WEKA's Logistic optimizes through its
    /// own matrix code, which JEPO's source edits never touched, so the
    /// efficiency profile does not change its per-op costs.
    fn raw_dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self.kernel.raw_flops(a.len() as u64, a.len() as u64);
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn raw_axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        self.kernel.raw_flops(x.len() as u64, x.len() as u64);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn train_binary(&self, rows: &[Vec<f64>], targets: &[f64]) -> Vec<f64> {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let n = rows.len() as f64;
        let mut w = vec![0.0; dim + 1]; // bias last
        let mut lr = 1.0;
        let mut prev_loss = f64::INFINITY;
        for _ in 0..self.max_iter {
            let mut grad = vec![0.0; dim + 1];
            let mut loss = 0.0;
            for (x, &t) in rows.iter().zip(targets) {
                let z = self.raw_dot(&w[..dim], x) + w[dim];
                let p = self.sigmoid(z);
                let err = p - t;
                self.raw_axpy(err / n, x, &mut grad[..dim]);
                grad[dim] += err / n;
                let pl = p.clamp(1e-12, 1.0 - 1e-12);
                loss -= t * pl.ln() + (1.0 - t) * (1.0 - pl).ln();
            }
            // Ridge term (bias excluded).
            for d in 0..dim {
                grad[d] += self.ridge * w[d];
                loss += 0.5 * self.ridge * w[d] * w[d];
            }
            if loss > prev_loss {
                lr *= 0.5; // backtrack
                if lr < 1e-6 {
                    break;
                }
            }
            prev_loss = loss;
            self.raw_axpy(-lr, &grad.clone(), &mut w);
        }
        w
    }

    fn score(&self, w: &[f64], x: &[f64]) -> f64 {
        let dim = w.len() - 1;
        self.raw_dot(&w[..dim], x) + w[dim]
    }
}

impl Default for Logistic {
    fn default() -> Self {
        Logistic::new()
    }
}

impl Classifier for Logistic {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        let (rows, labels, _) = data.to_numeric();
        self.num_classes = data.num_classes();
        self.weights.clear();
        if self.num_classes == 2 {
            let targets: Vec<f64> = labels
                .iter()
                .map(|&l| if l == 1.0 { 1.0 } else { 0.0 })
                .collect();
            self.weights.push(self.train_binary(&rows, &targets));
        } else {
            for c in 0..self.num_classes {
                let targets: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l as usize == c { 1.0 } else { 0.0 })
                    .collect();
                self.weights.push(self.train_binary(&rows, &targets));
            }
        }
        // The feature encoding of the query path must match training;
        // stash the training data stats by re-encoding at predict time
        // via the stored dataset schema. (Encoding lives in the dataset;
        // we keep a copy of the training set's encoder output space.)
        self.encoder = Some(Encoder::fit(data));
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let Some(enc) = &self.encoder else {
            return 0.0;
        };
        let x = enc.encode(row);
        if self.num_classes == 2 {
            let z = self.score(&self.weights[0], &x);
            if z > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (c, w) in self.weights.iter().enumerate() {
                let z = self.score(w, &x);
                if z > best.1 {
                    best = (c, z);
                }
            }
            best.0 as f64
        }
    }

    fn name(&self) -> &'static str {
        "Logistic"
    }
}

// --- feature encoder shared by the linear models -------------------------

use crate::data::AttributeKind;

/// One-hot + standardization encoder fitted on training data, applied to
/// query rows (mirrors `Dataset::to_numeric`'s layout).
#[derive(Debug, Clone)]
pub struct Encoder {
    feats: Vec<usize>,
    offsets: Vec<usize>,
    kinds: Vec<(bool, usize)>, // (numeric, cardinality)
    means: Vec<f64>,
    stds: Vec<f64>,
    /// Encoded dimension.
    pub dim: usize,
}

impl Encoder {
    /// Fit on a dataset (same statistics as `to_numeric`).
    pub fn fit(data: &Dataset) -> Encoder {
        let feats = data.feature_indices();
        let mut dim = 0;
        let mut offsets = Vec::new();
        let mut kinds = Vec::new();
        for &f in &feats {
            offsets.push(dim);
            match &data.attributes[f].kind {
                AttributeKind::Numeric => {
                    dim += 1;
                    kinds.push((true, 0));
                }
                AttributeKind::Nominal(l) => {
                    dim += l.len();
                    kinds.push((false, l.len()));
                }
            }
        }
        let n = data.len().max(1) as f64;
        let mut means = vec![0.0; feats.len()];
        let mut stds = vec![1.0; feats.len()];
        for (k, &f) in feats.iter().enumerate() {
            if kinds[k].0 && !data.is_empty() {
                let mean = data.instances.iter().map(|r| r[f]).sum::<f64>() / n;
                let var = data
                    .instances
                    .iter()
                    .map(|r| (r[f] - mean).powi(2))
                    .sum::<f64>()
                    / n;
                means[k] = mean;
                stds[k] = var.sqrt().max(1e-12);
            }
        }
        Encoder {
            feats,
            offsets,
            kinds,
            means,
            stds,
            dim,
        }
    }

    /// Encode one raw instance row.
    pub fn encode(&self, row: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.dim];
        for (k, &f) in self.feats.iter().enumerate() {
            let v = row.get(f).copied().unwrap_or(f64::NAN);
            if v.is_nan() {
                continue;
            }
            if self.kinds[k].0 {
                x[self.offsets[k]] = (v - self.means[k]) / self.stds[k];
            } else {
                let idx = v as usize;
                if idx < self.kinds[k].1 {
                    x[self.offsets[k] + idx] = 1.0;
                }
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    #[test]
    fn separates_linear_data() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x1"),
                Attribute::numeric("x2"),
                Attribute::binary("y"),
            ],
        );
        for i in 0..200 {
            let x1 = (i % 20) as f64 / 10.0 - 1.0;
            let x2 = ((i * 7) % 20) as f64 / 10.0 - 1.0;
            let y = if x1 + x2 > 0.0 { 1.0 } else { 0.0 };
            d.push(vec![x1, x2, y]).unwrap();
        }
        let mut c = Logistic::new();
        c.fit(&d).unwrap();
        let correct = d.instances.iter().filter(|r| c.predict(r) == r[2]).count();
        assert!(correct as f64 / 200.0 > 0.95, "{correct}/200");
    }

    #[test]
    fn learns_airlines_signal() {
        // High-cardinality one-hot airports need a few samples per
        // airport before the linear model beats chance.
        let data = AirlinesGenerator::new(31).generate(2500);
        let eval = crate::eval::crossval::stratified_cross_validate(&data, 3, 3, Logistic::new);
        assert!(eval.accuracy() > 0.56, "{}", eval.accuracy());
    }

    #[test]
    fn encoder_roundtrip_dimensions() {
        let data = AirlinesGenerator::new(1).generate(50);
        let enc = Encoder::fit(&data);
        // 3 numeric + 18 + 293 + 293 + 7 nominal one-hot.
        assert_eq!(enc.dim, 3 + 18 + 293 + 293 + 7);
        let x = enc.encode(&data.instances[0]);
        assert_eq!(x.len(), enc.dim);
        let hot: f64 = x.iter().filter(|&&v| v == 1.0).sum();
        assert!((hot - 4.0).abs() < 1e-12, "4 nominal slots hot, got {hot}");
    }

    #[test]
    fn ridge_keeps_weights_bounded() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        // Perfectly separable: unregularized weights would diverge.
        for i in 0..50 {
            d.push(vec![i as f64, if i < 25 { 0.0 } else { 1.0 }])
                .unwrap();
        }
        let mut c = Logistic::new();
        c.ridge = 0.1;
        c.fit(&d).unwrap();
        let max_w = c.weights[0].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max_w < 50.0, "ridge bound violated: {max_w}");
    }
}
