//! RandomTree — WEKA's random-attribute-subset tree.
//!
//! "RandomTree takes into account a given number of random features at
//! each node without performing any pruning" (§VIII). Each node samples
//! `K = log2(#features) + 1` attributes and splits on the best by
//! information gain.

use super::tree_util::{apply_split, class_distribution, evaluate_attribute, majority, Node};
use super::Classifier;
use crate::data::Dataset;
use crate::ops::Kernel;
use crate::MlError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Random-subset decision tree (no pruning).
pub struct RandomTree {
    kernel: Kernel,
    seed: u64,
    /// Attributes sampled per node; 0 means `log2(m)+1`.
    pub k: usize,
    /// Minimum instances to keep splitting.
    pub min_instances: usize,
    root: Option<Node>,
}

impl RandomTree {
    /// Defaults (WEKA `-K 0 -M 1`).
    pub fn new(seed: u64) -> RandomTree {
        RandomTree::with_kernel(Kernel::silent(), seed)
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel, seed: u64) -> RandomTree {
        RandomTree {
            kernel,
            seed,
            k: 0,
            min_instances: 1,
            root: None,
        }
    }

    /// Leaves of the fitted tree.
    pub fn leaves(&self) -> usize {
        self.root.as_ref().map(Node::leaves).unwrap_or(0)
    }

    fn effective_k(&self, num_features: usize) -> usize {
        if self.k > 0 {
            self.k.min(num_features)
        } else {
            (((num_features as f64).log2() as usize) + 1).min(num_features)
        }
    }

    fn build(&self, data: &Dataset, rng: &mut StdRng, depth: usize) -> Node {
        let dist = class_distribution(data);
        let n: f64 = dist.iter().sum();
        let pure = dist.iter().filter(|&&c| c > 0.0).count() <= 1;
        if pure || n < self.min_instances.max(2) as f64 || depth > 40 {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        }
        let mut feats = data.feature_indices();
        feats.shuffle(rng);
        feats.truncate(self.effective_k(data.num_attributes() - 1));
        let best = feats
            .into_iter()
            .filter_map(|a| evaluate_attribute(data, a, &self.kernel))
            // `total_cmp`: NaN-safe, order-independent winner.
            .max_by(|a, b| a.gain.total_cmp(&b.gain));
        let Some(best) = best else {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        };
        let parts = apply_split(data, &best);
        if parts.iter().filter(|p| !p.is_empty()).count() < 2 {
            return Node::Leaf {
                class: majority(&dist),
                dist,
            };
        }
        match best.threshold {
            Some(threshold) => Node::Numeric {
                attr: best.attr,
                threshold,
                left: Box::new(self.build(&parts[0], rng, depth + 1)),
                right: Box::new(self.build(&parts[1], rng, depth + 1)),
                dist,
            },
            None => {
                let default = majority(&dist);
                let children = parts
                    .iter()
                    .map(|p| {
                        if p.is_empty() {
                            Node::Leaf {
                                class: default,
                                dist: vec![0.0; data.num_classes()],
                            }
                        } else {
                            self.build(p, rng, depth + 1)
                        }
                    })
                    .collect();
                Node::Nominal {
                    attr: best.attr,
                    children,
                    default,
                    dist,
                }
            }
        }
    }

    /// Class-distribution vote of the fitted tree for a row (forest
    /// voting uses distributions, as WEKA does).
    pub fn distribution(&self, row: &[f64]) -> Vec<f64> {
        fn walk<'a>(node: &'a Node, row: &[f64]) -> &'a [f64] {
            match node {
                Node::Leaf { dist, .. } => dist,
                Node::Numeric {
                    attr,
                    threshold,
                    left,
                    right,
                    dist,
                } => {
                    let v = row[*attr];
                    if v.is_nan() {
                        dist
                    } else if v <= *threshold {
                        walk(left, row)
                    } else {
                        walk(right, row)
                    }
                }
                Node::Nominal {
                    attr,
                    children,
                    dist,
                    ..
                } => {
                    let v = row[*attr];
                    if v.is_nan() {
                        return dist;
                    }
                    match children.get(v as usize) {
                        Some(c) => walk(c, row),
                        None => dist,
                    }
                }
            }
        }
        match &self.root {
            Some(root) => {
                let d = walk(root, row);
                let total: f64 = d.iter().sum();
                if total > 0.0 {
                    d.iter().map(|x| x / total).collect()
                } else {
                    d.to_vec()
                }
            }
            None => vec![],
        }
    }
}

impl Classifier for RandomTree {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(self.build(data, &mut rng, 0));
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.root.as_ref().map(|r| r.classify(row)).unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "Random Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    #[test]
    fn fits_and_memorizes_clean_data() {
        let mut d = Dataset::new("t", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        for i in 0..50 {
            d.push(vec![i as f64, if i < 25 { 0.0 } else { 1.0 }])
                .unwrap();
        }
        let mut c = RandomTree::new(3);
        c.fit(&d).unwrap();
        let correct = d.instances.iter().filter(|r| c.predict(r) == r[1]).count();
        assert!(correct >= 48, "unpruned tree memorizes: {correct}/50");
    }

    #[test]
    fn seed_changes_the_tree() {
        let data = AirlinesGenerator::new(2).generate(400);
        let mut a = RandomTree::new(1);
        let mut b = RandomTree::new(2);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        // Different random subsets almost surely give different shapes.
        assert_ne!(a.leaves(), 0);
        assert!(
            a.leaves() != b.leaves()
                || a.predict(&data.instances[0]) == a.predict(&data.instances[0])
        );
    }

    #[test]
    fn k_limits_attribute_sampling() {
        let t = RandomTree::new(0);
        assert_eq!(t.effective_k(7), 3); // log2(7)≈2.8 → 2 + 1
        assert_eq!(t.effective_k(1), 1);
        let mut t2 = RandomTree::new(0);
        t2.k = 5;
        assert_eq!(t2.effective_k(7), 5);
        assert_eq!(t2.effective_k(3), 3);
    }

    #[test]
    fn distribution_sums_to_one() {
        let data = AirlinesGenerator::new(4).generate(300);
        let mut c = RandomTree::new(9);
        c.fit(&data).unwrap();
        let d = c.distribution(&data.instances[0]);
        assert_eq!(d.len(), 2);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
