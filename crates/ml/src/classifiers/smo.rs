//! SMO — Platt's sequential minimal optimization for SVM training.
//!
//! "SMO uses polynomial or Gaussian kernels to implement the sequential
//! minimal optimization algorithm for training a support vector
//! classifier [Platt 1998; Keerthi et al. 2001]" (§VIII). This is the
//! simplified-SMO formulation with an error cache: pairs of Lagrange
//! multipliers violating the KKT conditions are optimized jointly until
//! no progress is made.

use super::logistic::Encoder;
use super::Classifier;
use crate::data::Dataset;
use crate::ops::Kernel;
use crate::MlError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVM kernel functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvmKernel {
    /// Linear (polynomial of degree 1 — WEKA's default PolyKernel).
    Linear,
    /// Polynomial of the given degree.
    Poly(u32),
    /// Gaussian RBF with the given gamma.
    Rbf(f64),
}

/// Platt SMO support-vector classifier (binary).
pub struct Smo {
    kernel: Kernel,
    seed: u64,
    /// Kernel function.
    pub svm_kernel: SvmKernel,
    /// Soft-margin parameter (WEKA `-C`, default 1.0).
    pub c: f64,
    /// KKT tolerance (WEKA epsilon 1e-3).
    pub tol: f64,
    /// Maximum optimization passes without progress.
    pub max_passes: usize,
    alphas: Vec<f64>,
    b: f64,
    support: Vec<(Vec<f64>, f64)>, // (x, y∈{-1,1})
    /// Explicit weight vector (linear kernel only) — the standard SMO
    /// optimization that makes f(x) O(dim) instead of O(n·dim).
    w: Option<Vec<f64>>,
    encoder: Option<Encoder>,
}

impl Smo {
    /// Defaults (linear kernel, C=1).
    pub fn new(seed: u64) -> Smo {
        Smo::with_kernel(Kernel::silent(), seed)
    }

    /// With an explicit energy kernel.
    pub fn with_kernel(kernel: Kernel, seed: u64) -> Smo {
        Smo {
            kernel,
            seed,
            svm_kernel: SvmKernel::Linear,
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            alphas: Vec::new(),
            b: 0.0,
            support: Vec::new(),
            w: None,
            encoder: None,
        }
    }

    /// Profile-independent dot: WEKA's SMO runs its kernel evaluations
    /// through the cached-kernel machinery JEPO's edits never touched,
    /// which is why the paper measured only 0.05% improvement for SMO.
    fn raw_dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self.kernel.raw_flops(a.len() as u64, a.len() as u64);
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn k(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.svm_kernel {
            SvmKernel::Linear => self.raw_dot(a, b),
            SvmKernel::Poly(d) => {
                let base = self.raw_dot(a, b) + 1.0;
                self.kernel.quantize(base.powi(d as i32))
            }
            SvmKernel::Rbf(gamma) => {
                let d2 = self.kernel.squared_distance(a, b);
                self.kernel.exp(-gamma * d2)
            }
        }
    }

    fn decision(&self, x: &[f64]) -> f64 {
        if let Some(w) = &self.w {
            return self.raw_dot(w, x) - self.b;
        }
        let mut f = -self.b;
        for (i, (sx, sy)) in self.support.iter().enumerate() {
            if self.alphas[i] > 0.0 {
                f += self.alphas[i] * sy * self.k(sx, x);
            }
        }
        f
    }
}

impl Classifier for Smo {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::Train("empty dataset".into()));
        }
        if data.num_classes() != 2 {
            return Err(MlError::Unsupported(
                "SMO here is binary (the airlines task)".into(),
            ));
        }
        let (rows, labels, dim) = data.to_numeric();
        let n = rows.len();
        let ys: Vec<f64> = labels
            .iter()
            .map(|&l| if l == 1.0 { 1.0 } else { -1.0 })
            .collect();
        let mut alphas = vec![0.0f64; n];
        let mut b = 0.0f64;
        let linear = self.svm_kernel == SvmKernel::Linear;
        // Linear fast path: maintain w so f(x) is O(dim).
        let mut w = vec![0.0f64; if linear { dim } else { 0 }];
        let mut rng = StdRng::seed_from_u64(self.kernel.effective_seed(self.seed));
        let f_of = |alphas: &[f64], b: f64, w: &[f64], this: &Smo, i: usize| -> f64 {
            if linear {
                return this.raw_dot(w, &rows[i]) - b;
            }
            let mut f = -b;
            for j in 0..n {
                if alphas[j] > 0.0 {
                    f += alphas[j] * ys[j] * this.k(&rows[j], &rows[i]);
                }
            }
            f
        };
        let mut passes = 0usize;
        let mut iter_guard = 0usize;
        while passes < self.max_passes && iter_guard < 60 {
            iter_guard += 1;
            let mut changed = 0usize;
            self.kernel.bump_counters(1);
            for i in 0..n {
                let ei = f_of(&alphas, b, &w, self, i) - ys[i];
                let viol = (ys[i] * ei < -self.tol && alphas[i] < self.c)
                    || (ys[i] * ei > self.tol && alphas[i] > 0.0);
                if !viol {
                    continue;
                }
                // Second choice: random j ≠ i (simplified Platt heuristic).
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f_of(&alphas, b, &w, self, j) - ys[j];
                let (ai_old, aj_old) = (alphas[i], alphas[j]);
                let (lo, hi) = if ys[i] != ys[j] {
                    (
                        (aj_old - ai_old).max(0.0),
                        (self.c + aj_old - ai_old).min(self.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - self.c).max(0.0),
                        (ai_old + aj_old).min(self.c),
                    )
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let kii = self.k(&rows[i], &rows[i]);
                let kjj = self.k(&rows[j], &rows[j]);
                let kij = self.k(&rows[i], &rows[j]);
                let eta = 2.0 * kij - kii - kjj;
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - ys[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + ys[i] * ys[j] * (aj_old - aj);
                // Bias update (Platt's b1/b2 rule).
                let b1 = b + ei + ys[i] * (ai - ai_old) * kii + ys[j] * (aj - aj_old) * kij;
                let b2 = b + ej + ys[i] * (ai - ai_old) * kij + ys[j] * (aj - aj_old) * kjj;
                b = if 0.0 < ai && ai < self.c {
                    b1
                } else if 0.0 < aj && aj < self.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                if linear {
                    self.kernel
                        .raw_flops(2 * w.len() as u64, 2 * w.len() as u64);
                    for (wk, xk) in w.iter_mut().zip(&rows[i]) {
                        *wk += ys[i] * (ai - ai_old) * xk;
                    }
                    for (wk, xk) in w.iter_mut().zip(&rows[j]) {
                        *wk += ys[j] * (aj - aj_old) * xk;
                    }
                }
                alphas[i] = ai;
                alphas[j] = aj;
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }
        // Keep only support vectors.
        self.support = Vec::new();
        let mut kept = Vec::new();
        for i in 0..n {
            if alphas[i] > 1e-9 {
                self.support.push((rows[i].clone(), ys[i]));
                kept.push(alphas[i]);
            }
        }
        self.alphas = kept;
        self.b = b;
        self.w = if linear { Some(w) } else { None };
        self.encoder = Some(Encoder::fit(data));
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let Some(enc) = &self.encoder else {
            return 0.0;
        };
        let x = enc.encode(row);
        if self.decision(&x) > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "SMO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    fn linear_data(n: usize) -> Dataset {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x1"),
                Attribute::numeric("x2"),
                Attribute::binary("y"),
            ],
        );
        for i in 0..n {
            let x1 = ((i * 17) % 29) as f64 / 14.0 - 1.0;
            let x2 = ((i * 11) % 31) as f64 / 15.0 - 1.0;
            let y = if x1 + 0.5 * x2 > 0.1 { 1.0 } else { 0.0 };
            d.push(vec![x1, x2, y]).unwrap();
        }
        d
    }

    #[test]
    fn linear_kernel_separates() {
        let d = linear_data(200);
        let mut c = Smo::new(3);
        c.fit(&d).unwrap();
        let correct = d.instances.iter().filter(|r| c.predict(r) == r[2]).count();
        assert!(correct as f64 / 200.0 > 0.9, "{correct}/200");
        assert!(
            !c.support.is_empty() && c.support.len() < 200,
            "sparse SVs: {}",
            c.support.len()
        );
    }

    #[test]
    fn rbf_kernel_handles_nonlinear_rings() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x1"),
                Attribute::numeric("x2"),
                Attribute::binary("y"),
            ],
        );
        for i in 0..240 {
            let angle = i as f64 * 0.5;
            let r = if i % 2 == 0 { 0.5 } else { 2.0 };
            d.push(vec![r * angle.cos(), r * angle.sin(), (i % 2) as f64])
                .unwrap();
        }
        let mut c = Smo::new(5);
        c.svm_kernel = SvmKernel::Rbf(1.0);
        c.fit(&d).unwrap();
        let correct = d.instances.iter().filter(|r| c.predict(r) == r[2]).count();
        assert!(correct as f64 / 240.0 > 0.9, "{correct}/240");
    }

    #[test]
    fn poly_kernel_value_is_correct() {
        let mut c = Smo::new(0);
        c.svm_kernel = SvmKernel::Poly(2);
        let v = c.k(&[1.0, 2.0], &[3.0, 1.0]);
        assert!((v - 36.0).abs() < 1e-6, "(1·3+2·1+1)^2 = 36, got {v}");
    }

    #[test]
    fn learns_airlines_better_than_chance() {
        let data = AirlinesGenerator::new(23).generate(300);
        let mut c = Smo::new(1);
        c.fit(&data).unwrap();
        let correct = data
            .instances
            .iter()
            .filter(|r| c.predict(r) == r[7])
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.55);
    }

    #[test]
    fn multiclass_rejected() {
        let mut d = Dataset::new(
            "t",
            vec![
                Attribute::numeric("x"),
                Attribute::nominal("y", &["a", "b", "c"]),
            ],
        );
        for i in 0..9 {
            d.push(vec![i as f64, (i % 3) as f64]).unwrap();
        }
        assert!(matches!(Smo::new(0).fit(&d), Err(MlError::Unsupported(_))));
    }

    #[test]
    fn alphas_respect_box_constraint() {
        let d = linear_data(120);
        let mut c = Smo::new(7);
        c.c = 0.7;
        c.fit(&d).unwrap();
        for &a in &c.alphas {
            assert!((0.0..=0.7 + 1e-9).contains(&a), "alpha {a} outside [0, C]");
        }
    }
}
