//! Evaluation: metrics and stratified cross-validation.

pub mod crossval;
pub mod metrics;

pub use crossval::{stratified_cross_validate, stratified_folds};
pub use metrics::Evaluation;
