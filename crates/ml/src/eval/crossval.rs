//! Stratified k-fold cross-validation — the paper's protocol
//! ("evaluated various classifiers using stratified 10-fold
//! cross-validation").
//!
//! Folds are independent, so [`stratified_cross_validate_jobs`] fans
//! them out over the jepo-pool scoped worker pool with one fresh
//! [`Kernel`]/op-counter per fold. Per-fold evaluations and op
//! snapshots are merged **in fold order** at join, which makes the
//! parallel run bit-identical to the sequential one for any `jobs`.

use super::metrics::Evaluation;
use crate::classifiers::Classifier;
use crate::data::Dataset;
use crate::ops::{EfficiencyProfile, Kernel};
use jepo_rapl::OpSnapshot;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Assign each instance to a fold, preserving class proportions
/// (WEKA's `Instances.stratify`). Returns `fold_of[i]` per instance.
pub fn stratified_folds(data: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = StdRng::seed_from_u64(seed);
    // Group indices by class, shuffle within class, deal round-robin.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.num_classes()];
    for i in 0..data.len() {
        let c = (data.class_of(i) as usize).min(by_class.len() - 1);
        by_class[c].push(i);
    }
    let mut fold_of = vec![0usize; data.len()];
    let mut next = 0usize;
    for group in &mut by_class {
        group.shuffle(&mut rng);
        for &i in group.iter() {
            fold_of[i] = next % k;
            next += 1;
        }
    }
    fold_of
}

/// Run stratified k-fold cross-validation, building a fresh classifier
/// per fold via `make`. Returns the aggregated evaluation.
pub fn stratified_cross_validate<C: Classifier>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut make: impl FnMut() -> C,
) -> Evaluation {
    let fold_of = stratified_folds(data, k, seed);
    let mut eval = Evaluation::new(data.num_classes());
    for fold in 0..k {
        let (test, train) = data.partition(|i| fold_of[i] == fold);
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let mut clf = make();
        if clf.fit(&train).is_err() {
            continue;
        }
        for row in &test.instances {
            let pred = clf.predict(row);
            eval.record(row[test.class_index], pred);
        }
    }
    eval
}

/// Counted, optionally parallel cross-validation.
///
/// Each fold gets a **fresh** [`Kernel`] (and thus its own op-counter);
/// `make` builds the fold's classifier around it. Folds run on up to
/// `jobs` workers (`0` = one per core, `1` = sequential). Per-fold
/// results are committed by fold index and merged in fold order, so the
/// returned `(Evaluation, OpSnapshot)` is identical — bit for bit — to
/// the sequential run: confusion-matrix and op-count merging are sums
/// of per-fold integers, which commute.
pub fn stratified_cross_validate_jobs<C: Classifier>(
    data: &Dataset,
    k: usize,
    seed: u64,
    jobs: usize,
    profile: EfficiencyProfile,
    make: impl Fn(Kernel) -> C + Sync,
) -> (Evaluation, OpSnapshot) {
    let fold_of = stratified_folds(data, k, seed);
    let folds: Vec<usize> = (0..k).collect();
    let per_fold = jepo_pool::parallel_map(&folds, jobs, |_, &fold| {
        let kernel = Kernel::new(profile);
        let mut eval = Evaluation::new(data.num_classes());
        let (test, train) = data.partition(|i| fold_of[i] == fold);
        if !train.is_empty() && !test.is_empty() {
            let mut clf = make(kernel.clone());
            if clf.fit(&train).is_ok() {
                for row in &test.instances {
                    eval.record(row[test.class_index], clf.predict(row));
                }
            }
        }
        // The classifier (and every kernel clone it held) has dropped by
        // here, flushing all scoreboards; `take_snapshot` flushes the
        // fold kernel's own board and drains the shared counter.
        (eval, kernel.take_snapshot())
    });
    let mut eval = Evaluation::new(data.num_classes());
    let mut ops = OpSnapshot::default();
    for (e, s) in &per_fold {
        eval.merge(e);
        ops.merge(s);
    }
    (eval, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    #[test]
    fn folds_preserve_class_proportions() {
        let data = AirlinesGenerator::new(3).generate(1000);
        let folds = stratified_folds(&data, 10, 1);
        let overall = data.class_counts();
        let overall_ratio = overall[1] as f64 / data.len() as f64;
        for f in 0..10 {
            let idxs: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == f).collect();
            let pos = idxs.iter().filter(|&&i| data.class_of(i) == 1.0).count();
            let ratio = pos as f64 / idxs.len() as f64;
            assert!(
                (ratio - overall_ratio).abs() < 0.08,
                "fold {f}: {ratio} vs {overall_ratio}"
            );
            // Folds are near-equal size.
            assert!((idxs.len() as i64 - 100).abs() <= 2);
        }
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        let data = AirlinesGenerator::new(3).generate(200);
        assert_eq!(stratified_folds(&data, 5, 9), stratified_folds(&data, 5, 9));
        assert_ne!(
            stratified_folds(&data, 5, 9),
            stratified_folds(&data, 5, 10)
        );
    }

    /// Trivial classifier predicting the training majority class.
    struct Majority(f64);
    impl Classifier for Majority {
        fn fit(&mut self, d: &Dataset) -> Result<(), crate::MlError> {
            self.0 = d.majority_class();
            Ok(())
        }
        fn predict(&self, _x: &[f64]) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "Majority"
        }
    }

    #[test]
    fn cross_validation_runs_all_folds() {
        let mut d = Dataset::new("toy", vec![Attribute::numeric("x"), Attribute::binary("y")]);
        for i in 0..100 {
            d.push(vec![i as f64, if i % 3 == 0 { 1.0 } else { 0.0 }])
                .unwrap();
        }
        let eval = stratified_cross_validate(&d, 10, 1, || Majority(0.0));
        assert_eq!(eval.total(), 100);
        // Majority class is 0 (66 of 100): accuracy ≈ 0.66.
        assert!((eval.accuracy() - 0.66).abs() < 0.05);
    }

    #[test]
    fn parallel_folds_match_sequential_bit_for_bit() {
        use crate::classifiers::by_name;
        let data = AirlinesGenerator::new(7).generate(300);
        let profile = EfficiencyProfile::baseline();
        let run = |jobs| {
            stratified_cross_validate_jobs(&data, 5, 7, jobs, profile, |kernel| {
                by_name("Naive Bayes", kernel, 7).unwrap()
            })
        };
        let (eval1, ops1) = run(1);
        for jobs in [2, 3, 8] {
            let (evaln, opsn) = run(jobs);
            assert_eq!(eval1, evaln, "jobs={jobs}");
            assert_eq!(ops1, opsn, "jobs={jobs}");
        }
        // And the counted path agrees with the plain sequential API.
        let plain = stratified_cross_validate(&data, 5, 7, || {
            by_name("Naive Bayes", Kernel::new(profile), 7).unwrap()
        });
        assert_eq!(plain, eval1);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k1_is_rejected() {
        let d = AirlinesGenerator::new(1).generate(10);
        stratified_folds(&d, 1, 0);
    }
}
