//! Stratified k-fold cross-validation — the paper's protocol
//! ("evaluated various classifiers using stratified 10-fold
//! cross-validation").

use super::metrics::Evaluation;
use crate::classifiers::Classifier;
use crate::data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Assign each instance to a fold, preserving class proportions
/// (WEKA's `Instances.stratify`). Returns `fold_of[i]` per instance.
pub fn stratified_folds(data: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = StdRng::seed_from_u64(seed);
    // Group indices by class, shuffle within class, deal round-robin.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.num_classes()];
    for i in 0..data.len() {
        let c = (data.class_of(i) as usize).min(by_class.len() - 1);
        by_class[c].push(i);
    }
    let mut fold_of = vec![0usize; data.len()];
    let mut next = 0usize;
    for group in &mut by_class {
        group.shuffle(&mut rng);
        for &i in group.iter() {
            fold_of[i] = next % k;
            next += 1;
        }
    }
    fold_of
}

/// Run stratified k-fold cross-validation, building a fresh classifier
/// per fold via `make`. Returns the aggregated evaluation.
pub fn stratified_cross_validate<C: Classifier>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut make: impl FnMut() -> C,
) -> Evaluation {
    let fold_of = stratified_folds(data, k, seed);
    let mut eval = Evaluation::new(data.num_classes());
    for fold in 0..k {
        let (test, train) = data.partition(|i| fold_of[i] == fold);
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let mut clf = make();
        if clf.fit(&train).is_err() {
            continue;
        }
        for row in &test.instances {
            let pred = clf.predict(row);
            eval.record(row[test.class_index], pred);
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::airlines::AirlinesGenerator;
    use crate::data::Attribute;

    #[test]
    fn folds_preserve_class_proportions() {
        let data = AirlinesGenerator::new(3).generate(1000);
        let folds = stratified_folds(&data, 10, 1);
        let overall = data.class_counts();
        let overall_ratio = overall[1] as f64 / data.len() as f64;
        for f in 0..10 {
            let idxs: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == f).collect();
            let pos = idxs.iter().filter(|&&i| data.class_of(i) == 1.0).count();
            let ratio = pos as f64 / idxs.len() as f64;
            assert!(
                (ratio - overall_ratio).abs() < 0.08,
                "fold {f}: {ratio} vs {overall_ratio}"
            );
            // Folds are near-equal size.
            assert!((idxs.len() as i64 - 100).abs() <= 2);
        }
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        let data = AirlinesGenerator::new(3).generate(200);
        assert_eq!(stratified_folds(&data, 5, 9), stratified_folds(&data, 5, 9));
        assert_ne!(stratified_folds(&data, 5, 9), stratified_folds(&data, 5, 10));
    }

    /// Trivial classifier predicting the training majority class.
    struct Majority(f64);
    impl Classifier for Majority {
        fn fit(&mut self, d: &Dataset) -> Result<(), crate::MlError> {
            self.0 = d.majority_class();
            Ok(())
        }
        fn predict(&self, _x: &[f64]) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "Majority"
        }
    }

    #[test]
    fn cross_validation_runs_all_folds() {
        let mut d = Dataset::new(
            "toy",
            vec![Attribute::numeric("x"), Attribute::binary("y")],
        );
        for i in 0..100 {
            d.push(vec![i as f64, if i % 3 == 0 { 1.0 } else { 0.0 }]).unwrap();
        }
        let eval = stratified_cross_validate(&d, 10, 1, || Majority(0.0));
        assert_eq!(eval.total(), 100);
        // Majority class is 0 (66 of 100): accuracy ≈ 0.66.
        assert!((eval.accuracy() - 0.66).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k1_is_rejected() {
        let d = AirlinesGenerator::new(1).generate(10);
        stratified_folds(&d, 1, 0);
    }
}
