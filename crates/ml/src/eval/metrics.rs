//! Classification metrics.

use serde::{Deserialize, Serialize};

/// Accumulated evaluation results (confusion matrix based).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// `confusion[actual][predicted]`.
    pub confusion: Vec<Vec<u64>>,
}

impl Evaluation {
    /// Empty evaluation for `num_classes`.
    pub fn new(num_classes: usize) -> Evaluation {
        Evaluation {
            confusion: vec![vec![0; num_classes]; num_classes],
        }
    }

    /// Record one prediction.
    pub fn record(&mut self, actual: f64, predicted: f64) {
        let a = (actual as usize).min(self.confusion.len() - 1);
        let p = (predicted as usize).min(self.confusion.len() - 1);
        self.confusion[a][p] += 1;
    }

    /// Merge another evaluation (fold aggregation).
    pub fn merge(&mut self, other: &Evaluation) {
        for (ra, rb) in self.confusion.iter_mut().zip(&other.confusion) {
            for (a, b) in ra.iter_mut().zip(rb) {
                *a += b;
            }
        }
    }

    /// Total instances evaluated.
    pub fn total(&self) -> u64 {
        self.confusion.iter().flatten().sum()
    }

    /// Correctly classified instances.
    pub fn correct(&self) -> u64 {
        (0..self.confusion.len())
            .map(|i| self.confusion[i][i])
            .sum()
    }

    /// Accuracy in `[0,1]`.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.correct() as f64 / t as f64
        }
    }

    /// Recall for one class.
    pub fn recall(&self, class: usize) -> f64 {
        let row: u64 = self.confusion[class].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.confusion[class][class] as f64 / row as f64
        }
    }

    /// Precision for one class.
    pub fn precision(&self, class: usize) -> f64 {
        let col: u64 = self.confusion.iter().map(|r| r[class]).sum();
        if col == 0 {
            0.0
        } else {
            self.confusion[class][class] as f64 / col as f64
        }
    }

    /// F1 for one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_per_class_metrics() {
        let mut e = Evaluation::new(2);
        // 3 true negatives, 1 false positive, 1 false negative, 5 TP.
        for _ in 0..3 {
            e.record(0.0, 0.0);
        }
        e.record(0.0, 1.0);
        e.record(1.0, 0.0);
        for _ in 0..5 {
            e.record(1.0, 1.0);
        }
        assert_eq!(e.total(), 10);
        assert_eq!(e.correct(), 8);
        assert!((e.accuracy() - 0.8).abs() < 1e-12);
        assert!((e.recall(1) - 5.0 / 6.0).abs() < 1e-12);
        assert!((e.precision(1) - 5.0 / 6.0).abs() < 1e-12);
        assert!(e.f1(1) > 0.8);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Evaluation::new(2);
        a.record(0.0, 0.0);
        let mut b = Evaluation::new(2);
        b.record(1.0, 0.0);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.correct(), 1);
    }

    #[test]
    fn empty_evaluation_is_zero() {
        let e = Evaluation::new(3);
        assert_eq!(e.accuracy(), 0.0);
        assert_eq!(e.recall(0), 0.0);
        assert_eq!(e.precision(2), 0.0);
    }
}
