//! # jepo-ml — the WEKA substrate
//!
//! The paper evaluates JEPO by optimizing WEKA and running **ten
//! classifiers** on the MOA airlines dataset under stratified 10-fold
//! cross-validation (§VIII, Tables II–IV). This crate reimplements that
//! substrate from scratch:
//!
//! * [`data`] — attributes (nominal/numeric/binary), datasets, ARFF
//!   reading/writing, and a deterministic generator reproducing the MOA
//!   airlines schema of Table III (8 attributes, 18 airlines, 293
//!   airports, binary delay label).
//! * [`classifiers`] — the ten classifiers of Table II: J48 (C4.5),
//!   RandomTree, RandomForest, REPTree, NaiveBayes, ridge Logistic,
//!   SMO (Platt's sequential minimal optimization), SGD, KStar, and IBk.
//! * [`eval`] — stratified k-fold cross-validation and accuracy metrics.
//! * [`ops`] — the **efficiency-profile kernel**: every hot numeric loop
//!   runs through counted primitives whose cost category and precision
//!   depend on an [`ops::EfficiencyProfile`]. The *baseline* profile is
//!   the paper's unoptimized WEKA (double math, column-ordered attribute
//!   scans, manual copies, string `+`, static-style shared counters,
//!   modulus hashing); the *optimized* profile is WEKA after JEPO's
//!   suggestions. Switching profiles is the controlled analogue of the
//!   paper's ~700–877 hand edits, and the f32 rounding of the optimized
//!   profile produces the genuine accuracy drops of Table IV.
//!
//! ```
//! use jepo_ml::data::airlines::AirlinesGenerator;
//! use jepo_ml::classifiers::{Classifier, naive_bayes::NaiveBayes};
//! use jepo_ml::eval::crossval::stratified_cross_validate;
//!
//! let data = AirlinesGenerator::new(7).generate(300);
//! let acc = stratified_cross_validate(&data, 10, 7, || NaiveBayes::new()).accuracy();
//! assert!(acc > 0.5); // learns something on the planted signal
//! ```

pub mod classifiers;
pub mod data;
pub mod error;
pub mod eval;
pub mod ops;

pub use classifiers::Classifier;
pub use data::{Attribute, AttributeKind, Dataset};
pub use error::MlError;
pub use ops::{EfficiencyProfile, Kernel, Layout, Precision};
