//! Error type for the ML substrate.

use std::fmt;

/// Errors from dataset handling or training.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Malformed ARFF or generator input.
    Data(String),
    /// Training cannot proceed (empty dataset, missing class…).
    Train(String),
    /// Feature not supported by a classifier (e.g. SMO needs binary class).
    Unsupported(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Data(m) => write!(f, "data error: {m}"),
            MlError::Train(m) => write!(f, "training error: {m}"),
            MlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MlError::Data("x".into()).to_string().contains("data"));
        assert!(MlError::Train("x".into()).to_string().contains("training"));
        assert!(MlError::Unsupported("x".into())
            .to_string()
            .contains("unsupported"));
    }
}
