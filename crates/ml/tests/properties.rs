//! Property tests over the ML substrate: ARFF round-trips, fold
//! invariants, and classifier sanity on generated datasets.

use jepo_ml::classifiers::{by_name, Classifier, CLASSIFIER_NAMES};
use jepo_ml::data::{arff, Attribute, Dataset};
use jepo_ml::eval::crossval::stratified_folds;
use jepo_ml::Kernel;
use proptest::prelude::*;

fn small_dataset() -> impl Strategy<Value = Dataset> {
    // 2 numeric features + a binary class; labels follow a noisy
    // threshold rule so there is always signal and both classes.
    (10usize..80, any::<u64>()).prop_map(|(n, seed)| {
        let mut d = Dataset::new(
            "gen",
            vec![
                Attribute::numeric("x"),
                Attribute::numeric("y"),
                Attribute::binary("c"),
            ],
        );
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            let x = next() * 10.0;
            let y = next() * 10.0;
            let c = if x + y > 10.0 { 1.0 } else { 0.0 };
            // Force both classes to exist.
            let c = if i == 0 {
                0.0
            } else if i == 1 {
                1.0
            } else {
                c
            };
            d.push(vec![x, y, c]).unwrap();
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ARFF write → parse is the identity on schema and values.
    #[test]
    fn arff_roundtrip(d in small_dataset()) {
        let text = arff::write(&d);
        let back = arff::parse(&text).unwrap();
        prop_assert_eq!(&d.attributes, &back.attributes);
        prop_assert_eq!(d.len(), back.len());
        for (a, b) in d.instances.iter().zip(&back.instances) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-9, "{} vs {}", x, y);
            }
        }
    }

    /// Stratified folds partition all instances and keep fold sizes
    /// within two of each other.
    #[test]
    fn folds_partition_and_balance(d in small_dataset(), k in 2usize..6) {
        let folds = stratified_folds(&d, k, 3);
        prop_assert_eq!(folds.len(), d.len());
        let mut sizes = vec![0usize; k];
        for &f in &folds {
            prop_assert!(f < k);
            sizes[f] += 1;
        }
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 2, "{:?}", sizes);
    }

    /// Every classifier fits generated data without error and predicts
    /// only valid class indices.
    #[test]
    fn classifiers_fit_and_predict_valid_classes(d in small_dataset()) {
        for name in CLASSIFIER_NAMES {
            let mut clf = by_name(name, Kernel::silent(), 1).unwrap();
            clf.fit(&d).unwrap_or_else(|e| panic!("{name}: {e}"));
            for row in d.instances.iter().take(10) {
                let p = clf.predict(row);
                prop_assert!(p == 0.0 || p == 1.0, "{} predicted {}", name, p);
            }
        }
    }

    /// Training and predicting is deterministic for a fixed seed.
    #[test]
    fn fitting_is_deterministic(d in small_dataset()) {
        for name in ["Random Tree", "Random Forest", "SGD", "SMO"] {
            let mut a = by_name(name, Kernel::silent(), 9).unwrap();
            let mut b = by_name(name, Kernel::silent(), 9).unwrap();
            a.fit(&d).unwrap();
            b.fit(&d).unwrap();
            for row in d.instances.iter().take(10) {
                prop_assert_eq!(a.predict(row), b.predict(row), "{}", name);
            }
        }
    }
}
