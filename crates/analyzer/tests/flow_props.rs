//! Property tests for the CFG lowering and the dataflow solver.
//!
//! Random jlang method bodies are generated as *source text* (so the
//! parser assigns real, unique spans — the CFG's `stmt_nodes` map is
//! keyed by span) and pushed through `Cfg::build` plus all three solver
//! instantiations. Three contracts:
//!
//! 1. Terminator-free bodies: every statement maps to an entry-reachable
//!    CFG node.
//! 2. Any body (break/continue/return included): every dominator-verified
//!    back edge targets a structurally detected natural-loop header.
//! 3. The worklist solver reaches a fixpoint inside its iteration bound
//!    for liveness, reaching definitions, and dominators — no panic.

use jepo_analyzer::cfg::Cfg;
use jepo_analyzer::dataflow::{
    back_edges, iteration_bound, solve, Dominators, Liveness, ReachingDefs, VarTable,
};
use jepo_jlang::StmtKind;
use proptest::prelude::*;

/// One of the pre-declared method variables.
fn var() -> BoxedStrategy<String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("n".to_string()),
        Just("t".to_string()),
    ]
    .boxed()
}

/// A side-effect-free integer expression over the method variables.
fn expr() -> BoxedStrategy<String> {
    prop_oneof![
        var(),
        (0i64..100).prop_map(|v| v.to_string()),
        (var(), var()).prop_map(|(x, y)| format!("{x} + {y}")),
        (var(), 1i64..9).prop_map(|(x, k)| format!("{x} % {k}")),
        (var(), 1i64..9).prop_map(|(x, k)| format!("{x} * {k}")),
    ]
    .boxed()
}

/// A statement tree without return/break/continue/throw, so every
/// statement stays reachable.
fn plain_stmt() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (var(), expr()).prop_map(|(v, e)| format!("{v} = {e};")),
        (var(), expr()).prop_map(|(v, e)| format!("{v} += {e};")),
        Just("t++;".to_string()),
        Just(";".to_string()),
    ]
    .boxed();
    leaf.prop_recursive(3, 16, 2, |inner: BoxedStrategy<String>| {
        prop_oneof![
            (expr(), inner.clone(), inner.clone())
                .prop_map(|(c, s1, s2)| format!("if ({c} > 0) {{ {s1} }} else {{ {s2} }}")),
            (expr(), inner.clone()).prop_map(|(c, s)| format!("if ({c} > 1) {{ {s} }}")),
            (expr(), inner.clone()).prop_map(|(c, s)| format!("while ({c} < 10) {{ {s} }}")),
            (inner.clone()).prop_map(|s| format!("for (int k = 0; k < 5; k++) {{ {s} }}")),
            (expr(), inner.clone()).prop_map(|(c, s)| format!("do {{ {s} }} while ({c} < 3);")),
            (inner.clone(), inner.clone()).prop_map(|(s1, s2)| format!("{s1} {s2}")),
        ]
        .boxed()
    })
    .boxed()
}

/// A statement tree that may also terminate or jump.
fn wild_stmt() -> BoxedStrategy<String> {
    let plain = plain_stmt();
    (
        plain.clone(),
        prop_oneof![
            Just("".to_string()),
            Just("break;".to_string()),
            Just("continue;".to_string()),
            Just("return a;".to_string()),
        ],
        plain,
    )
        .prop_map(|(s1, term, s2)| {
            // The terminator lands between two generated trees, inside a
            // loop so break/continue are meaningful (stray ones are
            // still handled by the builder — also worth exercising).
            format!("for (int w = 0; w < 4; w++) {{ {s1} {term} }} {s2}")
        })
        .boxed()
}

fn build_cfg(body: &str) -> Cfg {
    let src = format!(
        "class G {{ static int m(int a, int b, int n) {{ int t = 0; {body} return t; }} }}"
    );
    let unit = jepo_jlang::parse_unit(&src)
        .unwrap_or_else(|e| panic!("generated body failed to parse: {e}\n{src}"));
    Cfg::build(&unit.types[0].methods[0]).expect("method has a body")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_statement_reaches_a_cfg_node(body in plain_stmt()) {
        let src = format!(
            "class G {{ static int m(int a, int b, int n) {{ int t = 0; {body} return t; }} }}"
        );
        let unit = jepo_jlang::parse_unit(&src)
            .unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
        let method = &unit.types[0].methods[0];
        let cfg = Cfg::build(method).expect("body exists");
        let reach = cfg.reachable();
        for s in &method.body.as_ref().unwrap().stmts {
            jepo_jlang::walk_stmts(s, &mut |st| {
                if matches!(st.kind, StmtKind::Block(_)) {
                    return; // blocks are transparent: no node of their own
                }
                match cfg.stmt_nodes.get(&st.span) {
                    Some(&n) => prop_assert!(
                        reach[n],
                        "stmt at {:?} lowered to unreachable node {n}\n{src}",
                        st.span
                    ),
                    None => panic!("stmt at {:?} has no CFG node\n{src}", st.span),
                }
            });
        }
    }

    #[test]
    fn back_edges_target_structural_loop_headers(body in wild_stmt()) {
        let cfg = build_cfg(&body);
        let headers: std::collections::HashSet<usize> =
            cfg.loops.iter().map(|l| l.header).collect();
        for (tail, head) in back_edges(&cfg) {
            prop_assert!(
                headers.contains(&head),
                "back edge {tail}->{head} targets a non-header\nbody: {body}"
            );
        }
    }

    #[test]
    fn solver_reaches_fixpoint_on_random_methods(body in wild_stmt()) {
        let cfg = build_cfg(&body);
        let bound = iteration_bound(&cfg);
        let mut vars = VarTable::default();
        let live = Liveness::build(&cfg, &mut vars);
        let sol = solve(&cfg, &live);
        prop_assert!(sol.converged, "liveness diverged\nbody: {body}");
        prop_assert!(sol.iterations <= bound);
        let reach = ReachingDefs::build(&cfg, &mut vars);
        let sol = solve(&cfg, &reach);
        prop_assert!(sol.converged, "reaching defs diverged\nbody: {body}");
        prop_assert!(sol.iterations <= bound);
        let sol = solve(&cfg, &Dominators);
        prop_assert!(sol.converged, "dominators diverged\nbody: {body}");
        prop_assert!(sol.iterations <= bound);
    }

    #[test]
    fn unit_flow_never_panics_on_random_methods(body in wild_stmt()) {
        let src = format!(
            "class G {{ static int m(int a, int b, int n) {{ int t = 0; {body} return t; }} }}"
        );
        let unit = jepo_jlang::parse_unit(&src)
            .unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
        let flow = jepo_analyzer::UnitFlow::build(&unit);
        // Loop context over every source line must be well-defined.
        for line in 1..=(src.lines().count() as u32) {
            let (depth, product) = flow.loop_context(line);
            prop_assert!(product >= 1.0 || depth == 0);
        }
    }
}
