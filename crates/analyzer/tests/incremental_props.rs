//! Property tests for the incremental analysis layer.
//!
//! Over generated corpora ([`jepo_analyzer::gen`]) with random sizes,
//! anti-pattern rates, and dirty subsets, four contracts:
//!
//! 1. **Exact invalidation** — after a warm run over an edited corpus,
//!    exactly the edited files were re-analyzed: cache misses equal the
//!    dirty-set size, hits cover the rest (also mirrored into the
//!    `analyzer.cache.hit`/`analyzer.cache.miss` metrics when the
//!    `jepo-trace` registry collects).
//! 2. **Warm ≡ cold** — incremental output is bit-identical to a
//!    from-scratch analysis of the same revision, for jobs ∈ {1, 2, 4},
//!    both in the engine's `(file, line, component)` order and after the
//!    impact ranking (`(impact desc, file, line, component)`) the views
//!    apply — the deterministic total order holds across the cache
//!    boundary.
//! 3. **Disk round-trip** — saving the warm cache and reloading it
//!    preserves both the hit set and the output bytes.
//! 4. **Corruption tolerance** — a mangled cache file only shrinks the
//!    warm set; output is still identical to cold.

use jepo_analyzer::gen::{generate_project_with, GenConfig};
use jepo_analyzer::{AnalysisCache, Analyzer, Suggestion};
use proptest::prelude::*;

fn cfg(files: usize, seed: u64, rate: f64) -> GenConfig {
    GenConfig {
        files,
        seed,
        methods_per_class: 4,
        pattern_rate: rate,
    }
}

/// Byte rendering used for the "byte-for-byte" comparisons: every field
/// of every row, impact as exact bits.
fn render(rows: &[Suggestion]) -> String {
    rows.iter()
        .map(|s| {
            format!(
                "{}|{}|{}|{:?}|{}|{}|{}|{:016x}\n",
                s.file,
                s.class,
                s.line,
                s.component,
                s.matched,
                s.message,
                s.loop_depth,
                s.impact.to_bits()
            )
        })
        .collect()
}

/// Impact-ranked rendering (the view order of satellite concern: the
/// PR 3 `(impact desc, file, line, component)` total order).
fn render_ranked(rows: &[Suggestion]) -> String {
    let mut ranked = rows.to_vec();
    jepo_analyzer::impact::rank(&mut ranked);
    render(&ranked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dirty_subset_invalidates_exactly(
        files in 8usize..28,
        seed in 0u64..1000,
        rate_pct in 0u32..100,
        dirty_mask in 0u64..u64::MAX,
    ) {
        let cfg = cfg(files, seed, rate_pct as f64 / 100.0);
        let analyzer = Analyzer::with_extensions();

        // Revision 0: cold, then warm the cache.
        let rev0 = generate_project_with(&cfg, |_| 0);
        let mut cache = analyzer.new_cache();
        let first = analyzer.analyze_project_incremental_jobs(&rev0, &mut cache, 1);
        prop_assert_eq!(cache.stats().last_misses, files as u64);
        let cold0 = analyzer.analyze_project_jobs(&rev0, 1);
        prop_assert_eq!(&first, &cold0);

        // Revision 1: a random subset of files is edited.
        let dirty: Vec<usize> = (0..files).filter(|i| dirty_mask >> (i % 64) & 1 == 1).collect();
        let rev1 = generate_project_with(&cfg, |i| u64::from(dirty.contains(&i)));
        let cold1 = analyzer.analyze_project_jobs(&rev1, 1);

        let reg = jepo_trace::Registry::global();
        let (hit0, miss0) = (
            reg.counter("analyzer.cache.hit").value(),
            reg.counter("analyzer.cache.miss").value(),
        );
        reg.enable();
        let warm = analyzer.analyze_project_incremental_jobs(&rev1, &mut cache, 2);
        reg.disable();

        // (a) exactly the dirty files were re-analyzed...
        prop_assert_eq!(cache.stats().last_misses, dirty.len() as u64);
        prop_assert_eq!(cache.stats().last_hits, (files - dirty.len()) as u64);
        // ...visible through the metrics registry too (other tests may
        // run concurrently against the global registry, so ≥).
        prop_assert!(
            reg.counter("analyzer.cache.hit").value()
                >= hit0 + (files - dirty.len()) as u64
        );
        prop_assert!(
            reg.counter("analyzer.cache.miss").value() >= miss0 + dirty.len() as u64
        );

        // (b) warm output is bit-identical to cold, every job count,
        // in both the engine order and the impact-ranked view order.
        prop_assert_eq!(render(&warm), render(&cold1));
        prop_assert_eq!(render_ranked(&warm), render_ranked(&cold1));
        for jobs in [1usize, 4] {
            let mut fresh_warm_cache = cache.clone();
            let again =
                analyzer.analyze_project_incremental_jobs(&rev1, &mut fresh_warm_cache, jobs);
            prop_assert_eq!(fresh_warm_cache.stats().last_misses, 0);
            prop_assert_eq!(render(&again), render(&cold1), "jobs={}", jobs);
        }
    }

    #[test]
    fn disk_round_trip_preserves_warm_set_and_bytes(
        files in 4usize..16,
        seed in 0u64..1000,
    ) {
        let cfg = cfg(files, seed, 0.6);
        let analyzer = Analyzer::with_extensions();
        let project = generate_project_with(&cfg, |_| 0);
        let cold = analyzer.analyze_project_jobs(&project, 1);

        let mut cache = analyzer.new_cache();
        analyzer.analyze_project_incremental_jobs(&project, &mut cache, 1);
        let path = std::env::temp_dir().join(format!(
            "jepo-incr-prop-{}-{}-{}.jepocache",
            std::process::id(),
            files,
            seed
        ));
        cache.save(&path).unwrap();

        let mut reloaded = AnalysisCache::load(&path, analyzer.fingerprint());
        std::fs::remove_file(&path).ok();
        let warm = analyzer.analyze_project_incremental_jobs(&project, &mut reloaded, 2);
        prop_assert_eq!(reloaded.stats().last_misses, 0, "disk cache fully warm");
        prop_assert_eq!(render(&warm), render(&cold));
        prop_assert_eq!(render_ranked(&warm), render_ranked(&cold));
    }

    #[test]
    fn corrupt_cache_only_shrinks_the_warm_set(
        files in 4usize..12,
        seed in 0u64..1000,
        cut_num in 1usize..100,
        flip in 0usize..4096,
    ) {
        let cfg = cfg(files, seed, 0.5);
        let analyzer = Analyzer::with_extensions();
        let project = generate_project_with(&cfg, |_| 0);
        let cold = analyzer.analyze_project_jobs(&project, 1);

        let mut cache = analyzer.new_cache();
        analyzer.analyze_project_incremental_jobs(&project, &mut cache, 1);
        let text = cache.serialize();

        // Truncate at a random fraction, then flip a byte.
        let cut = text.len() * cut_num / 100;
        let mut bytes = text.as_bytes()[..cut].to_vec();
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] ^= 0x41;
        }
        let mangled = String::from_utf8_lossy(&bytes).into_owned();

        let mut mangled_cache =
            AnalysisCache::deserialize(&mangled, analyzer.fingerprint());
        let warm = analyzer.analyze_project_incremental_jobs(&project, &mut mangled_cache, 1);
        // Whatever survived: never a wrong answer, at worst more misses.
        prop_assert!(mangled_cache.stats().last_hits <= files as u64);
        prop_assert_eq!(render(&warm), render(&cold));
    }
}
