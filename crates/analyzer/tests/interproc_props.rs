//! Property tests for the interprocedural layer ([`jepo_analyzer::interproc`]).
//!
//! Over *random call graphs* — including mutually recursive ones — four
//! contracts:
//!
//! 1. **Termination + determinism** — [`ProgramFacts::build`] finishes on
//!    arbitrary (cyclic) graphs, and building twice yields bit-identical
//!    summaries (fingerprints and energy bits).
//! 2. **Saturation / monotonicity** — every numeric summary fact is
//!    finite, non-negative, capped at [`ENERGY_CAP`]; along an acyclic
//!    call edge the caller's energy dominates the callee's.
//! 3. **SCC condensation** — two methods share an SCC exactly when each
//!    reaches the other, recomputed independently in the test over the
//!    known adjacency.
//! 4. **Purity soundness** — statically: a method is summarized pure
//!    exactly when no transitively reachable body writes the tracked
//!    static; dynamically: running every summarized-pure method on the
//!    JVM ([`jepo_jvm::Vm`]) leaves the program's static state
//!    untouched (the summary may be conservatively impure, never
//!    falsely pure).
//!
//! Plus snapshot-pinned counts: each interprocedural rule fires on the
//! generated corpus with an exact, jobs-independent count.

use jepo_analyzer::gen::{generate_project, GenConfig};
use jepo_analyzer::interproc::ENERGY_CAP;
use jepo_analyzer::{Analyzer, JavaComponent, ProgramFacts, Suggestion};
use jepo_jlang::JavaProject;
use proptest::prelude::*;

/// Build the source of one class whose methods form the given call
/// graph. Method `i` calls every `edges[i]` member with a decremented
/// argument (so the dynamic oracle terminates); bit `i` of `impure`
/// makes method `i` write the tracked static.
fn graph_source(n: usize, edges: &[Vec<usize>], impure: u64) -> String {
    let mut src = String::from("public class G {\n    static int track;\n");
    for (i, callees) in edges.iter().enumerate() {
        src.push_str(&format!(
            "    static int m{i}(int x) {{\n        if (x <= 0) {{ return 1; }}\n        \
             int s = x % 7;\n"
        ));
        if impure >> i & 1 == 1 {
            src.push_str("        track = track + 1;\n");
        }
        for &j in callees {
            src.push_str(&format!("        s = s + m{j}(x - 1);\n"));
        }
        src.push_str("        return s;\n    }\n");
    }
    // The oracle's entry point: print the static before and after each
    // method, so stdout line k vs k+1 brackets the call to `m{k}`.
    src.push_str("    public static void main(String[] args) {\n");
    for i in 0..n {
        src.push_str(&format!(
            "        System.out.println(track);\n        int r{i} = m{i}(3);\n"
        ));
    }
    src.push_str("        System.out.println(track);\n    }\n}\n");
    src
}

/// Decode a random adjacency: method `i`'s callees come from `n` bits of
/// the masks array (mutual recursion arises whenever `i→j` and `j→i`
/// bits are both set; self-loops allowed).
fn decode_edges(n: usize, masks: &[u64]) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| (0..n).filter(|&j| masks[i] >> j & 1 == 1).collect())
        .collect()
}

/// Transitive reachability (including the start node itself only if it
/// lies on a cycle through itself — here: plain BFS from the successors,
/// then also `i` when `i ∈ reach(succ(i))` ∪ self-loop).
fn reachable_from(n: usize, edges: &[Vec<usize>], start: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = edges[start].clone();
    while let Some(v) = stack.pop() {
        if !seen[v] {
            seen[v] = true;
            stack.extend(edges[v].iter().copied());
        }
    }
    seen
}

fn facts_for(src: &str) -> ProgramFacts {
    let mut project = JavaProject::new();
    project
        .add_file("G.java", src)
        .expect("generated graph parses");
    ProgramFacts::build(&project)
}

/// Index of `m{i}` inside `facts.methods()`.
fn method_index(facts: &ProgramFacts, i: usize) -> usize {
    let name = format!("m{i}");
    facts
        .methods()
        .iter()
        .position(|m| m.class == "G" && m.name == name)
        .unwrap_or_else(|| panic!("m{i} summarized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_call_graphs_terminate_deterministically(
        n in 2usize..10,
        masks in proptest::collection::vec(any::<u64>(), 10),
        impure in any::<u64>(),
    ) {
        let edges = decode_edges(n, &masks);
        let src = graph_source(n, &edges, impure);
        let facts = facts_for(&src);
        let again = facts_for(&src);

        for i in 0..n {
            let idx = method_index(&facts, i);
            let s = facts.summary(idx);

            // (1) Determinism: same source → bit-identical summary.
            let idx2 = method_index(&again, i);
            prop_assert_eq!(s.fingerprint(), again.summary(idx2).fingerprint());
            prop_assert_eq!(
                s.energy.to_bits(),
                again.summary(idx2).energy.to_bits()
            );

            // (2) Saturation: finite, non-negative, capped — even on
            // mutually recursive graphs where naive propagation would
            // diverge under trip weighting.
            for v in [s.energy, s.allocs_per_call, s.concats_per_call, s.expensive_per_call] {
                prop_assert!(v.is_finite() && (0.0..=ENERGY_CAP).contains(&v), "{v}");
            }

            // (4a) Static purity soundness, exact: pure iff no impure
            // body is transitively reachable (including `i`'s own).
            let reach = reachable_from(n, &edges, i);
            let sees_impure = (impure >> i & 1 == 1)
                || (0..n).any(|j| reach[j] && impure >> j & 1 == 1);
            prop_assert_eq!(
                s.pure,
                !sees_impure,
                "m{} purity vs reachability over {:?}",
                i,
                edges
            );
        }

        // (3) SCC condensation == mutual reachability.
        for i in 0..n {
            let ri = reachable_from(n, &edges, i);
            for (j, &rij) in ri.iter().enumerate() {
                if i == j {
                    continue;
                }
                let rj = reachable_from(n, &edges, j);
                let mutual = rij && rj[i];
                let same = facts.scc_of(method_index(&facts, i))
                    == facts.scc_of(method_index(&facts, j));
                prop_assert_eq!(same, mutual, "SCC(m{}) vs SCC(m{})", i, j);
            }
        }

        // (2b) Monotonicity across acyclic edges: a caller's energy
        // dominates each callee it invokes from a different SCC (the
        // call contributes the callee's full per-invocation estimate).
        for (i, callees) in edges.iter().enumerate() {
            let ii = method_index(&facts, i);
            for &j in callees {
                let jj = method_index(&facts, j);
                if facts.scc_of(ii) != facts.scc_of(jj)
                    && facts.summary(jj).energy < ENERGY_CAP
                {
                    prop_assert!(
                        facts.summary(ii).energy >= facts.summary(jj).energy,
                        "energy(m{})={} < callee energy(m{})={}",
                        i,
                        facts.summary(ii).energy,
                        j,
                        facts.summary(jj).energy
                    );
                }
            }
        }
    }

    #[test]
    fn summarized_pure_methods_are_dynamically_pure(
        n in 2usize..6,
        masks in proptest::collection::vec(any::<u64>(), 6),
        impure in any::<u64>(),
    ) {
        let edges = decode_edges(n, &masks);
        let src = graph_source(n, &edges, impure);
        let facts = facts_for(&src);

        // Dynamic oracle: run the whole program once; stdout prints the
        // tracked static before and after each `m{i}(3)` call.
        let mut vm = jepo_jvm::Vm::from_source(&src).expect("oracle compiles");
        let outcome = vm.run_main().expect("oracle runs");
        let snaps: Vec<i64> = outcome
            .stdout
            .lines()
            .map(|l| l.trim().parse().expect("numeric snapshot"))
            .collect();
        prop_assert_eq!(snaps.len(), n + 1, "one snapshot per bracket");

        for i in 0..n {
            let s = facts.summary(method_index(&facts, i));
            if s.pure {
                // A summarized-pure method must not move the static.
                // (The converse is allowed: the summary may be
                // conservatively impure on a dynamically-silent path.)
                prop_assert_eq!(
                    snaps[i], snaps[i + 1],
                    "m{} summarized pure but moved track {} -> {}",
                    i, snaps[i], snaps[i + 1]
                );
            }
        }
    }
}

/// Byte rendering for cross-jobs identity checks.
fn render(rows: &[Suggestion]) -> String {
    rows.iter()
        .map(|s| {
            format!(
                "{}|{}|{}|{:?}|{}|{:016x}\n",
                s.file,
                s.class,
                s.line,
                s.component,
                s.matched,
                s.impact.to_bits()
            )
        })
        .collect()
}

/// Snapshot-pinned rule counts on the generated corpus: each
/// interprocedural rule fires, with an exact count that is identical
/// for every job count. A drift here means a rule, the corpus
/// templates, or the call-graph resolution changed behavior.
#[test]
fn interproc_rule_counts_are_pinned_on_the_corpus() {
    let cfg = GenConfig {
        files: 40,
        seed: 7,
        methods_per_class: 6,
        pattern_rate: 0.6,
    };
    let project = generate_project(&cfg);
    let analyzer = Analyzer::interprocedural();
    let rows = analyzer.analyze_project_jobs(&project, 1);
    for jobs in [2usize, 4] {
        let other = analyzer.analyze_project_jobs(&project, jobs);
        assert_eq!(render(&rows), render(&other), "jobs={jobs}");
    }
    let count = |c: JavaComponent| rows.iter().filter(|s| s.component == c).count();
    let pinned = [
        (JavaComponent::CalleeAllocationInLoop, 9),
        (JavaComponent::CalleeStringConcat, 11),
        (JavaComponent::InvariantPureCall, 11),
    ];
    for (component, expected) in pinned {
        let got = count(component);
        assert!(got > 0, "{component:?} must fire on the corpus");
        assert_eq!(
            got, expected,
            "{component:?} count drifted on the pinned corpus (files=40, seed=7, rate=0.6)"
        );
    }
}
