//! Deterministic corpus generator — thousands of Java-subset files with
//! controlled anti-pattern rates.
//!
//! The bundled mini-WEKA corpus is 14 files; incremental analysis only
//! shows its worth when cold-vs-warm legs measure real work at corpus
//! scale. [`generate_project`] synthesizes an arbitrary number of
//! parseable Java-subset files from a seed: each file is a pure function
//! of `(seed, index, rev)`, so file `i` is byte-identical across runs,
//! machines, and corpus sizes, and bumping `rev` for a subset of indices
//! models an edit (the invalidation tests and the `warm_1pct_dirty`
//! bench leg lean on this).
//!
//! Method bodies are drawn from two template menus: *clean* bodies that
//! trip no Table I rule, and *dirty* bodies each seeded with a specific
//! anti-pattern (string concat in a loop, modulus in a loop, manual
//! array copy, column-major traversal, ternary, `compareTo`,
//! loop-invariant op, short-circuit chains, plus three helper/hot-loop
//! *pairs* that only the interprocedural rules can see: an allocating
//! callee called in a loop, concat-via-helper, and a loop-invariant pure
//! expensive call). [`GenConfig::pattern_rate`] sets the per-method
//! probability of drawing from the dirty menu, so a corpus can range
//! from energy-clean to saturated.
//!
//! Every file also carries a `link()` method calling a deterministic
//! *other* generated file's `revision()`, so the whole-program call
//! graph has cross-file edges at corpus scale and the dependency-aware
//! cache has real edges to track.

use jepo_jlang::JavaProject;
use rand::prelude::*;

/// Knobs for corpus synthesis. All fields feed the per-file seed, so any
/// change regenerates different (but still deterministic) sources.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of files (one public class per file).
    pub files: usize,
    /// Master seed; file `i` derives its stream from `(seed, i)`.
    pub seed: u64,
    /// Methods per class.
    pub methods_per_class: usize,
    /// Probability that a method body carries a Table I anti-pattern.
    pub pattern_rate: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            files: 1000,
            seed: 42,
            methods_per_class: 6,
            pattern_rate: 0.35,
        }
    }
}

/// Project-relative name of generated file `index`.
pub fn file_name(index: usize) -> String {
    format!("gen/Gen{index:05}.java")
}

fn derived_rng(cfg: &GenConfig, index: usize) -> StdRng {
    let mix = crate::cache::fnv1a64(
        format!(
            "gen;{};{};{};{:.6};{index}",
            cfg.seed, cfg.files, cfg.methods_per_class, cfg.pattern_rate
        )
        .as_bytes(),
    );
    StdRng::seed_from_u64(mix)
}

/// Generate the source text of file `index` at revision `rev`.
///
/// The random stream depends only on `(cfg, index)`; `rev` is stamped
/// into a trivial `revision()` method body, so bumping it changes the
/// content hash (the file reads as *edited*) without changing what the
/// analyzer finds — exactly what the warm-leg benches and invalidation
/// tests need to isolate re-analysis cost from result drift.
pub fn generate_source(cfg: &GenConfig, index: usize, rev: u64) -> String {
    let mut rng = derived_rng(cfg, index);
    let class = format!("Gen{index:05}");
    let mut src = String::with_capacity(2048);
    src.push_str("package gen;\n\n");
    src.push_str(&format!("public class {class} {{\n"));
    src.push_str(&format!("    int base = {};\n", rng.gen_range(1..100)));
    src.push_str(&format!(
        "    public long revision() {{ return {rev}L; }}\n\n"
    ));
    // Cross-file call-graph edge: every file calls a deterministic
    // other file's `revision()`. The callee summary is rev-invariant
    // (literal values are not part of summary fingerprints), so rev
    // bumps still dirty exactly one file, while the dependency graph
    // has real cross-file edges at corpus scale.
    if cfg.files > 1 {
        let j = (index * 7 + 13) % cfg.files;
        let j = if j == index { (j + 1) % cfg.files } else { j };
        src.push_str(&format!(
            "    public long link() {{\n        Gen{j:05} peer = new Gen{j:05}();\n        \
             return peer.revision();\n    }}\n\n"
        ));
    }
    for m in 0..cfg.methods_per_class.max(1) {
        let dirty = rng.gen_bool(cfg.pattern_rate.clamp(0.0, 1.0));
        let body = if dirty {
            dirty_method(&mut rng, m)
        } else {
            clean_method(&mut rng, m)
        };
        src.push_str(&body);
        src.push('\n');
    }
    src.push_str("}\n");
    src
}

/// A method that trips no rule (modelled on the engine's
/// `clean_code_has_no_suggestions` fixtures): `int` arithmetic,
/// `String.equals`, `System.arraycopy`, plain `if/else`.
fn clean_method(rng: &mut StdRng, m: usize) -> String {
    let c = rng.gen_range(2..50);
    match rng.gen_range(0..4u32) {
        0 => format!(
            "    public int sum{m}(int[] a) {{\n        int s = {c};\n        \
             for (int i = 0; i < a.length; i++) {{\n            s = s + a[i];\n        }}\n        \
             return s;\n    }}\n"
        ),
        1 => format!(
            "    public boolean eq{m}(String a, String b) {{\n        \
             return a.equals(b);\n    }}\n"
        ),
        2 => format!(
            "    public void copy{m}(int[] a, int[] b) {{\n        \
             System.arraycopy(a, 0, b, 0, a.length);\n    }}\n"
        ),
        _ => format!(
            "    public int scale{m}(int x, int y) {{\n        \
             if (x > y) {{\n            return x * {c};\n        }}\n        \
             return y + {c};\n    }}\n"
        ),
    }
}

/// A method (or helper/hot-loop pair) seeded with one specific
/// anti-pattern — Table I rows plus the three interprocedural shapes.
fn dirty_method(rng: &mut StdRng, m: usize) -> String {
    let c = rng.gen_range(2..50);
    match rng.gen_range(0..11u32) {
        // String concatenation onto a loop-carried accumulator.
        0 => format!(
            "    public String join{m}(String[] parts, int n) {{\n        \
             String s = \"\";\n        \
             for (int i = 0; i < n; i++) {{\n            s += parts[i];\n        }}\n        \
             return s;\n    }}\n"
        ),
        // Modulus inside a loop.
        1 => format!(
            "    public int hash{m}(int[] a) {{\n        int h = 0;\n        \
             for (int i = 0; i < a.length; i++) {{\n            \
             h = h + a[i] % {c};\n        }}\n        return h;\n    }}\n"
        ),
        // Manual element-by-element array copy.
        2 => format!(
            "    public void mcopy{m}(int[] a, int[] b, int n) {{\n        \
             for (int i = 0; i < n; i++) {{\n            b[i] = a[i];\n        }}\n    }}\n"
        ),
        // Column-major 2-D traversal.
        3 => format!(
            "    public double colsum{m}(double[][] mat, int n) {{\n        \
             double s = 0.0;\n        \
             for (int j = 0; j < n; j++) {{\n            \
             for (int i = 0; i < n; i++) {{\n                s += mat[i][j];\n            \
             }}\n        }}\n        return s;\n    }}\n"
        ),
        // Ternary operator.
        4 => format!(
            "    public int pick{m}(int x) {{\n        \
             return x > {c} ? x : {c} - x;\n    }}\n"
        ),
        // String.compareTo used for equality.
        5 => format!(
            "    public boolean same{m}(String a, String b) {{\n        \
             return a.compareTo(b) == 0;\n    }}\n"
        ),
        // Loop-invariant expensive op (modulus of loop-invariant operands).
        6 => format!(
            "    public double norm{m}(double[] p, int buckets) {{\n        \
             double s = 0.0;\n        \
             for (int i = 0; i < p.length; i++) {{\n            \
             s = s + p[i] * (buckets % {c} + 1);\n        }}\n        return s;\n    }}\n"
        ),
        // Short-circuit chain (operand-order suggestion).
        7 => format!(
            "    public boolean range{m}(int x) {{\n        \
             return x >= 0 && x <= {c} && x != {};\n    }}\n",
            c / 2
        ),
        // INTERPROC: a helper that allocates per call, called in a loop
        // — invisible to the intraprocedural object-creation rule.
        8 => format!(
            "    public int[] makeBuf{m}(int n) {{\n        return new int[n];\n    }}\n\n    \
             public int sumBuf{m}(int n) {{\n        int s = 0;\n        \
             for (int i = 0; i < n; i++) {{\n            \
             int[] b = makeBuf{m}({c});\n            s = s + b.length;\n        }}\n        \
             return s;\n    }}\n"
        ),
        // INTERPROC: concat-via-helper — the `+` hides in the callee.
        9 => format!(
            "    public String pad{m}(String a, String b) {{\n        \
             return a + b;\n    }}\n\n    \
             public String label{m}(String[] parts, int n) {{\n        \
             String s = \"\";\n        \
             for (int i = 0; i < n; i++) {{\n            \
             s = pad{m}(s, parts[i]);\n        }}\n        return s;\n    }}\n"
        ),
        // INTERPROC: loop-invariant call to a pure expensive callee.
        _ => format!(
            "    public int bucket{m}(int x, int k) {{\n        \
             return x % k + x / (k + 1);\n    }}\n\n    \
             public int spread{m}(int n, int x, int k) {{\n        int s = 0;\n        \
             for (int i = 0; i < n; i++) {{\n            \
             s = s + bucket{m}(x, {c});\n        }}\n        return s;\n    }}\n"
        ),
    }
}

/// Generate the whole corpus at revision 0.
///
/// Panics on a parse failure — the generator only emits the subset the
/// parser accepts, so a failure is a generator bug, not an input
/// problem (pinned by the `every_template_parses` test).
pub fn generate_project(cfg: &GenConfig) -> JavaProject {
    generate_project_with(cfg, |_| 0)
}

/// Generate the corpus with a per-file revision (models a changeset:
/// `rev(i) > 0` marks file `i` as edited relative to revision 0).
pub fn generate_project_with(cfg: &GenConfig, rev: impl Fn(usize) -> u64) -> JavaProject {
    let mut project = JavaProject::new();
    for i in 0..cfg.files {
        let name = file_name(i);
        let src = generate_source(cfg, i, rev(i));
        project
            .add_file(&name, &src)
            .unwrap_or_else(|e| panic!("generated {name} does not parse: {e}"));
    }
    project
}

/// Write the corpus under `dir` (used by `jepo gen-corpus` so CI can
/// stage two on-disk revisions and diff them).
pub fn write_corpus(dir: &std::path::Path, cfg: &GenConfig) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir.join("gen"))?;
    for i in 0..cfg.files {
        std::fs::write(dir.join(file_name(i)), generate_source(cfg, i, 0))?;
    }
    Ok(cfg.files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Analyzer;

    fn small(files: usize, rate: f64) -> GenConfig {
        GenConfig {
            files,
            seed: 7,
            methods_per_class: 6,
            pattern_rate: rate,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small(20, 0.4);
        for i in [0, 7, 19] {
            assert_eq!(generate_source(&cfg, i, 0), generate_source(&cfg, i, 0));
        }
        assert_ne!(
            generate_source(&cfg, 0, 0),
            generate_source(&cfg, 1, 0),
            "files differ from each other"
        );
        let other_seed = GenConfig { seed: 8, ..cfg };
        assert_ne!(
            generate_source(&cfg, 0, 0),
            generate_source(&other_seed, 0, 0),
            "seed changes content"
        );
    }

    #[test]
    fn every_template_parses() {
        // A high-rate and a zero-rate corpus together exercise every
        // clean and dirty template arm many times over.
        generate_project(&small(60, 1.0));
        generate_project(&small(60, 0.0));
    }

    #[test]
    fn rev_changes_hash_but_not_findings() {
        let cfg = small(8, 0.5);
        let analyzer = Analyzer::with_extensions();
        for i in 0..cfg.files {
            let a = generate_source(&cfg, i, 0);
            let b = generate_source(&cfg, i, 1);
            assert_ne!(
                crate::cache::content_hash(&a),
                crate::cache::content_hash(&b),
                "rev must dirty the file"
            );
            let ua = jepo_jlang::parse_unit(&a).unwrap();
            let ub = jepo_jlang::parse_unit(&b).unwrap();
            let name = file_name(i);
            assert_eq!(
                analyzer.analyze_unit(&name, &ua),
                analyzer.analyze_unit(&name, &ub),
                "rev is analysis-neutral"
            );
        }
    }

    #[test]
    fn pattern_rate_controls_findings() {
        let analyzer = Analyzer::with_extensions();
        let clean = analyzer.analyze_project_jobs(&generate_project(&small(30, 0.0)), 1);
        let noisy = analyzer.analyze_project_jobs(&generate_project(&small(30, 1.0)), 1);
        assert_eq!(clean.len(), 0, "clean templates trip nothing: {clean:?}");
        assert!(
            noisy.len() >= 30,
            "saturated corpus averages ≥1 finding per file, got {}",
            noisy.len()
        );
    }

    #[test]
    fn corpus_writes_to_disk_and_reloads() {
        let dir = std::env::temp_dir().join(format!("jepo-gen-{}", std::process::id()));
        let cfg = small(5, 0.6);
        assert_eq!(write_corpus(&dir, &cfg).unwrap(), 5);
        let mut project = JavaProject::new();
        for i in 0..cfg.files {
            let text = std::fs::read_to_string(dir.join(file_name(i))).unwrap();
            assert_eq!(text, generate_source(&cfg, i, 0));
            project.add_file(&file_name(i), &text).unwrap();
        }
        assert_eq!(project.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
