//! The analysis engine — the *JEPO optimizer* flow.
//!
//! §VII: the optimizer "provides suggestions for all the classes in a
//! Java project"; its view lists class name, line number, and suggestion
//! (Fig. 5). The engine runs every Table I rule over every file and
//! returns the suggestion rows sorted the way the view shows them.

use crate::rules::{all_rules, Rule, RuleCtx};
use crate::suggestion::Suggestion;
use jepo_jlang::{CompilationUnit, JavaProject, ParseError};

/// A configured analyzer (rule set is pluggable for ablations).
pub struct Analyzer {
    rules: Vec<Box<dyn Rule>>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// Analyzer with all Table I rules.
    pub fn new() -> Analyzer {
        Analyzer { rules: all_rules() }
    }

    /// Analyzer with a custom rule subset.
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Analyzer {
        Analyzer { rules }
    }

    /// All Table I rules plus the extension rules (exceptions/objects).
    pub fn with_extensions() -> Analyzer {
        let mut rules = all_rules();
        rules.extend(crate::rules::extended_rules());
        Analyzer { rules }
    }

    /// Number of active rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Analyze one parsed unit.
    pub fn analyze_unit(&self, file: &str, unit: &CompilationUnit) -> Vec<Suggestion> {
        let ctx = RuleCtx { file, unit };
        let mut out: Vec<Suggestion> = self.rules.iter().flat_map(|r| r.check(&ctx)).collect();
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.component).cmp(&(b.file.as_str(), b.line, b.component))
        });
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.component == b.component);
        out
    }

    /// Analyze every file of a project (Fig. 5's "all the classes in a
    /// Java project").
    pub fn analyze_project(&self, project: &JavaProject) -> Vec<Suggestion> {
        let mut out = Vec::new();
        for f in project.files() {
            out.extend(self.analyze_unit(&f.name, &f.unit));
        }
        out
    }
}

/// Convenience: parse and analyze one source string.
pub fn analyze_source(file: &str, src: &str) -> Result<Vec<Suggestion>, ParseError> {
    let unit = jepo_jlang::parse_unit(src)?;
    Ok(Analyzer::new().analyze_unit(file, &unit))
}

/// Convenience: analyze a parsed unit with the default rules.
pub fn analyze_unit(file: &str, unit: &CompilationUnit) -> Vec<Suggestion> {
    Analyzer::new().analyze_unit(file, unit)
}

/// Convenience: analyze a whole project with the default rules.
pub fn analyze_project(project: &JavaProject) -> Vec<Suggestion> {
    Analyzer::new().analyze_project(project)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suggestion::JavaComponent;

    /// A source exercising every Table I component at least once.
    const KITCHEN_SINK: &str = r#"
class Sink {
    static int hits;
    double rate = 123456.0;
    Double boxed;

    String join(String[] parts, int n) {
        String s = "";
        for (int i = 0; i < n; i++) { s += parts[i]; }
        return s;
    }

    boolean same(String a, String b) { return a.compareTo(b) == 0; }

    int pick(int x) { return x > 0 && x < 9 && x != 4 ? x % 7 : 0; }

    void copy(int[] a, int[] b, int n) {
        for (int i = 0; i < n; i++) { b[i] = a[i]; }
    }

    double colSum(double[][] m, int n) {
        double s = 0;
        for (int j = 0; j < n; j++)
            for (int i = 0; i < n; i++)
                s += m[i][j];
        return s;
    }

    long slow(short k) { return k; }
}
"#;

    #[test]
    fn kitchen_sink_triggers_every_component() {
        let got = analyze_source("Sink.java", KITCHEN_SINK).unwrap();
        let fired: std::collections::HashSet<JavaComponent> =
            got.iter().map(|s| s.component).collect();
        for c in JavaComponent::ALL {
            assert!(fired.contains(&c), "{c:?} did not fire\nall: {fired:?}");
        }
    }

    #[test]
    fn results_are_sorted_and_deduped() {
        let got = analyze_source("Sink.java", KITCHEN_SINK).unwrap();
        for w in got.windows(2) {
            let a = (&w[0].file, w[0].line, w[0].component);
            let b = (&w[1].file, w[1].line, w[1].component);
            assert!(a <= b, "unsorted: {a:?} > {b:?}");
            assert_ne!(a, b, "duplicate row");
        }
    }

    #[test]
    fn clean_code_has_no_suggestions() {
        let clean = "class Clean {
            int add(int a, int b) { return a + b; }
            boolean eq(String a, String b) { return a.equals(b); }
            void copy(int[] a, int[] b) { System.arraycopy(a, 0, b, 0, a.length); }
        }";
        let got = analyze_source("Clean.java", clean).unwrap();
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn project_analysis_covers_all_files() {
        let mut p = JavaProject::new();
        p.add_file("A.java", "class A { int f(int x) { return x % 2; } }")
            .unwrap();
        p.add_file("B.java", "class B { double d = 0.0001; }")
            .unwrap();
        let got = analyze_project(&p);
        assert!(got.iter().any(|s| s.file == "A.java"));
        assert!(got.iter().any(|s| s.file == "B.java"));
    }

    #[test]
    fn rule_subset_is_respected() {
        let analyzer = Analyzer::with_rules(vec![Box::new(
            crate::rules::arithmetic_operators::ArithmeticOperatorsRule,
        )]);
        assert_eq!(analyzer.rule_count(), 1);
        let unit = jepo_jlang::parse_unit("class A { int f(int x) { return x > 0 ? x % 2 : 0; } }")
            .unwrap();
        let got = analyzer.analyze_unit("A.java", &unit);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].component, JavaComponent::ArithmeticOperators);
    }
}
