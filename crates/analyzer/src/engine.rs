//! The analysis engine — the *JEPO optimizer* flow.
//!
//! §VII: the optimizer "provides suggestions for all the classes in a
//! Java project"; its view lists class name, line number, and suggestion
//! (Fig. 5). The engine runs every Table I rule over every file and
//! returns the suggestion rows sorted the way the view shows them.
//!
//! Three analysis modes:
//! * [`AnalysisMode::Syntactic`] — the original line-local rules, no
//!   dataflow. Kept as the ablation baseline for the analyzer bench.
//! * [`AnalysisMode::FlowSensitive`] (default) — builds per-method CFGs
//!   and dataflow facts ([`crate::dataflow::UnitFlow`]) first; rules
//!   consult them to suppress false positives (e.g. a `String`
//!   concatenation onto a per-iteration local) and the two flow-only
//!   rules become able to fire. Suggestions are additionally annotated
//!   with loop depth and estimated impact ([`crate::impact`]).
//! * [`AnalysisMode::Interprocedural`] — additionally builds
//!   whole-program call-graph facts ([`crate::interproc::ProgramFacts`])
//!   once per project; the cross-method rules consult callee summaries
//!   at call sites and the incremental cache invalidates callers when a
//!   callee's summary-relevant behavior changes (dependency-aware
//!   invalidation, not just content hashing).
//!
//! Output-order invariant: both [`Analyzer::analyze_unit`] and
//! [`Analyzer::analyze_project`] return rows sorted and deduplicated by
//! `(file, line, component)`. Project analysis parallelizes over files
//! via `jepo-pool` and re-establishes the same global order afterwards,
//! so its output is bit-identical for any job count.

use crate::cache::{content_hash, fnv1a64, AnalysisCache};
use crate::dataflow::UnitFlow;
use crate::interproc::ProgramFacts;
use crate::rules::{all_rules, Rule, RuleCtx};
use crate::suggestion::Suggestion;
use jepo_jlang::{CompilationUnit, JavaProject, ParseError};

/// Whether rules see dataflow facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisMode {
    /// Line-local pattern matching only (the original JEPO behavior).
    Syntactic,
    /// CFG + dataflow facts available to every rule; impact annotated.
    FlowSensitive,
    /// Flow facts plus whole-program call-graph summaries; the
    /// cross-method rules fire and incremental caching becomes
    /// dependency-aware.
    Interprocedural,
}

/// A configured analyzer (rule set is pluggable for ablations).
pub struct Analyzer {
    rules: Vec<Box<dyn Rule>>,
    mode: AnalysisMode,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// Analyzer with all Table I rules, flow-sensitive.
    pub fn new() -> Analyzer {
        Analyzer {
            rules: all_rules(),
            mode: AnalysisMode::FlowSensitive,
        }
    }

    /// Analyzer with all Table I rules but no dataflow — the syntactic
    /// baseline (what JEPO's original line scanner saw).
    pub fn syntactic() -> Analyzer {
        Analyzer {
            rules: all_rules(),
            mode: AnalysisMode::Syntactic,
        }
    }

    /// Analyzer with a custom rule subset (flow-sensitive).
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Analyzer {
        Analyzer {
            rules,
            mode: AnalysisMode::FlowSensitive,
        }
    }

    /// All Table I rules plus the extension rules (exceptions/objects
    /// and the flow-only loop-invariant/dead-store rules).
    pub fn with_extensions() -> Analyzer {
        let mut rules = all_rules();
        rules.extend(crate::rules::extended_rules());
        Analyzer {
            rules,
            mode: AnalysisMode::FlowSensitive,
        }
    }

    /// Every rule — Table I, the extensions, and the cross-method
    /// interprocedural rules — in [`AnalysisMode::Interprocedural`].
    pub fn interprocedural() -> Analyzer {
        let mut rules = all_rules();
        rules.extend(crate::rules::extended_rules());
        rules.extend(crate::rules::interproc_rules());
        Analyzer {
            rules,
            mode: AnalysisMode::Interprocedural,
        }
    }

    /// Switch analysis mode, builder-style.
    pub fn with_mode(mut self, mode: AnalysisMode) -> Analyzer {
        self.mode = mode;
        self
    }

    /// The active analysis mode.
    pub fn mode(&self) -> AnalysisMode {
        self.mode
    }

    /// Number of active rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Analyze one parsed unit.
    ///
    /// When tracing is live this opens a `file/<name>` track (so per-file
    /// spans stay deterministic regardless of which pool worker picks the
    /// file up) and records per-phase wall time in the metrics registry.
    pub fn analyze_unit(&self, file: &str, unit: &CompilationUnit) -> Vec<Suggestion> {
        // A lone unit in interprocedural mode still gets facts — built
        // from itself (the whole program, as far as this call knows).
        let single = (self.mode == AnalysisMode::Interprocedural)
            .then(|| ProgramFacts::build_single(file, unit));
        self.analyze_unit_with(file, unit, single.as_ref().map(|f| (f, 0)))
    }

    /// [`Analyzer::analyze_unit`] with explicit whole-program facts (the
    /// project entry points build them once and pass each file's index).
    fn analyze_unit_with(
        &self,
        file: &str,
        unit: &CompilationUnit,
        interproc: Option<(&ProgramFacts, usize)>,
    ) -> Vec<Suggestion> {
        let _track = jepo_trace::would_trace().then(|| jepo_trace::track(&format!("file/{file}")));
        let reg = jepo_trace::Registry::global();
        let timed = reg.is_enabled();
        let flow = {
            let _s = jepo_trace::span("analyze/flow");
            let t0 = timed.then(std::time::Instant::now);
            let flow = match self.mode {
                AnalysisMode::Syntactic => None,
                AnalysisMode::FlowSensitive | AnalysisMode::Interprocedural => {
                    Some(UnitFlow::build(unit))
                }
            };
            if let Some(t0) = t0 {
                reg.histogram("analyzer.phase.flow_ns", &jepo_trace::TIME_NS_BUCKETS)
                    .observe(t0.elapsed().as_nanos() as u64);
            }
            flow
        };
        let ctx = RuleCtx {
            file,
            unit,
            flow: flow.as_ref(),
            interproc,
        };
        let mut out: Vec<Suggestion> = {
            let _s = jepo_trace::span("analyze/rules");
            let t0 = timed.then(std::time::Instant::now);
            let out: Vec<Suggestion> = self.rules.iter().flat_map(|r| r.check(&ctx)).collect();
            if let Some(t0) = t0 {
                reg.histogram("analyzer.phase.rules_ns", &jepo_trace::TIME_NS_BUCKETS)
                    .observe(t0.elapsed().as_nanos() as u64);
            }
            out
        };
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.component).cmp(&(b.file.as_str(), b.line, b.component))
        });
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.component == b.component);
        if let Some(f) = &flow {
            let _s = jepo_trace::span("analyze/impact");
            let t0 = timed.then(std::time::Instant::now);
            crate::impact::annotate_with(&mut out, f, interproc);
            if let Some(t0) = t0 {
                reg.histogram("analyzer.phase.impact_ns", &jepo_trace::TIME_NS_BUCKETS)
                    .observe(t0.elapsed().as_nanos() as u64);
            }
        }
        if timed {
            reg.counter("analyzer.units").incr();
            reg.counter("analyzer.suggestions").add(out.len() as u64);
        }
        out
    }

    /// Analyze every file of a project (Fig. 5's "all the classes in a
    /// Java project"), in parallel over `jobs` worker threads (0 =
    /// auto). Output is globally sorted/deduped by `(file, line,
    /// component)` — bit-identical for every job count.
    pub fn analyze_project_jobs(&self, project: &JavaProject, jobs: usize) -> Vec<Suggestion> {
        // Whole-program facts are built once, single-threaded, before
        // the fan-out — deterministic regardless of job count.
        let facts = self.program_facts(project);
        let per_file = jepo_pool::parallel_map(project.files(), jobs, |i, f| {
            self.analyze_unit_with(&f.name, &f.unit, facts.as_ref().map(|fa| (fa, i)))
        });
        let mut out: Vec<Suggestion> = per_file.into_iter().flatten().collect();
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.component).cmp(&(b.file.as_str(), b.line, b.component))
        });
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.component == b.component);
        out
    }

    /// Analyze every file of a project with automatic parallelism.
    pub fn analyze_project(&self, project: &JavaProject) -> Vec<Suggestion> {
        self.analyze_project_jobs(project, 0)
    }

    /// Whole-program facts for `project`, when the mode wants them.
    fn program_facts(&self, project: &JavaProject) -> Option<ProgramFacts> {
        (self.mode == AnalysisMode::Interprocedural).then(|| {
            let _s = jepo_trace::span("analyze/interproc");
            let reg = jepo_trace::Registry::global();
            let t0 = reg.is_enabled().then(std::time::Instant::now);
            let facts = ProgramFacts::build(project);
            if let Some(t0) = t0 {
                reg.histogram("analyzer.phase.interproc_ns", &jepo_trace::TIME_NS_BUCKETS)
                    .observe(t0.elapsed().as_nanos() as u64);
            }
            facts
        })
    }

    /// Deterministic fingerprint of everything a cached result depends
    /// on besides the source text: the analysis mode and the active rule
    /// set (identified by component, which is 1:1 with rule types).
    /// Caches are scoped to this value, so switching mode or rule subset
    /// can never serve a stale answer.
    pub fn fingerprint(&self) -> u64 {
        let mut desc = format!("v{};{:?};", crate::cache::CACHE_FORMAT_VERSION, self.mode);
        for r in &self.rules {
            desc.push_str(&format!("{:?},", r.component()));
        }
        fnv1a64(desc.as_bytes())
    }

    /// A cache bound to this analyzer's [`Analyzer::fingerprint`].
    pub fn new_cache(&self) -> AnalysisCache {
        AnalysisCache::new(self.fingerprint())
    }

    /// Incremental project analysis: reuse `cache` for every file whose
    /// content hash is unchanged and fan only the dirty files over
    /// `jepo-pool` ([`jepo_pool::parallel_map_subset`]). The merged
    /// output is bit-identical to [`Analyzer::analyze_project_jobs`] —
    /// same global `(file, line, component)` sort/dedup — for any job
    /// count and any warm/cold split.
    ///
    /// A cache built under a different [`Analyzer::fingerprint`] is
    /// reset wholesale (all files go cold); entries for files no longer
    /// in the project are pruned. Hit/miss counts land in the cache's
    /// [`AnalysisCache::stats`] and, when the `jepo-trace` registry is
    /// collecting, in the `analyzer.cache.hit` / `analyzer.cache.miss`
    /// counters.
    pub fn analyze_project_incremental_jobs(
        &self,
        project: &JavaProject,
        cache: &mut AnalysisCache,
        jobs: usize,
    ) -> Vec<Suggestion> {
        let fingerprint = self.fingerprint();
        if cache.config() != fingerprint {
            cache.reset(fingerprint);
        }
        let files = project.files();
        let hashes: Vec<u64> = files.iter().map(|f| content_hash(&f.text)).collect();
        // Interprocedural mode rebuilds the whole-program facts (cheap:
        // summaries only, no rules) and dirties every file whose
        // dependency hash — a digest of the resolved callee summaries
        // its results consulted — changed, even if its own text did not.
        // That is exactly the transitive reverse-dependency set of an
        // edit, because summaries fold in transitive callees.
        let facts = self.program_facts(project);
        // Resolve hits before any insert so a duplicate file name (two
        // project entries, same path) can't evict a row set mid-run.
        let mut rows: Vec<Option<Vec<Suggestion>>> = files
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let dep = facts.as_ref().map_or(0, |fa| fa.dep_hash(i));
                cache
                    .lookup_deps(&f.name, hashes[i], dep)
                    .map(|e| e.suggestions.clone())
            })
            .collect();
        let dirty: Vec<usize> = (0..files.len()).filter(|&i| rows[i].is_none()).collect();
        let fresh = jepo_pool::parallel_map_subset(files, &dirty, jobs, |i, f| {
            self.analyze_unit_with(&f.name, &f.unit, facts.as_ref().map(|fa| (fa, i)))
        });
        for (&i, r) in dirty.iter().zip(fresh) {
            match &facts {
                Some(fa) => {
                    let deps: Vec<String> = fa.dep_files(i).iter().cloned().collect();
                    cache.insert_deps(&files[i].name, hashes[i], fa.dep_hash(i), deps, r.clone());
                }
                None => cache.insert(&files[i].name, hashes[i], r.clone()),
            }
            rows[i] = Some(r);
        }
        let live: std::collections::HashSet<&str> = files.iter().map(|f| f.name.as_str()).collect();
        cache.retain_files(&live);

        let hits = (files.len() - dirty.len()) as u64;
        let misses = dirty.len() as u64;
        cache.record_run(hits, misses);
        let reg = jepo_trace::Registry::global();
        if reg.is_enabled() {
            reg.counter("analyzer.cache.hit").add(hits);
            reg.counter("analyzer.cache.miss").add(misses);
        }

        let mut out: Vec<Suggestion> = rows.into_iter().flatten().flatten().collect();
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.component).cmp(&(b.file.as_str(), b.line, b.component))
        });
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.component == b.component);
        out
    }

    /// [`Analyzer::analyze_project_incremental_jobs`] with automatic
    /// parallelism.
    pub fn analyze_project_incremental(
        &self,
        project: &JavaProject,
        cache: &mut AnalysisCache,
    ) -> Vec<Suggestion> {
        self.analyze_project_incremental_jobs(project, cache, 0)
    }
}

/// Convenience: parse and analyze one source string.
pub fn analyze_source(file: &str, src: &str) -> Result<Vec<Suggestion>, ParseError> {
    let unit = {
        let _s = jepo_trace::span("analyze/parse");
        let reg = jepo_trace::Registry::global();
        let t0 = reg.is_enabled().then(std::time::Instant::now);
        let unit = jepo_jlang::parse_unit(src)?;
        if let Some(t0) = t0 {
            reg.histogram("analyzer.phase.parse_ns", &jepo_trace::TIME_NS_BUCKETS)
                .observe(t0.elapsed().as_nanos() as u64);
        }
        unit
    };
    Ok(Analyzer::new().analyze_unit(file, &unit))
}

/// Convenience: analyze a parsed unit with the default rules.
pub fn analyze_unit(file: &str, unit: &CompilationUnit) -> Vec<Suggestion> {
    Analyzer::new().analyze_unit(file, unit)
}

/// Convenience: analyze a whole project with the default rules.
pub fn analyze_project(project: &JavaProject) -> Vec<Suggestion> {
    Analyzer::new().analyze_project(project)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suggestion::JavaComponent;

    /// A source exercising every Table I component at least once.
    const KITCHEN_SINK: &str = r#"
class Sink {
    static int hits;
    double rate = 123456.0;
    Double boxed;

    String join(String[] parts, int n) {
        String s = "";
        for (int i = 0; i < n; i++) { s += parts[i]; }
        return s;
    }

    boolean same(String a, String b) { return a.compareTo(b) == 0; }

    int pick(int x) { return x > 0 && x < 9 && x != 4 ? x % 7 : 0; }

    void copy(int[] a, int[] b, int n) {
        for (int i = 0; i < n; i++) { b[i] = a[i]; }
    }

    double colSum(double[][] m, int n) {
        double s = 0;
        for (int j = 0; j < n; j++)
            for (int i = 0; i < n; i++)
                s += m[i][j];
        return s;
    }

    long slow(short k) { return k; }

    void bump() { hits = hits + 1; }
}
"#;

    #[test]
    fn kitchen_sink_triggers_every_component() {
        let got = analyze_source("Sink.java", KITCHEN_SINK).unwrap();
        let fired: std::collections::HashSet<JavaComponent> =
            got.iter().map(|s| s.component).collect();
        for c in JavaComponent::ALL {
            assert!(fired.contains(&c), "{c:?} did not fire\nall: {fired:?}");
        }
    }

    #[test]
    fn syntactic_mode_matches_legacy_behavior() {
        // The kitchen sink is written so every hit is a true positive:
        // flow-sensitive mode must not lose any component there either.
        let unit = jepo_jlang::parse_unit(KITCHEN_SINK).unwrap();
        let got = Analyzer::syntactic().analyze_unit("Sink.java", &unit);
        let fired: std::collections::HashSet<JavaComponent> =
            got.iter().map(|s| s.component).collect();
        for c in JavaComponent::ALL {
            assert!(fired.contains(&c), "{c:?} did not fire syntactically");
        }
    }

    #[test]
    fn flow_mode_annotates_loop_depth_and_impact() {
        let got = analyze_source("Sink.java", KITCHEN_SINK).unwrap();
        let concat = got
            .iter()
            .find(|s| s.component == JavaComponent::StringConcatenation)
            .expect("concat fires");
        assert_eq!(concat.loop_depth, 1, "s += parts[i] sits in one loop");
        assert!(
            concat.impact > JavaComponent::StringConcatenation.worst_case_factor(),
            "in-loop hit must outrank the bare factor: {}",
            concat.impact
        );
        let ternary = got
            .iter()
            .find(|s| s.component == JavaComponent::TernaryOperator)
            .expect("ternary fires");
        assert_eq!(ternary.loop_depth, 0);
    }

    #[test]
    fn results_are_sorted_and_deduped() {
        let got = analyze_source("Sink.java", KITCHEN_SINK).unwrap();
        for w in got.windows(2) {
            let a = (&w[0].file, w[0].line, w[0].component);
            let b = (&w[1].file, w[1].line, w[1].component);
            assert!(a <= b, "unsorted: {a:?} > {b:?}");
            assert_ne!(a, b, "duplicate row");
        }
    }

    #[test]
    fn clean_code_has_no_suggestions() {
        let clean = "class Clean {
            int add(int a, int b) { return a + b; }
            boolean eq(String a, String b) { return a.equals(b); }
            void copy(int[] a, int[] b) { System.arraycopy(a, 0, b, 0, a.length); }
        }";
        let got = analyze_source("Clean.java", clean).unwrap();
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn project_analysis_covers_all_files() {
        let mut p = JavaProject::new();
        p.add_file("A.java", "class A { int f(int x) { return x % 2; } }")
            .unwrap();
        p.add_file("B.java", "class B { double d = 0.0001; }")
            .unwrap();
        let got = analyze_project(&p);
        assert!(got.iter().any(|s| s.file == "A.java"));
        assert!(got.iter().any(|s| s.file == "B.java"));
    }

    #[test]
    fn project_analysis_is_globally_sorted_and_parallel_identical() {
        let mut p = JavaProject::new();
        // Deliberately added out of name order: the output must still be
        // globally sorted by (file, line, component).
        p.add_file("Z.java", "class Z { int f(int x) { return x % 2; } }")
            .unwrap();
        p.add_file("A.java", "class A { double d = 0.0001; short s; }")
            .unwrap();
        p.add_file(
            "M.java",
            "class M { boolean e(String a, String b) { return a.compareTo(b) == 0; } }",
        )
        .unwrap();
        let analyzer = Analyzer::with_extensions();
        let seq = analyzer.analyze_project_jobs(&p, 1);
        for w in seq.windows(2) {
            let a = (&w[0].file, w[0].line, w[0].component);
            let b = (&w[1].file, w[1].line, w[1].component);
            assert!(a <= b, "unsorted: {a:?} > {b:?}");
        }
        for jobs in [2, 4] {
            assert_eq!(
                seq,
                analyzer.analyze_project_jobs(&p, jobs),
                "jobs={jobs} differs from sequential"
            );
        }
    }

    #[test]
    fn incremental_matches_cold_and_counts_hits() {
        let mut p = JavaProject::new();
        p.add_file("Z.java", "class Z { int f(int x) { return x % 2; } }")
            .unwrap();
        p.add_file("A.java", "class A { double d = 0.0001; short s; }")
            .unwrap();
        p.add_file(
            "M.java",
            "class M { boolean e(String a, String b) { return a.compareTo(b) == 0; } }",
        )
        .unwrap();
        let analyzer = Analyzer::with_extensions();
        let cold = analyzer.analyze_project_jobs(&p, 1);

        let mut cache = analyzer.new_cache();
        let first = analyzer.analyze_project_incremental_jobs(&p, &mut cache, 1);
        assert_eq!(first, cold, "all-miss incremental run == cold");
        assert_eq!(cache.stats().last_misses, 3);
        assert_eq!(cache.stats().last_hits, 0);

        for jobs in [1, 2, 4] {
            let warm = analyzer.analyze_project_incremental_jobs(&p, &mut cache, jobs);
            assert_eq!(warm, cold, "all-hit warm run == cold (jobs={jobs})");
            assert_eq!(cache.stats().last_hits, 3);
            assert_eq!(cache.stats().last_misses, 0);
        }

        // Edit one file: exactly that file goes dirty, output tracks it.
        let mut p2 = JavaProject::new();
        p2.add_file("Z.java", "class Z { int f(int x) { return x & 1; } }")
            .unwrap();
        p2.add_file("A.java", "class A { double d = 0.0001; short s; }")
            .unwrap();
        p2.add_file(
            "M.java",
            "class M { boolean e(String a, String b) { return a.compareTo(b) == 0; } }",
        )
        .unwrap();
        let warm2 = analyzer.analyze_project_incremental_jobs(&p2, &mut cache, 2);
        assert_eq!(cache.stats().last_misses, 1, "only the edited file");
        assert_eq!(cache.stats().last_hits, 2);
        assert_eq!(warm2, analyzer.analyze_project_jobs(&p2, 1));
    }

    /// The stale-cache regression the dependency hash exists for:
    /// editing only a *callee's* file changes the caller's suggestions,
    /// so content-only invalidation would serve a stale row set.
    #[test]
    fn callee_edit_dirties_the_caller() {
        let caller = "class Caller {
            int hot(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s = s + Helper.work(i); }
                return s;
            }
        }";
        // Revision 0: the helper is cheap and pure. Revision 1: it
        // allocates per call — the caller now deserves a
        // CalleeAllocationInLoop suggestion, with identical caller text.
        let helper0 = "class Helper { static int work(int x) { return x + 1; } }";
        let helper1 =
            "class Helper { static int work(int x) { int[] b = new int[4]; return b[0] + x; } }";
        let project_with = |helper: &str| {
            let mut p = JavaProject::new();
            p.add_file("Caller.java", caller).unwrap();
            p.add_file("Helper.java", helper).unwrap();
            p
        };
        let p0 = project_with(helper0);
        let p1 = project_with(helper1);

        let analyzer = Analyzer::interprocedural();
        let cold0 = analyzer.analyze_project_jobs(&p0, 1);
        let cold1 = analyzer.analyze_project_jobs(&p1, 1);
        assert_ne!(
            cold0, cold1,
            "callee-only edit must change the caller's suggestions"
        );
        assert!(
            cold1
                .iter()
                .any(|s| s.file == "Caller.java"
                    && s.component == JavaComponent::CalleeAllocationInLoop),
            "{cold1:?}"
        );

        // Content-only invalidation is provably insufficient here: the
        // caller's text (and content hash) is identical across the two
        // revisions, so a v1-style lookup would return the stale entry.
        let mut cache = analyzer.new_cache();
        analyzer.analyze_project_incremental_jobs(&p0, &mut cache, 1);
        assert!(
            cache.lookup("Caller.java", content_hash(caller)).is_some(),
            "content-hash lookup alone still matches the stale entry"
        );
        let entry = cache.lookup("Caller.java", content_hash(caller)).unwrap();
        assert!(
            entry.deps.contains(&"Helper.java".to_string()),
            "the entry records its call-graph dependency: {:?}",
            entry.deps
        );

        // The dep-aware path re-analyzes the caller too: both files miss.
        let warm1 = analyzer.analyze_project_incremental_jobs(&p1, &mut cache, 1);
        assert_eq!(warm1, cold1, "warm output bit-identical after callee edit");
        assert_eq!(
            cache.stats().last_misses,
            2,
            "edited callee AND its caller both go dirty"
        );

        // Edit back: same story in reverse, and the output tracks.
        let warm0 = analyzer.analyze_project_incremental_jobs(&p0, &mut cache, 2);
        assert_eq!(warm0, cold0);
        assert_eq!(cache.stats().last_misses, 2);

        // Steady state: nothing changed, nothing re-analyzed.
        let warm = analyzer.analyze_project_incremental_jobs(&p0, &mut cache, 4);
        assert_eq!(warm, cold0);
        assert_eq!(cache.stats().last_misses, 0);
    }

    #[test]
    fn interproc_rules_fire_only_in_interproc_mode() {
        let src = "class A {
            int[] make(int n) { return new int[n]; }
            int hot(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { int[] b = make(8); s = s + b.length; }
                return s;
            }
        }";
        let mut p = JavaProject::new();
        p.add_file("A.java", src).unwrap();
        let flow = Analyzer::with_extensions().analyze_project_jobs(&p, 1);
        assert!(
            !flow
                .iter()
                .any(|s| JavaComponent::INTERPROC.contains(&s.component)),
            "flow mode must stay bit-identical to the pre-interproc baseline"
        );
        let inter = Analyzer::interprocedural().analyze_project_jobs(&p, 1);
        assert!(inter
            .iter()
            .any(|s| s.component == JavaComponent::CalleeAllocationInLoop));
        // Impact scales with the callee's per-call allocation count ×
        // the enclosing trip estimate — strictly above the bare factor.
        let hit = inter
            .iter()
            .find(|s| s.component == JavaComponent::CalleeAllocationInLoop)
            .unwrap();
        assert!(hit.impact > JavaComponent::CalleeAllocationInLoop.worst_case_factor());
    }

    #[test]
    fn fingerprint_scopes_the_cache() {
        let flow = Analyzer::with_extensions();
        let syn = Analyzer::syntactic();
        assert_ne!(flow.fingerprint(), syn.fingerprint());
        assert_ne!(Analyzer::new().fingerprint(), flow.fingerprint());
        assert_eq!(
            Analyzer::with_extensions().fingerprint(),
            flow.fingerprint(),
            "fingerprint is a pure function of the configuration"
        );

        let mut p = JavaProject::new();
        p.add_file("A.java", "class A { int f(int x) { return x % 2; } }")
            .unwrap();
        // A cache warmed under flow rules must go cold under syntactic.
        let mut cache = flow.new_cache();
        flow.analyze_project_incremental_jobs(&p, &mut cache, 1);
        let got = syn.analyze_project_incremental_jobs(&p, &mut cache, 1);
        assert_eq!(cache.stats().last_misses, 1, "config change invalidates");
        assert_eq!(got, syn.analyze_project_jobs(&p, 1));
    }

    #[test]
    fn incremental_prunes_removed_files() {
        let analyzer = Analyzer::new();
        let mut p = JavaProject::new();
        p.add_file("A.java", "class A { int f(int x) { return x % 2; } }")
            .unwrap();
        p.add_file("B.java", "class B { double d = 0.0001; }")
            .unwrap();
        let mut cache = analyzer.new_cache();
        analyzer.analyze_project_incremental_jobs(&p, &mut cache, 1);
        assert_eq!(cache.len(), 2);

        let mut smaller = JavaProject::new();
        smaller
            .add_file("A.java", "class A { int f(int x) { return x % 2; } }")
            .unwrap();
        let got = analyzer.analyze_project_incremental_jobs(&smaller, &mut cache, 1);
        assert_eq!(cache.len(), 1, "B.java pruned");
        assert!(got.iter().all(|s| s.file == "A.java"));
    }

    #[test]
    fn rule_subset_is_respected() {
        let analyzer = Analyzer::with_rules(vec![Box::new(
            crate::rules::arithmetic_operators::ArithmeticOperatorsRule,
        )]);
        assert_eq!(analyzer.rule_count(), 1);
        let unit = jepo_jlang::parse_unit("class A { int f(int x) { return x > 0 ? x % 2 : 0; } }")
            .unwrap();
        let got = analyzer.analyze_unit("A.java", &unit);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].component, JavaComponent::ArithmeticOperators);
    }
}
