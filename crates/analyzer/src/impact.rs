//! Estimated-impact scoring for suggestions (the ranking behind the
//! Fig. 5 optimizer view).
//!
//! A suggestion's impact multiplies its component's Table I worst-case
//! energy factor by how often the offending line is expected to execute:
//! the product of the trip-count estimates of every enclosing loop
//! (constant-bound loops contribute their exact count; unknown-bound
//! loops contribute the conservative
//! [`crate::dataflow::DEFAULT_TRIP_ESTIMATE`]). Straight-line code keeps
//! a multiplier of 1, so a modulus inside a 100×100 nest (impact
//! 17.2 × 10⁴) sorts far above the same modulus at top level (17.2).

use crate::dataflow::UnitFlow;
use crate::interproc::ProgramFacts;
use crate::suggestion::{JavaComponent, Suggestion};

/// Estimated impact of a component hit at the given loop context.
pub fn score(factor: f64, trip_product: f64) -> f64 {
    factor * trip_product.max(1.0)
}

/// Annotate `suggestions` (all from the unit `flow` describes) with loop
/// depth and impact.
pub fn annotate(suggestions: &mut [Suggestion], flow: &UnitFlow) {
    annotate_with(suggestions, flow, None);
}

/// [`annotate`], plus interprocedural weighting: the cross-method
/// components scale their base factor by the worst per-call count the
/// callee summary reports (a helper allocating 100 buffers per call
/// outranks one allocating 1), keeping the `factor × trips` shape.
pub fn annotate_with(
    suggestions: &mut [Suggestion],
    flow: &UnitFlow,
    interproc: Option<(&ProgramFacts, usize)>,
) {
    for s in suggestions {
        let (depth, trips) = flow.loop_context(s.line);
        s.loop_depth = depth;
        let mut factor = s.component.worst_case_factor();
        if let Some((facts, fi)) = interproc {
            if JavaComponent::INTERPROC.contains(&s.component) {
                factor *= facts.callee_weight(fi, s.line, s.component);
            }
        }
        s.impact = score(factor, trips);
    }
}

/// Rank suggestions for the optimizer view: estimated impact descending,
/// then (file, line, component) for a deterministic total order.
pub fn rank(suggestions: &mut [Suggestion]) {
    suggestions.sort_by(|a, b| {
        b.impact
            .total_cmp(&a.impact)
            .then_with(|| a.file.cmp(&b.file))
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.component.cmp(&b.component))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suggestion::JavaComponent;

    #[test]
    fn straight_line_keeps_base_factor() {
        assert_eq!(score(17.2, 1.0), 17.2);
        assert_eq!(score(17.2, 0.0), 17.2, "degenerate trip clamps to 1");
    }

    #[test]
    fn loops_multiply_impact() {
        assert!(score(8.8, 100.0) > score(640.0, 1.0));
    }

    #[test]
    fn rank_is_impact_major_then_deterministic() {
        let mk = |file: &str, line: u32, c: JavaComponent, impact: f64| {
            let mut s = Suggestion::new(file, "X", line, c, "m");
            s.impact = impact;
            s
        };
        let mut v = vec![
            mk("b.java", 1, JavaComponent::ArithmeticOperators, 17.2),
            mk("a.java", 9, JavaComponent::StringConcatenation, 880.0),
            mk("a.java", 2, JavaComponent::ArithmeticOperators, 17.2),
        ];
        rank(&mut v);
        assert_eq!(v[0].impact, 880.0);
        assert_eq!((v[1].file.as_str(), v[1].line), ("a.java", 2));
        assert_eq!((v[2].file.as_str(), v[2].line), ("b.java", 1));
    }
}
