//! Code metrics — the Table II columns.
//!
//! The paper characterizes each WEKA classifier by the metrics of its
//! dependency closure, computed with the Eclipse Metrics plug-in and the
//! Class Dependency Analyzer: **dependencies, attributes, methods,
//! packages, LOC**. This module computes the same five numbers over a
//! [`JavaProject`].

use jepo_jlang::{JavaProject, SourceFile};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Table II row for one entry class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Entry class name.
    pub class: String,
    /// Number of classes in the transitive dependency closure
    /// (the CDA "Dependencies" count).
    pub dependencies: usize,
    /// Total fields across the closure ("Attributes").
    pub attributes: usize,
    /// Total methods across the closure.
    pub methods: usize,
    /// Distinct packages in the closure.
    pub packages: usize,
    /// Total source lines across the closure's files.
    pub loc: usize,
}

/// Compute Table II metrics for `entry_class` within `project`.
///
/// The closure is computed over the project-internal dependency graph
/// (imports + referenced types), starting from the file declaring the
/// entry class.
pub fn class_metrics(project: &JavaProject, entry_class: &str) -> Option<ClassMetrics> {
    let (entry_file, _) = project.find_class(entry_class)?;
    // Map class name -> file index.
    let mut owner: HashMap<&str, usize> = HashMap::new();
    for (fi, f) in project.files().iter().enumerate() {
        for c in &f.unit.types {
            owner.insert(c.name.as_str(), fi);
        }
    }
    // BFS over files.
    let mut visited_files = BTreeSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(entry_file);
    while let Some(fi) = queue.pop_front() {
        if !visited_files.insert(fi) {
            continue;
        }
        let file = &project.files()[fi];
        for dep in project.internal_dependencies(file) {
            if let Some(&dfi) = owner.get(dep.as_str()) {
                if !visited_files.contains(&dfi) {
                    queue.push_back(dfi);
                }
            }
        }
    }
    let files: Vec<&SourceFile> = visited_files
        .iter()
        .map(|&fi| &project.files()[fi])
        .collect();
    let mut deps_classes = BTreeSet::new();
    let mut attributes = 0;
    let mut methods = 0;
    let mut packages = BTreeSet::new();
    let mut loc = 0;
    for f in &files {
        loc += f.text.lines().count();
        if let Some(p) = &f.unit.package {
            packages.insert(p.clone());
        } else {
            packages.insert(String::new()); // default package
        }
        for c in &f.unit.types {
            deps_classes.insert(c.name.clone());
            attributes += c.fields.len();
            methods += c.methods.len();
        }
    }
    Some(ClassMetrics {
        class: entry_class.to_string(),
        dependencies: deps_classes.len(),
        attributes,
        methods,
        packages: packages.len(),
        loc,
    })
}

/// Metrics for every class that has a `main` or is explicitly listed.
pub fn project_metrics(project: &JavaProject, entries: &[&str]) -> Vec<ClassMetrics> {
    entries
        .iter()
        .filter_map(|e| class_metrics(project, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_project() -> JavaProject {
        let mut p = JavaProject::new();
        p.add_file(
            "core/Instance.java",
            "package core;\npublic class Instance {\n  double[] values;\n  int weight;\n  double get(int i) { return values[i]; }\n}",
        )
        .unwrap();
        p.add_file(
            "core/Dataset.java",
            "package core;\npublic class Dataset {\n  Instance[] data;\n  int size() { return data.length; }\n}",
        )
        .unwrap();
        p.add_file(
            "trees/J48.java",
            "package trees;\nimport core.Dataset;\npublic class J48 {\n  Dataset train;\n  void fit(Dataset d) { train = d; }\n  double classify(Instance x) { return 0.0; }\n}",
        )
        .unwrap();
        p.add_file(
            "lazy/IBk.java",
            "package lazy;\npublic class IBk {\n  int k;\n  void setK(int k) { this.k = k; }\n}",
        )
        .unwrap();
        p
    }

    #[test]
    fn closure_follows_dependencies() {
        let p = demo_project();
        let m = class_metrics(&p, "J48").unwrap();
        // J48 → Dataset → Instance; IBk not included.
        assert_eq!(m.dependencies, 3);
        assert_eq!(m.packages, 2);
        assert_eq!(m.attributes, 2 + 1 + 1);
        assert_eq!(m.methods, 2 + 1 + 1);
        assert!(m.loc > 10);
    }

    #[test]
    fn independent_class_has_small_closure() {
        let p = demo_project();
        let m = class_metrics(&p, "IBk").unwrap();
        assert_eq!(m.dependencies, 1);
        assert_eq!(m.packages, 1);
    }

    #[test]
    fn metrics_are_similar_for_classes_sharing_a_core() {
        // Table II's point: all classifiers have almost the same counts
        // because they share the WEKA core. Model that here.
        let p = demo_project();
        let mut p2 = p.clone();
        p2.add_file(
            "trees/RandomTree.java",
            "package trees;\nimport core.Dataset;\npublic class RandomTree {\n  Dataset train;\n  void fit(Dataset d) { train = d; }\n}",
        )
        .unwrap();
        let a = class_metrics(&p2, "J48").unwrap();
        let b = class_metrics(&p2, "RandomTree").unwrap();
        assert_eq!(a.dependencies, b.dependencies + 1 - 1); // same closure size
        assert!((a.loc as i64 - b.loc as i64).abs() < 10);
    }

    #[test]
    fn unknown_entry_is_none() {
        assert!(class_metrics(&demo_project(), "Nope").is_none());
    }

    #[test]
    fn project_metrics_filters_known_entries() {
        let p = demo_project();
        let rows = project_metrics(&p, &["J48", "IBk", "Ghost"]);
        assert_eq!(rows.len(), 2);
    }
}
