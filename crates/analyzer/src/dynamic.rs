//! Dynamic (as-you-type) analysis — the Fig. 2 flow.
//!
//! The toolbar button "opens JEPO view … and then shows the suggestions
//! for the already open Java file", updating as the developer edits.
//! [`DynamicAnalyzer`] holds the last analysis per file and reports the
//! *delta* on each edit, which is what an IDE surface renders
//! incrementally.

use crate::engine::Analyzer;
use crate::suggestion::Suggestion;
use jepo_jlang::ParseError;
use std::collections::HashMap;

/// Result of re-analyzing an edited file.
#[derive(Debug, Clone, Default)]
pub struct AnalysisDelta {
    /// Suggestions present now but not before the edit.
    pub added: Vec<Suggestion>,
    /// Suggestions resolved by the edit.
    pub removed: Vec<Suggestion>,
    /// Full current suggestion list (what the view shows).
    pub current: Vec<Suggestion>,
}

/// Incremental analyzer with per-file memory.
pub struct DynamicAnalyzer {
    analyzer: Analyzer,
    last: HashMap<String, Vec<Suggestion>>,
    /// Last parse error per file (editing mid-statement is normal; the
    /// previous suggestions stay visible, as IDEs do).
    errors: HashMap<String, ParseError>,
}

impl Default for DynamicAnalyzer {
    fn default() -> Self {
        DynamicAnalyzer::new()
    }
}

impl DynamicAnalyzer {
    /// Fresh dynamic analyzer with all rules.
    pub fn new() -> DynamicAnalyzer {
        DynamicAnalyzer {
            analyzer: Analyzer::new(),
            last: HashMap::new(),
            errors: HashMap::new(),
        }
    }

    /// The developer edited (or opened) `file` with new contents.
    /// Returns the suggestion delta. On a parse error the previous
    /// state is retained and the delta is empty.
    pub fn update(&mut self, file: &str, src: &str) -> AnalysisDelta {
        match jepo_jlang::parse_unit(src) {
            Ok(unit) => {
                self.errors.remove(file);
                let current = self.analyzer.analyze_unit(file, &unit);
                let before = self.last.insert(file.to_string(), current.clone());
                let before = before.unwrap_or_default();
                let added = current
                    .iter()
                    .filter(|s| !before.contains(s))
                    .cloned()
                    .collect();
                let removed = before
                    .iter()
                    .filter(|s| !current.contains(s))
                    .cloned()
                    .collect();
                AnalysisDelta {
                    added,
                    removed,
                    current,
                }
            }
            Err(e) => {
                self.errors.insert(file.to_string(), e);
                AnalysisDelta {
                    current: self.last.get(file).cloned().unwrap_or_default(),
                    ..Default::default()
                }
            }
        }
    }

    /// Last parse error for a file, if its latest contents didn't parse.
    pub fn parse_error(&self, file: &str) -> Option<&ParseError> {
        self.errors.get(file)
    }

    /// Current suggestions for a file.
    pub fn current(&self, file: &str) -> &[Suggestion] {
        self.last.get(file).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suggestion::JavaComponent;

    #[test]
    fn edit_cycle_adds_then_removes() {
        let mut da = DynamicAnalyzer::new();
        // Open a clean file.
        let d0 = da.update("A.java", "class A { int f(int x) { return x + 1; } }");
        assert!(d0.current.is_empty());
        // Introduce a modulus.
        let d1 = da.update("A.java", "class A { int f(int x) { return x % 2; } }");
        assert_eq!(d1.added.len(), 1);
        assert_eq!(d1.added[0].component, JavaComponent::ArithmeticOperators);
        assert!(d1.removed.is_empty());
        // Fix it.
        let d2 = da.update("A.java", "class A { int f(int x) { return x & 1; } }");
        assert_eq!(d2.removed.len(), 1);
        assert!(d2.current.is_empty());
    }

    #[test]
    fn parse_errors_keep_previous_state() {
        let mut da = DynamicAnalyzer::new();
        da.update("A.java", "class A { int f(int x) { return x % 2; } }");
        let broken = da.update("A.java", "class A { int f(int x) { return x % ; } }");
        assert_eq!(broken.current.len(), 1, "previous suggestions retained");
        assert!(da.parse_error("A.java").is_some());
        // Recovering clears the error.
        da.update("A.java", "class A { }");
        assert!(da.parse_error("A.java").is_none());
    }

    #[test]
    fn files_are_tracked_independently() {
        let mut da = DynamicAnalyzer::new();
        da.update("A.java", "class A { int f(int x) { return x % 2; } }");
        da.update("B.java", "class B { }");
        assert_eq!(da.current("A.java").len(), 1);
        assert!(da.current("B.java").is_empty());
        assert!(da.current("C.java").is_empty());
    }
}
