//! Generic worklist dataflow solver and the three instantiations the
//! flow-sensitive rules consume.
//!
//! The solver is textbook iterative dataflow: facts form a join
//! semilattice ([`Problem::join`] must be monotone and idempotent),
//! transfer functions are applied per node, and a FIFO worklist runs to
//! fixpoint. Iteration is hard-bounded: lattice heights here are finite
//! (bitsets over def sites / variables / nodes), so
//! `nodes × (bits + 2)` passes is a safe ceiling — the proptests assert
//! convergence well inside it.
//!
//! Instantiations:
//! * [`ReachingDefs`] — forward, may; bitset over definition sites.
//! * [`Liveness`] — backward, may; bitset over variables.
//! * [`Dominators`] — forward, must; bitset over nodes. Used to verify
//!   structural back edges (`dom(tail) ∋ head`).
//!
//! [`UnitFlow`] packages all three per method of a compilation unit and
//! is what rules see through `RuleCtx::flow`.

use crate::cfg::{Cfg, NaturalLoop, NodeId};
use jepo_jlang::{CompilationUnit, ExprKind, Span, UnaryOp};
use std::collections::{HashMap, HashSet, VecDeque};

/// Default trip-count assumed for loops without a constant bound. Kept
/// deliberately small: an unknown loop should outrank straight-line code
/// but not a provably hot constant-bound loop.
pub const DEFAULT_TRIP_ESTIMATE: u64 = 8;

/// A fixed-capacity bitset — the fact domain for all three analyses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    bits: usize,
}

impl BitSet {
    /// Empty set over a domain of `bits` elements.
    pub fn empty(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Full set over a domain of `bits` elements.
    pub fn full(bits: usize) -> BitSet {
        let mut s = BitSet::empty(bits);
        for i in 0..bits {
            s.insert(i);
        }
        s
    }

    /// Insert one element.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Remove one element.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    /// `self ∩= other`; returns whether `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a & b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterate set elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(|&i| self.contains(i))
    }

    /// Whether no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit along `succs`.
    Forward,
    /// Facts flow exit → entry along `preds`.
    Backward,
}

/// One dataflow problem over a [`Cfg`].
pub trait Problem {
    /// Lattice element.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;
    /// Fact at the boundary (entry for forward, exit for backward).
    fn boundary(&self, cfg: &Cfg) -> Self::Fact;
    /// Initial fact for every other node.
    fn init(&self, cfg: &Cfg) -> Self::Fact;
    /// Join `other` into `acc`; returns whether `acc` changed.
    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact) -> bool;
    /// Transfer function of one node.
    fn transfer(&self, cfg: &Cfg, node: NodeId, input: &Self::Fact) -> Self::Fact;
}

/// Solver output: per-node input/output facts plus iteration accounting.
pub struct Solution<F> {
    /// Fact *entering* each node (w.r.t. the problem's direction).
    pub input: Vec<F>,
    /// Fact *leaving* each node.
    pub output: Vec<F>,
    /// Node visits performed.
    pub iterations: usize,
    /// Whether a fixpoint was reached inside the iteration bound. Always
    /// true for monotone problems; asserted by the proptests.
    pub converged: bool,
}

/// Iteration ceiling for a CFG: enough for any monotone bitset problem.
pub fn iteration_bound(cfg: &Cfg) -> usize {
    let n = cfg.nodes.len();
    n * (n + 66) + 64
}

/// Run the worklist algorithm to fixpoint.
pub fn solve<P: Problem>(cfg: &Cfg, problem: &P) -> Solution<P::Fact> {
    let n = cfg.nodes.len();
    let dir = problem.direction();
    let boundary_node = match dir {
        Direction::Forward => cfg.entry,
        Direction::Backward => cfg.exit,
    };
    let mut input: Vec<P::Fact> = (0..n).map(|_| problem.init(cfg)).collect();
    input[boundary_node] = problem.boundary(cfg);
    let mut output: Vec<P::Fact> = (0..n)
        .map(|i| problem.transfer(cfg, i, &input[i]))
        .collect();

    let mut queue: VecDeque<NodeId> = (0..n).collect();
    let mut queued = vec![true; n];
    let bound = iteration_bound(cfg);
    let mut iterations = 0;
    let mut converged = true;
    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        if iterations >= bound {
            converged = false;
            break;
        }
        iterations += 1;
        // Join incoming facts (unless this is the boundary node, whose
        // input is pinned).
        if node != boundary_node {
            let incoming: &[NodeId] = match dir {
                Direction::Forward => &cfg.nodes[node].preds,
                Direction::Backward => &cfg.nodes[node].succs,
            };
            let mut acc = input[node].clone();
            let mut joined_any = false;
            for &p in incoming {
                joined_any |= problem.join(&mut acc, &output[p]);
            }
            if joined_any {
                input[node] = acc;
            }
        }
        let out = problem.transfer(cfg, node, &input[node]);
        if out != output[node] {
            output[node] = out;
            let downstream: &[NodeId] = match dir {
                Direction::Forward => &cfg.nodes[node].succs,
                Direction::Backward => &cfg.nodes[node].preds,
            };
            for &d in downstream {
                if !queued[d] {
                    queued[d] = true;
                    queue.push_back(d);
                }
            }
        }
    }
    Solution {
        input,
        output,
        iterations,
        converged,
    }
}

/// One definition site: `var` (interned index) defined at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Defining node.
    pub node: NodeId,
    /// Interned variable index (see [`VarTable`]).
    pub var: usize,
}

/// Interned variable names for one CFG.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarTable {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Index of a name, if it occurs in the method.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable was interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Reaching definitions (forward, may): which def sites may reach each
/// node's input.
pub struct ReachingDefs {
    /// All definition sites, indexed by bit position.
    pub sites: Vec<DefSite>,
    /// Variable interner shared with [`Liveness`].
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl ReachingDefs {
    /// Build gen/kill sets for a CFG.
    pub fn build(cfg: &Cfg, vars: &mut VarTable) -> ReachingDefs {
        let mut sites = Vec::new();
        for (id, node) in cfg.nodes.iter().enumerate() {
            for d in &node.defs {
                sites.push(DefSite {
                    node: id,
                    var: vars.intern(d),
                });
            }
        }
        // Per-var site masks for kill computation.
        let mut var_sites: Vec<BitSet> = vec![BitSet::empty(sites.len()); vars.len()];
        for (bit, s) in sites.iter().enumerate() {
            var_sites[s.var].insert(bit);
        }
        let mut gen = vec![BitSet::empty(sites.len()); cfg.nodes.len()];
        let mut kill = vec![BitSet::empty(sites.len()); cfg.nodes.len()];
        for (bit, s) in sites.iter().enumerate() {
            gen[s.node].insert(bit);
            kill[s.node].union_with(&var_sites[s.var]);
        }
        for (g, k) in gen.iter().zip(kill.iter_mut()) {
            k.subtract(g);
        }
        ReachingDefs { sites, gen, kill }
    }
}

impl Problem for ReachingDefs {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _cfg: &Cfg) -> BitSet {
        BitSet::empty(self.sites.len())
    }

    fn init(&self, _cfg: &Cfg) -> BitSet {
        BitSet::empty(self.sites.len())
    }

    fn join(&self, acc: &mut BitSet, other: &BitSet) -> bool {
        acc.union_with(other)
    }

    fn transfer(&self, _cfg: &Cfg, node: NodeId, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.subtract(&self.kill[node]);
        out.union_with(&self.gen[node]);
        out
    }
}

/// Live variables (backward, may): which variables have a future reader.
pub struct Liveness {
    uses: Vec<BitSet>,
    defs: Vec<BitSet>,
    nvars: usize,
}

impl Liveness {
    /// Build use/def sets for a CFG.
    pub fn build(cfg: &Cfg, vars: &mut VarTable) -> Liveness {
        // Two passes: intern everything first so set widths are final.
        for node in &cfg.nodes {
            for n in node.uses.iter().chain(&node.defs) {
                vars.intern(n);
            }
        }
        let nvars = vars.len();
        let mut uses = vec![BitSet::empty(nvars); cfg.nodes.len()];
        let mut defs = vec![BitSet::empty(nvars); cfg.nodes.len()];
        for (id, node) in cfg.nodes.iter().enumerate() {
            for u in &node.uses {
                uses[id].insert(vars.get(u).unwrap());
            }
            for d in &node.defs {
                defs[id].insert(vars.get(d).unwrap());
            }
        }
        Liveness { uses, defs, nvars }
    }
}

impl Problem for Liveness {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, _cfg: &Cfg) -> BitSet {
        BitSet::empty(self.nvars)
    }

    fn init(&self, _cfg: &Cfg) -> BitSet {
        BitSet::empty(self.nvars)
    }

    fn join(&self, acc: &mut BitSet, other: &BitSet) -> bool {
        acc.union_with(other)
    }

    fn transfer(&self, _cfg: &Cfg, node: NodeId, input: &BitSet) -> BitSet {
        // `input` is live-out (facts flow backward); live-in =
        // (out − def) ∪ use.
        let mut out = input.clone();
        out.subtract(&self.defs[node]);
        out.union_with(&self.uses[node]);
        out
    }
}

/// Dominators (forward, must): node n is dominated by every node on all
/// entry→n paths.
pub struct Dominators;

impl Problem for Dominators {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, cfg: &Cfg) -> BitSet {
        let mut s = BitSet::empty(cfg.nodes.len());
        s.insert(cfg.entry);
        s
    }

    fn init(&self, cfg: &Cfg) -> BitSet {
        BitSet::full(cfg.nodes.len())
    }

    fn join(&self, acc: &mut BitSet, other: &BitSet) -> bool {
        acc.intersect_with(other)
    }

    fn transfer(&self, _cfg: &Cfg, node: NodeId, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.insert(node);
        out
    }
}

/// Dominator-verified back edges: `(tail, head)` pairs among reachable
/// nodes where `head` dominates `tail`.
pub fn back_edges(cfg: &Cfg) -> Vec<(NodeId, NodeId)> {
    let reach = cfg.reachable();
    let dom = solve(cfg, &Dominators);
    let mut out = Vec::new();
    for (tail, node) in cfg.nodes.iter().enumerate() {
        if !reach[tail] {
            continue;
        }
        for &head in &node.succs {
            if reach[head] && dom.output[tail].contains(head) {
                out.push((tail, head));
            }
        }
    }
    out
}

/// All flow facts for one method.
pub struct MethodFlow {
    /// The lowered CFG.
    pub cfg: Cfg,
    /// Variable interner (shared by both analyses).
    pub vars: VarTable,
    /// Reaching-definition sites.
    pub reach: ReachingDefs,
    /// Reaching solution (input = defs reaching the node).
    pub reach_in: Vec<BitSet>,
    /// Live-out per node.
    pub live_out: Vec<BitSet>,
    /// Parameter and local names (the only candidates for dead-store /
    /// dead-local reasoning; fields escape).
    locals: HashSet<String>,
}

impl MethodFlow {
    /// Lower and solve one method. `None` for bodyless methods.
    pub fn build(method: &jepo_jlang::MethodDecl) -> Option<MethodFlow> {
        let reg = jepo_trace::Registry::global();
        let timed = reg.is_enabled();
        let t0 = timed.then(std::time::Instant::now);
        let cfg = Cfg::build(method)?;
        if let Some(t0) = t0 {
            reg.histogram("analyzer.phase.cfg_ns", &jepo_trace::TIME_NS_BUCKETS)
                .observe(t0.elapsed().as_nanos() as u64);
        }
        let t0 = timed.then(std::time::Instant::now);
        let mut vars = VarTable::default();
        let live = Liveness::build(&cfg, &mut vars);
        let live_sol = solve(&cfg, &live);
        let reach = ReachingDefs::build(&cfg, &mut vars);
        let reach_sol = solve(&cfg, &reach);
        if let Some(t0) = t0 {
            reg.histogram("analyzer.phase.dataflow_ns", &jepo_trace::TIME_NS_BUCKETS)
                .observe(t0.elapsed().as_nanos() as u64);
        }
        let mut locals: HashSet<String> = method.params.iter().map(|p| p.name.clone()).collect();
        for node in &cfg.nodes {
            locals.extend(node.decls.iter().cloned());
        }
        Some(MethodFlow {
            cfg,
            vars,
            reach,
            reach_in: reach_sol.input,
            // Backward solution: `input` holds the fact entering the node
            // in flow direction, i.e. live-out in program order.
            live_out: live_sol.input,
            locals,
        })
    }

    /// Whether `name` is a parameter or local of this method.
    pub fn is_local(&self, name: &str) -> bool {
        self.locals.contains(name)
    }

    /// Representative node of the statement at `span`, if lowered.
    pub fn node_at(&self, span: Span) -> Option<NodeId> {
        self.cfg.stmt_nodes.get(&span).copied()
    }

    /// Whether `var` has a live reader after `node`.
    pub fn live_after(&self, node: NodeId, var: &str) -> bool {
        match self.vars.get(var) {
            Some(v) => self.live_out[node].contains(v),
            None => false,
        }
    }

    /// Whether `var` is loop-carried in `lp`: some definition *inside*
    /// the loop reaches the loop header's input (i.e. flows around the
    /// back edge into the next iteration).
    pub fn is_loop_carried(&self, lp: &NaturalLoop, var: &str) -> bool {
        let Some(v) = self.vars.get(var) else {
            return false;
        };
        self.reach_in[lp.header]
            .iter()
            .map(|bit| self.reach.sites[bit])
            .any(|site| site.var == v && lp.contains(site.node))
    }

    /// Whether `var` is declared inside the loop body (a per-iteration
    /// fresh variable, not an accumulator).
    pub fn declared_in(&self, lp: &NaturalLoop, var: &str) -> bool {
        (lp.first_node..=lp.last_node.min(self.cfg.nodes.len() - 1))
            .any(|n| self.cfg.nodes[n].decls.iter().any(|d| d == var))
    }

    /// The innermost loop whose line range covers `line`.
    pub fn innermost_loop_at_line(&self, line: u32) -> Option<&NaturalLoop> {
        self.cfg
            .loops
            .iter()
            .filter(|l| l.contains_line(line))
            .max_by_key(|l| l.depth)
    }
}

/// Flow facts for a whole compilation unit: one [`MethodFlow`] per
/// method body, plus unit-level assignment summaries for the
/// definition-aware static-keyword rule.
pub struct UnitFlow {
    methods: Vec<((usize, usize), MethodFlow)>,
    /// Per-class: names assigned in any of the class's method bodies.
    class_assigns: Vec<HashSet<String>>,
    /// Names assigned through *any* field-access target anywhere in the
    /// unit (`obj.f = …`, `Other.counter = …`) — the cross-class
    /// assignment summary.
    field_writes: HashSet<String>,
}

impl UnitFlow {
    /// Build flow facts for every method of `unit`.
    pub fn build(unit: &CompilationUnit) -> UnitFlow {
        let mut methods = Vec::new();
        let mut class_assigns = Vec::new();
        let mut field_writes = HashSet::new();
        for (ci, class) in unit.types.iter().enumerate() {
            let mut assigned = HashSet::new();
            for (mi, m) in class.methods.iter().enumerate() {
                if let Some(flow) = MethodFlow::build(m) {
                    for node in &flow.cfg.nodes {
                        assigned.extend(node.defs.iter().cloned());
                    }
                    methods.push(((ci, mi), flow));
                }
                if let Some(body) = &m.body {
                    for s in &body.stmts {
                        jepo_jlang::walk_stmt_exprs(s, &mut |e| match &e.kind {
                            ExprKind::Assign(l, _, _) => {
                                if let ExprKind::FieldAccess(_, f) = &l.kind {
                                    field_writes.insert(f.clone());
                                }
                            }
                            ExprKind::Unary(
                                UnaryOp::PreInc
                                | UnaryOp::PreDec
                                | UnaryOp::PostInc
                                | UnaryOp::PostDec,
                                inner,
                            ) => {
                                if let ExprKind::FieldAccess(_, f) = &inner.kind {
                                    field_writes.insert(f.clone());
                                }
                            }
                            _ => {}
                        });
                    }
                }
            }
            class_assigns.push(assigned);
        }
        UnitFlow {
            methods,
            class_assigns,
            field_writes,
        }
    }

    /// Flow for method `mi` of class `ci`, if it has a body.
    pub fn method(&self, ci: usize, mi: usize) -> Option<&MethodFlow> {
        self.methods
            .iter()
            .find(|((c, m), _)| *c == ci && *m == mi)
            .map(|(_, f)| f)
    }

    /// All method flows with their (class, method) indices.
    pub fn methods(&self) -> impl Iterator<Item = (usize, usize, &MethodFlow)> {
        self.methods.iter().map(|((c, m), f)| (*c, *m, f))
    }

    /// Find the statement node at `span` across all methods (statement
    /// spans are unique within a parsed unit).
    pub fn stmt_node(&self, span: Span) -> Option<(&MethodFlow, NodeId)> {
        self.methods
            .iter()
            .find_map(|(_, f)| f.node_at(span).map(|n| (f, n)))
    }

    /// Whether a field of class `ci` named `name` is ever assigned —
    /// inside its own class's methods, or through a field access
    /// anywhere in the unit. A `static` field failing this test is
    /// effectively final.
    pub fn field_is_assigned(&self, ci: usize, name: &str) -> bool {
        self.class_assigns.get(ci).is_some_and(|s| s.contains(name))
            || self.field_writes.contains(name)
    }

    /// Loop context of a source line across all methods: `(depth,
    /// trip_product)` where the product multiplies each enclosing loop's
    /// trip estimate (unknown → [`DEFAULT_TRIP_ESTIMATE`]).
    pub fn loop_context(&self, line: u32) -> (u32, f64) {
        let mut depth = 0u32;
        let mut product = 1f64;
        for (_, flow) in &self.methods {
            for l in &flow.cfg.loops {
                if l.contains_line(line) {
                    depth += 1;
                    product *= l.trip_estimate.unwrap_or(DEFAULT_TRIP_ESTIMATE) as f64;
                }
            }
        }
        (depth, product.min(1e12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;

    fn flow(src: &str) -> MethodFlow {
        let unit = jepo_jlang::parse_unit(src).unwrap();
        MethodFlow::build(&unit.types[0].methods[0]).unwrap()
    }

    #[test]
    fn accumulator_is_loop_carried_but_fresh_local_is_not() {
        let f = flow(
            "class A { String g(String[] parts, int n) {
               String s = \"\";
               for (int i = 0; i < n; i++) {
                 String t = s + \"x\";
                 s += parts[i];
               }
               return s;
             } }",
        );
        let lp = &f.cfg.loops[0];
        assert!(f.is_loop_carried(lp, "s"), "accumulator must be carried");
        assert!(!f.declared_in(lp, "s"));
        assert!(f.declared_in(lp, "t"), "t is a per-iteration local");
        assert!(f.is_loop_carried(lp, "i"), "counter is carried via i++");
    }

    #[test]
    fn dead_store_has_no_live_reader() {
        let f = flow(
            "class A { int g(int x) {
               int dead = x * 2;
               int used = x + 1;
               return used;
             } }",
        );
        let unit_dead = f
            .cfg
            .nodes
            .iter()
            .position(|n| n.defs.contains(&"dead".to_string()))
            .unwrap();
        let unit_used = f
            .cfg
            .nodes
            .iter()
            .position(|n| n.defs.contains(&"used".to_string()))
            .unwrap();
        assert!(!f.live_after(unit_dead, "dead"));
        assert!(f.live_after(unit_used, "used"));
    }

    #[test]
    fn liveness_sees_through_branches() {
        let f = flow(
            "class A { int g(int x) {
               int a = x + 1;
               if (x > 0) { return a; }
               return 0;
             } }",
        );
        let def_a = f
            .cfg
            .nodes
            .iter()
            .position(|n| n.defs.contains(&"a".to_string()))
            .unwrap();
        assert!(f.live_after(def_a, "a"), "a is read on one branch");
    }

    #[test]
    fn dominator_back_edges_match_structural_loops() {
        let unit = jepo_jlang::parse_unit(
            "class A { void g(int n) {
               for (int i = 0; i < n; i++) {
                 int j = 0;
                 while (j < i) { j++; }
               }
               do { n--; } while (n > 0);
             } }",
        )
        .unwrap();
        let cfg = Cfg::build(&unit.types[0].methods[0]).unwrap();
        let headers: HashSet<NodeId> = cfg.loops.iter().map(|l| l.header).collect();
        let edges = back_edges(&cfg);
        assert_eq!(edges.len(), 3, "{edges:?}");
        for (tail, head) in edges {
            assert!(headers.contains(&head), "{tail}->{head} not a header");
        }
    }

    #[test]
    fn solver_converges_within_bound() {
        let unit = jepo_jlang::parse_unit(
            "class A { int g(int n) {
               int s = 0;
               for (int i = 0; i < n; i++) {
                 for (int j = 0; j < i; j++) { s += i * j; }
                 if (s > 100) { break; }
               }
               return s;
             } }",
        )
        .unwrap();
        let cfg = Cfg::build(&unit.types[0].methods[0]).unwrap();
        let mut vars = VarTable::default();
        let live = Liveness::build(&cfg, &mut vars);
        let sol = solve(&cfg, &live);
        assert!(sol.converged);
        assert!(sol.iterations <= iteration_bound(&cfg));
        let reach = ReachingDefs::build(&cfg, &mut vars);
        let sol2 = solve(&cfg, &reach);
        assert!(sol2.converged);
    }

    #[test]
    fn unit_flow_tracks_effectively_final_statics() {
        let unit = jepo_jlang::parse_unit(
            "class A {
               static int mutated;
               static int untouched;
               void bump() { mutated = mutated + 1; }
             }
             class B {
               void poke() { A.mutated = 5; }
             }",
        )
        .unwrap();
        let uf = UnitFlow::build(&unit);
        assert!(uf.field_is_assigned(0, "mutated"));
        assert!(!uf.field_is_assigned(0, "untouched"));
    }

    #[test]
    fn loop_context_multiplies_trip_estimates() {
        let unit = jepo_jlang::parse_unit(
            "class A { void g() {
               for (int i = 0; i < 10; i++) {
                 for (int j = 0; j < 20; j++) {
                   int k = i * j;
                 }
               }
             } }",
        )
        .unwrap();
        let uf = UnitFlow::build(&unit);
        let body_line = 4; // `int k = i * j;`
        let (depth, product) = uf.loop_context(body_line);
        assert_eq!(depth, 2);
        assert!((product - 200.0).abs() < 1e-9, "{product}");
    }
}
