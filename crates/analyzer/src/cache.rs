//! Incremental analysis cache — content-hashed per-file results.
//!
//! The analyzer pipeline (parse → CFG → dataflow → rules → impact) is a
//! pure function of a file's source text and the analyzer configuration,
//! so its output can be keyed by a content hash and reused verbatim when
//! the file has not changed. [`AnalysisCache`] holds one entry per file:
//! the normalized-source FNV-1a/64 hash and the final suggestion rows.
//! [`crate::engine::Analyzer::analyze_project_incremental_jobs`] consults
//! it to fan only *dirty* files over `jepo-pool` and merge cached rows
//! back in, bit-identically to a cold run.
//!
//! ## On-disk format
//!
//! [`AnalysisCache::save`] / [`AnalysisCache::load`] persist the cache so
//! separate CLI invocations stay warm (`jepo analyze --cache-dir`,
//! `jepo diff-energy`). The format is a line-oriented text file designed
//! around one rule: **a bad entry falls back to cold analysis, never to a
//! wrong answer.**
//!
//! ```text
//! jepo-analysis-cache v2
//! config <16-hex analyzer fingerprint>
//! F <name> <hash> <dep-hash> <d> <n>   -- begin entry: file, content hash,
//!                                         dependency hash, dep count, row count
//! D <file>                             -- one call-graph dependency (a file
//!                                         whose summaries this entry consulted)
//! S <line> <depth> <component> <impact-bits> <class> <matched> <message>
//! E <checksum>                         -- commit entry: FNV over its F+D+S lines
//! ```
//!
//! The dependency hash digests the resolved callee summaries the file's
//! interprocedural results consulted (see
//! [`crate::interproc::ProgramFacts::dep_hash`]); under the
//! non-interprocedural modes it is 0 and the `D` list is empty. A
//! caller therefore goes dirty when a *callee's* behavior changes even
//! though the caller's own text (and content hash) did not — the
//! dependency-aware invalidation the interprocedural rules require.
//!
//! Fields are tab-separated; strings escape `\` `\t` `\n` `\r`. Impact is
//! stored as raw `f64` bits so a round-trip is bit-exact. The loader is
//! tolerant by construction: a version or config mismatch yields an empty
//! cache; an entry is committed only when its row count and trailing
//! checksum both agree; any malformed line discards the pending entry and
//! scanning resumes at the next `F` line. Corruption can therefore only
//! ever *shrink* the warm set.

use crate::suggestion::{JavaComponent, Suggestion};
use std::collections::HashMap;
use std::path::Path;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Bumped whenever the entry layout or the meaning of a field changes;
/// part of the header, so old files are ignored wholesale.
pub const CACHE_FORMAT_VERSION: u32 = 2;

const MAGIC: &str = "jepo-analysis-cache v2";

/// FNV-1a/64 over raw bytes — the deterministic, dependency-free hash
/// every cache key derives from.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content hash of a source file: FNV-1a/64 over the *normalized* text
/// (CRLF and lone CR become LF), so a checkout-format change doesn't
/// invalidate the world.
pub fn content_hash(source: &str) -> u64 {
    let mut h = FNV_OFFSET;
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = if bytes[i] == b'\r' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
                i += 1;
            }
            b'\n'
        } else {
            bytes[i]
        };
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    h
}

/// One cached file: the hashes its rows were computed from, plus the rows.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// [`content_hash`] of the source the suggestions were computed from.
    pub content_hash: u64,
    /// Digest of the callee summaries the file's interprocedural results
    /// consulted (0 under the non-interprocedural modes).
    pub dep_hash: u64,
    /// Files (other than this one) whose methods the results depended
    /// on, sorted — the explicit edge list behind `dep_hash`.
    pub deps: Vec<String>,
    /// Final per-file suggestion rows, sorted/deduped by
    /// `(file, line, component)` exactly as `analyze_unit` returns them.
    pub suggestions: Vec<Suggestion>,
}

/// Hit/miss accounting, cumulative over the cache's lifetime plus the
/// last incremental run's split (what the invalidation tests assert on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files served from the cache, lifetime total.
    pub hits: u64,
    /// Files that had to be (re-)analyzed, lifetime total.
    pub misses: u64,
    /// Hits in the most recent incremental run.
    pub last_hits: u64,
    /// Misses in the most recent incremental run.
    pub last_misses: u64,
}

/// Per-file analysis results keyed by file name, validated by content
/// hash, scoped to one analyzer configuration fingerprint.
#[derive(Debug, Clone)]
pub struct AnalysisCache {
    config: u64,
    entries: HashMap<String, CacheEntry>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// Empty cache bound to an analyzer fingerprint
    /// ([`crate::engine::Analyzer::fingerprint`]).
    pub fn new(config: u64) -> AnalysisCache {
        AnalysisCache {
            config,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The fingerprint this cache's entries were computed under.
    pub fn config(&self) -> u64 {
        self.config
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss accounting.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop everything and rebind to a (possibly new) fingerprint.
    /// Lifetime stats survive — they describe the cache object, not the
    /// entry set.
    pub fn reset(&mut self, config: u64) {
        self.config = config;
        self.entries.clear();
    }

    /// Valid entry for `file` at exactly `hash`, if any. Does not touch
    /// stats — the engine accounts hits/misses per run. Ignores the
    /// dependency hash (the non-interprocedural modes store 0 there).
    pub fn lookup(&self, file: &str, hash: u64) -> Option<&CacheEntry> {
        self.entries.get(file).filter(|e| e.content_hash == hash)
    }

    /// [`AnalysisCache::lookup`] that additionally requires the stored
    /// dependency hash to equal `dep_hash` — a callee-side behavior
    /// change misses here even when the file's own text is unchanged.
    pub fn lookup_deps(&self, file: &str, hash: u64, dep_hash: u64) -> Option<&CacheEntry> {
        self.entries
            .get(file)
            .filter(|e| e.content_hash == hash && e.dep_hash == dep_hash)
    }

    /// Insert/replace the entry for `file` (no dependency facts).
    pub fn insert(&mut self, file: &str, hash: u64, suggestions: Vec<Suggestion>) {
        self.insert_deps(file, hash, 0, Vec::new(), suggestions);
    }

    /// Insert/replace the entry for `file` with its call-graph
    /// dependency hash and edge list.
    pub fn insert_deps(
        &mut self,
        file: &str,
        hash: u64,
        dep_hash: u64,
        mut deps: Vec<String>,
        suggestions: Vec<Suggestion>,
    ) {
        deps.sort();
        deps.dedup();
        self.entries.insert(
            file.to_string(),
            CacheEntry {
                content_hash: hash,
                dep_hash,
                deps,
                suggestions,
            },
        );
    }

    /// Drop entries for files not in `live` (project shrank / was
    /// renamed); keeps the cache from growing without bound across
    /// revisions.
    pub fn retain_files(&mut self, live: &std::collections::HashSet<&str>) {
        self.entries.retain(|k, _| live.contains(k.as_str()));
    }

    pub(crate) fn record_run(&mut self, hits: u64, misses: u64) {
        self.stats.hits += hits;
        self.stats.misses += misses;
        self.stats.last_hits = hits;
        self.stats.last_misses = misses;
    }

    // ---------------------------------------------------------------
    // Disk persistence
    // ---------------------------------------------------------------

    /// Serialize the cache to its on-disk text format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("config\t{:016x}\n", self.config));
        // Deterministic entry order so identical caches are identical
        // bytes on disk.
        let mut names: Vec<&String> = self.entries.keys().collect();
        names.sort();
        for name in names {
            let e = &self.entries[name];
            let mut body = String::new();
            body.push_str(&format!(
                "F\t{}\t{:016x}\t{:016x}\t{}\t{}\n",
                esc(name),
                e.content_hash,
                e.dep_hash,
                e.deps.len(),
                e.suggestions.len()
            ));
            for d in &e.deps {
                body.push_str(&format!("D\t{}\n", esc(d)));
            }
            for s in &e.suggestions {
                body.push_str(&format!(
                    "S\t{}\t{}\t{:?}\t{:016x}\t{}\t{}\t{}\n",
                    s.line,
                    s.loop_depth,
                    s.component,
                    s.impact.to_bits(),
                    esc(&s.class),
                    esc(&s.matched),
                    esc(&s.message)
                ));
            }
            out.push_str(&body);
            out.push_str(&format!("E\t{:016x}\n", fnv1a64(body.as_bytes())));
        }
        out
    }

    /// Write the cache to `path` (parent directories are created).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.serialize())
    }

    /// Parse a serialized cache. Tolerant: any anomaly drops the
    /// offending entry (or, for header problems, the whole file) and
    /// never errors — a cold start is always a correct answer.
    pub fn deserialize(text: &str, config: u64) -> AnalysisCache {
        let mut cache = AnalysisCache::new(config);
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return cache;
        }
        match lines.next().and_then(|l| l.strip_prefix("config\t")) {
            Some(hex) if u64::from_str_radix(hex, 16) == Ok(config) => {}
            _ => return cache,
        }
        // Pending entry being accumulated (the raw body feeds the
        // trailing checksum).
        struct Pending {
            name: String,
            hash: u64,
            dep_hash: u64,
            ndeps: usize,
            nrows: usize,
            deps: Vec<String>,
            rows: Vec<Suggestion>,
            body: String,
        }
        let mut pending: Option<Pending> = None;
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.first().copied() {
                Some("F") => {
                    // A new entry header always discards any half-read
                    // predecessor (it never saw its E line).
                    pending =
                        parse_file_header(&fields).map(|(name, hash, dep_hash, ndeps, nrows)| {
                            Pending {
                                name,
                                hash,
                                dep_hash,
                                ndeps,
                                nrows,
                                deps: Vec::new(),
                                rows: Vec::new(),
                                body: format!("{line}\n"),
                            }
                        });
                }
                Some("D") => {
                    let Some(p) = pending.as_mut() else { continue };
                    match (fields.len() == 2).then(|| unesc(fields[1])).flatten() {
                        // D lines must all precede the S lines, as written.
                        Some(d) if p.deps.len() < p.ndeps && p.rows.is_empty() => {
                            p.deps.push(d);
                            p.body.push_str(line);
                            p.body.push('\n');
                        }
                        _ => pending = None,
                    }
                }
                Some("S") => {
                    let Some(p) = pending.as_mut() else { continue };
                    match parse_suggestion_row(&fields, &p.name) {
                        Some(s) if p.rows.len() < p.nrows && p.deps.len() == p.ndeps => {
                            p.rows.push(s);
                            p.body.push_str(line);
                            p.body.push('\n');
                        }
                        _ => pending = None,
                    }
                }
                Some("E") => {
                    let Some(p) = pending.take() else {
                        continue;
                    };
                    let ok = p.rows.len() == p.nrows
                        && p.deps.len() == p.ndeps
                        && fields.len() == 2
                        && u64::from_str_radix(fields[1], 16) == Ok(fnv1a64(p.body.as_bytes()));
                    if ok {
                        cache.insert_deps(&p.name, p.hash, p.dep_hash, p.deps, p.rows);
                    }
                }
                _ => pending = None,
            }
        }
        cache
    }

    /// Load a cache from `path` for the given fingerprint. A missing,
    /// unreadable, stale-version, or mismatched-config file yields an
    /// empty cache (cold start), never an error.
    pub fn load(path: &Path, config: u64) -> AnalysisCache {
        match std::fs::read_to_string(path) {
            Ok(text) => AnalysisCache::deserialize(&text, config),
            Err(_) => AnalysisCache::new(config),
        }
    }
}

fn parse_file_header(fields: &[&str]) -> Option<(String, u64, u64, usize, usize)> {
    if fields.len() != 6 {
        return None;
    }
    let name = unesc(fields[1])?;
    let hash = u64::from_str_radix(fields[2], 16).ok()?;
    let dep_hash = u64::from_str_radix(fields[3], 16).ok()?;
    let ndeps: usize = fields[4].parse().ok()?;
    let nrows: usize = fields[5].parse().ok()?;
    Some((name, hash, dep_hash, ndeps, nrows))
}

fn parse_suggestion_row(fields: &[&str], file: &str) -> Option<Suggestion> {
    if fields.len() != 8 {
        return None;
    }
    let line: u32 = fields[1].parse().ok()?;
    let loop_depth: u32 = fields[2].parse().ok()?;
    let component = component_by_name(fields[3])?;
    let impact = f64::from_bits(u64::from_str_radix(fields[4], 16).ok()?);
    let class = unesc(fields[5])?;
    let matched = unesc(fields[6])?;
    let message = unesc(fields[7])?;
    Some(Suggestion {
        file: file.to_string(),
        class,
        line,
        component,
        message,
        matched,
        loop_depth,
        impact,
    })
}

/// Reverse of the `{:?}` rendering used by the serializer; unknown names
/// (from a future rule set) drop the entry rather than guessing.
fn component_by_name(name: &str) -> Option<JavaComponent> {
    JavaComponent::ALL
        .into_iter()
        .chain(JavaComponent::EXTENDED)
        .chain(JavaComponent::INTERPROC)
        .find(|c| format!("{c:?}") == name)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_suggestion(file: &str, line: u32) -> Suggestion {
        let mut s = Suggestion::new(
            file,
            "pkg.Cls",
            line,
            JavaComponent::StringConcatenation,
            "s += parts[i]",
        );
        s.loop_depth = 2;
        s.impact = 8.8 * 64.0;
        s
    }

    fn sample_cache() -> AnalysisCache {
        let mut c = AnalysisCache::new(0xfeed);
        c.insert("A.java", 11, vec![sample_suggestion("A.java", 3)]);
        c.insert_deps(
            "dir/B.java",
            22,
            0xdeb,
            vec!["A.java".into(), "Empty.java".into()],
            vec![sample_suggestion("dir/B.java", 5), {
                let mut s = sample_suggestion("dir/B.java", 9);
                s.component = JavaComponent::DeadStore;
                s.matched = "odd\tchars\nhere\\".into();
                s
            }],
        );
        c.insert("Empty.java", 33, vec![]);
        c
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a/64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn content_hash_normalizes_line_endings() {
        let lf = "class A {\n int x;\n}\n";
        let crlf = "class A {\r\n int x;\r\n}\r\n";
        let cr = "class A {\r int x;\r}\r";
        assert_eq!(content_hash(lf), content_hash(crlf));
        assert_eq!(content_hash(lf), content_hash(cr));
        assert_ne!(content_hash(lf), content_hash("class A {\n int y;\n}\n"));
        assert_eq!(content_hash(lf), fnv1a64(lf.as_bytes()));
    }

    #[test]
    fn lookup_validates_hash() {
        let cache = sample_cache();
        assert!(cache.lookup("A.java", 11).is_some());
        assert!(cache.lookup("A.java", 12).is_none(), "stale hash misses");
        assert!(cache.lookup("Z.java", 11).is_none(), "unknown file misses");
    }

    #[test]
    fn lookup_deps_validates_both_hashes() {
        let cache = sample_cache();
        assert!(cache.lookup_deps("dir/B.java", 22, 0xdeb).is_some());
        assert!(
            cache.lookup_deps("dir/B.java", 22, 0xbad).is_none(),
            "same text, changed callee summaries: a dep-aware miss"
        );
        assert!(cache.lookup_deps("dir/B.java", 23, 0xdeb).is_none());
        // Plain lookup deliberately ignores the dep hash.
        assert!(cache.lookup("dir/B.java", 22).is_some());
        // Entries inserted without deps carry dep_hash 0.
        assert!(cache.lookup_deps("A.java", 11, 0).is_some());
        assert!(cache.lookup_deps("A.java", 11, 7).is_none());
        let e = cache.lookup_deps("dir/B.java", 22, 0xdeb).unwrap();
        assert_eq!(e.deps, vec!["A.java".to_string(), "Empty.java".to_string()]);
    }

    #[test]
    fn round_trip_is_exact() {
        let cache = sample_cache();
        let text = cache.serialize();
        let back = AnalysisCache::deserialize(&text, 0xfeed);
        assert_eq!(back.len(), 3);
        for (name, e) in &cache.entries {
            let b = back.lookup(name, e.content_hash).expect(name);
            assert_eq!(b.suggestions, e.suggestions, "{name}");
            assert_eq!(b.dep_hash, e.dep_hash, "{name}");
            assert_eq!(b.deps, e.deps, "{name}");
            for (x, y) in b.suggestions.iter().zip(&e.suggestions) {
                assert_eq!(x.impact.to_bits(), y.impact.to_bits(), "f64 bit-exact");
            }
        }
        // Serialization is deterministic.
        assert_eq!(text, back.serialize());
    }

    #[test]
    fn config_mismatch_yields_cold_cache() {
        let text = sample_cache().serialize();
        assert!(AnalysisCache::deserialize(&text, 0xbeef).is_empty());
    }

    #[test]
    fn version_or_magic_mismatch_yields_cold_cache() {
        let text = sample_cache().serialize();
        let bumped = text.replace("v2", "v9");
        assert!(AnalysisCache::deserialize(&bumped, 0xfeed).is_empty());
        assert!(AnalysisCache::deserialize("garbage\nlines\n", 0xfeed).is_empty());
        assert!(AnalysisCache::deserialize("", 0xfeed).is_empty());
    }

    #[test]
    fn corrupt_entries_are_dropped_not_propagated() {
        let cache = sample_cache();
        let text = cache.serialize();

        // Flip one byte inside each line in turn; whatever happens, the
        // loader must keep only entries whose checksums still validate
        // and every surviving entry must be byte-exact.
        for i in 0..text.len() {
            let mut bytes = text.as_bytes().to_vec();
            bytes[i] ^= 0x40;
            let Ok(mutated) = String::from_utf8(bytes) else {
                continue;
            };
            let back = AnalysisCache::deserialize(&mutated, 0xfeed);
            assert!(back.len() <= 3);
            for (name, e) in &back.entries {
                let orig = cache.entries.get(name);
                // A surviving entry under the original name must be
                // identical to the original, or belong to a mutated
                // name/hash we can't confuse with the original file.
                if let Some(o) = orig {
                    if e.content_hash == o.content_hash {
                        assert_eq!(e.suggestions, o.suggestions, "byte {i}");
                    }
                }
            }
        }

        // Truncation mid-entry: only fully-committed entries survive.
        let cut = &text[..text.len() * 2 / 3];
        let back = AnalysisCache::deserialize(cut, 0xfeed);
        assert!(back.len() < 3);
        for (name, e) in &back.entries {
            assert_eq!(e.suggestions, cache.entries[name].suggestions);
        }
    }

    #[test]
    fn save_and_load_via_disk() {
        let dir = std::env::temp_dir().join(format!("jepo-cache-{}", std::process::id()));
        let path = dir.join("sub").join("analysis.jepocache");
        let cache = sample_cache();
        cache.save(&path).unwrap();
        let back = AnalysisCache::load(&path, 0xfeed);
        assert_eq!(back.len(), 3);
        // Missing file → cold, not error.
        assert!(AnalysisCache::load(&dir.join("absent"), 0xfeed).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["", "plain", "a\tb", "a\nb", "a\\b", "\\t", "mix\t\n\r\\end"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s), "{s:?}");
        }
        assert_eq!(unesc("dangling\\"), None);
        assert_eq!(unesc("bad\\q"), None);
    }

    #[test]
    fn retain_files_prunes_dead_entries() {
        let mut cache = sample_cache();
        let live: std::collections::HashSet<&str> = ["A.java"].into_iter().collect();
        cache.retain_files(&live);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("A.java", 11).is_some());
    }
}
