//! The suggestion pool — Table I of the paper, verbatim.
//!
//! "These suggestions are hardcoded in the tool and displayed whenever
//! the tool detects specific Java components."

use serde::{Deserialize, Serialize};

/// The eleven Java component categories of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JavaComponent {
    /// Primitive data types — `int` is the most efficient.
    PrimitiveDataTypes,
    /// Scientific notation for decimal literals.
    ScientificNotation,
    /// Wrapper classes — `Integer` is the most efficient.
    WrapperClasses,
    /// The `static` keyword on variables.
    StaticKeyword,
    /// Arithmetic operators — modulus is the most expensive.
    ArithmeticOperators,
    /// The ternary operator vs `if-then-else`.
    TernaryOperator,
    /// Short-circuit operator operand ordering.
    ShortCircuitOperator,
    /// String concatenation with `+`.
    StringConcatenation,
    /// `String.compareTo` vs `String.equals`.
    StringComparison,
    /// Copying arrays manually vs `System.arraycopy`.
    ArraysCopy,
    /// Two-dimensional array traversal order.
    ArrayTraversal,
    /// EXTENSION (abstract's "exception" category; not a Table I row):
    /// exception construction in hot loops.
    ExceptionUsage,
    /// EXTENSION (abstract's "objects" category; not a Table I row):
    /// hoistable object creation in loops.
    ObjectCreation,
    /// EXTENSION (flow-only): expensive op (modulus/division/`Math`
    /// call) whose operands are all loop-invariant — hoistable.
    LoopInvariantOp,
    /// EXTENSION (flow-only): a computed value with no live reader —
    /// energy spent on a dead store.
    DeadStore,
    /// INTERPROCEDURAL: a call inside a loop whose callee allocates on
    /// every invocation — the allocation is hidden behind the call
    /// boundary.
    CalleeAllocationInLoop,
    /// INTERPROCEDURAL: a call inside a loop whose callee performs
    /// `String +` concatenation — concat-via-helper.
    CalleeStringConcat,
    /// INTERPROCEDURAL: a loop-invariant call to a pure, expensive
    /// callee — hoistable across the call boundary.
    InvariantPureCall,
}

impl JavaComponent {
    /// All components in Table I row order.
    pub const ALL: [JavaComponent; 11] = [
        JavaComponent::PrimitiveDataTypes,
        JavaComponent::ScientificNotation,
        JavaComponent::WrapperClasses,
        JavaComponent::StaticKeyword,
        JavaComponent::ArithmeticOperators,
        JavaComponent::TernaryOperator,
        JavaComponent::ShortCircuitOperator,
        JavaComponent::StringConcatenation,
        JavaComponent::StringComparison,
        JavaComponent::ArraysCopy,
        JavaComponent::ArrayTraversal,
    ];

    /// Extension components beyond Table I (the abstract's "exception,
    /// objects" categories; the paper's conclusion lists "more
    /// suggestions" as future work).
    pub const EXTENDED: [JavaComponent; 4] = [
        JavaComponent::ExceptionUsage,
        JavaComponent::ObjectCreation,
        JavaComponent::LoopInvariantOp,
        JavaComponent::DeadStore,
    ];

    /// Interprocedural components: cross-method rules that consult
    /// callee summaries ([`crate::interproc`]) at call sites in loops.
    pub const INTERPROC: [JavaComponent; 3] = [
        JavaComponent::CalleeAllocationInLoop,
        JavaComponent::CalleeStringConcat,
        JavaComponent::InvariantPureCall,
    ];

    /// The Table I "Java Components" column label.
    pub fn label(self) -> &'static str {
        match self {
            JavaComponent::PrimitiveDataTypes => "Primitive data types",
            JavaComponent::ScientificNotation => "Scientific notation",
            JavaComponent::WrapperClasses => "Wrapper classes",
            JavaComponent::StaticKeyword => "Static keyword",
            JavaComponent::ArithmeticOperators => "Arithmetic operators",
            JavaComponent::TernaryOperator => "Ternary operator",
            JavaComponent::ShortCircuitOperator => "Short circuit operator",
            JavaComponent::StringConcatenation => "String concatenation operator",
            JavaComponent::StringComparison => "String comparison",
            JavaComponent::ArraysCopy => "Arrays copy",
            JavaComponent::ArrayTraversal => "Array traversal",
            JavaComponent::ExceptionUsage => "Exceptions (extension)",
            JavaComponent::ObjectCreation => "Objects (extension)",
            JavaComponent::LoopInvariantOp => "Loop-invariant operation (flow)",
            JavaComponent::DeadStore => "Dead store (flow)",
            JavaComponent::CalleeAllocationInLoop => "Allocation via callee in loop (interproc)",
            JavaComponent::CalleeStringConcat => "String concat via helper (interproc)",
            JavaComponent::InvariantPureCall => "Loop-invariant pure call (interproc)",
        }
    }

    /// The Table I "Suggestions" column text, verbatim.
    pub fn suggestion_text(self) -> &'static str {
        match self {
            JavaComponent::PrimitiveDataTypes => {
                "int is the most energy-efficient primitive data type. Replace if possible."
            }
            JavaComponent::ScientificNotation => {
                "Scientific notation results in lower energy consumption of decimal numbers."
            }
            JavaComponent::WrapperClasses => {
                "Integer Wrapper class object is the most energy-efficient. Replace if possible."
            }
            JavaComponent::StaticKeyword => {
                "static keyword consumes up to 17,700% more energy. Avoid if possible."
            }
            JavaComponent::ArithmeticOperators => {
                "Modulus arithmetic operator consumes up to 1,620% more energy than other \
                 arithmetic operators."
            }
            JavaComponent::TernaryOperator => {
                "Ternary operator consumes up to 37% more energy than if-then-else statement."
            }
            JavaComponent::ShortCircuitOperator => {
                "Put most common case first for lower energy consumption."
            }
            JavaComponent::StringConcatenation => {
                "StringBuilder append method consumes much lower energy than String \
                 concatenation operator."
            }
            JavaComponent::StringComparison => {
                "String compareTo method consumes up to 33% more energy than the String \
                 equals method."
            }
            JavaComponent::ArraysCopy => {
                "System.arraycopy() is the most energy-efficient way to copy Arrays."
            }
            JavaComponent::ExceptionUsage => {
                "Constructing/throwing exceptions inside loops is extremely energy-expensive. \
                 Hoist or restructure."
            }
            JavaComponent::ObjectCreation => {
                "Object created inside a loop without loop-dependent state; hoist the \
                 allocation out of the loop."
            }
            JavaComponent::ArrayTraversal => {
                "Two-dimensional Array column traversal result in up to 793% more energy."
            }
            JavaComponent::LoopInvariantOp => {
                "Expensive operation is loop-invariant (all operands defined outside the \
                 loop); hoist it before the loop to pay its energy cost once."
            }
            JavaComponent::DeadStore => {
                "Value is computed but never read afterwards; the energy spent on this \
                 store is wasted. Remove the dead assignment."
            }
            JavaComponent::CalleeAllocationInLoop => {
                "This call allocates inside the callee on every loop iteration; reuse a \
                 buffer or hoist the allocation out of the loop."
            }
            JavaComponent::CalleeStringConcat => {
                "This helper concatenates Strings with + on every call; inside a loop the \
                 copies are quadratic. Pass a StringBuilder through instead."
            }
            JavaComponent::InvariantPureCall => {
                "Pure expensive call with loop-invariant arguments; hoist the call before \
                 the loop to pay its energy cost once."
            }
        }
    }

    /// The worst-case energy factor the paper reports for the
    /// inefficient form relative to the efficient one (1.0 = no claim).
    pub fn worst_case_factor(self) -> f64 {
        match self {
            JavaComponent::StaticKeyword => 178.0,         // +17,700%
            JavaComponent::ArithmeticOperators => 17.2,    // +1,620%
            JavaComponent::ArrayTraversal => 8.93,         // +793%
            JavaComponent::TernaryOperator => 1.37,        // +37%
            JavaComponent::StringComparison => 1.33,       // +33%
            JavaComponent::StringConcatenation => 8.8,     // "much lower"
            JavaComponent::ArraysCopy => 7.4,              // manual vs bulk
            JavaComponent::PrimitiveDataTypes => 2.2,      // double vs int ALU
            JavaComponent::WrapperClasses => 1.35,         // non-Integer surcharge
            JavaComponent::ScientificNotation => 1.46,     // plain vs sci constant
            JavaComponent::ShortCircuitOperator => 1.0,    // workload-dependent
            JavaComponent::ExceptionUsage => 640.0,        // ExceptionThrow vs IntAlu
            JavaComponent::ObjectCreation => 42.0,         // Alloc vs IntAlu
            JavaComponent::LoopInvariantOp => 17.2,        // same scale as modulus row
            JavaComponent::DeadStore => 2.2,               // wasted ALU + store
            JavaComponent::CalleeAllocationInLoop => 42.0, // Alloc vs IntAlu, per callee alloc
            JavaComponent::CalleeStringConcat => 8.8,      // concat scale, per callee concat
            JavaComponent::InvariantPureCall => 17.2,      // expensive-op scale
        }
    }
}

/// One emitted suggestion — a row of the optimizer view (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suggestion {
    /// File the pattern was found in.
    pub file: String,
    /// Class containing the pattern (with package if known).
    pub class: String,
    /// 1-based source line.
    pub line: u32,
    /// Which Table I component fired.
    pub component: JavaComponent,
    /// The hardcoded suggestion text.
    pub message: String,
    /// A short snippet of what was matched (for the dynamic view).
    pub matched: String,
    /// Loop nesting depth of the line (0 = straight-line; filled in by
    /// flow-sensitive analysis, stays 0 under the syntactic baseline).
    pub loop_depth: u32,
    /// Estimated impact: Table I worst-case factor × expected execution
    /// count (see [`crate::impact`]). Defaults to the bare factor.
    pub impact: f64,
}

impl Suggestion {
    /// Construct with the pool text for the component.
    pub fn new(
        file: &str,
        class: &str,
        line: u32,
        component: JavaComponent,
        matched: impl Into<String>,
    ) -> Suggestion {
        Suggestion {
            file: file.to_string(),
            class: class.to_string(),
            line,
            component,
            message: component.suggestion_text().to_string(),
            matched: matched.into(),
            loop_depth: 0,
            impact: component.worst_case_factor(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_eleven_components() {
        assert_eq!(JavaComponent::ALL.len(), 11);
        let mut labels = std::collections::HashSet::new();
        for c in JavaComponent::ALL {
            assert!(!c.suggestion_text().is_empty());
            assert!(labels.insert(c.label()));
        }
    }

    #[test]
    fn factors_match_paper_percentages() {
        // +17,700% = 178×, +1,620% = 17.2×, +793% = 8.93×, +37%, +33%.
        assert!((JavaComponent::StaticKeyword.worst_case_factor() - 178.0).abs() < 1e-9);
        assert!((JavaComponent::ArithmeticOperators.worst_case_factor() - 17.2).abs() < 1e-9);
        assert!((JavaComponent::ArrayTraversal.worst_case_factor() - 8.93).abs() < 1e-9);
        assert!((JavaComponent::TernaryOperator.worst_case_factor() - 1.37).abs() < 1e-9);
        assert!((JavaComponent::StringComparison.worst_case_factor() - 1.33).abs() < 1e-9);
    }

    #[test]
    fn suggestion_carries_pool_text() {
        let s = Suggestion::new(
            "A.java",
            "A",
            3,
            JavaComponent::ArithmeticOperators,
            "x % 2",
        );
        assert!(s.message.contains("1,620%"));
        assert_eq!(s.line, 3);
    }
}
